//! The service's core correctness property (satellite of the job-service
//! PR): running K jobs **concurrently** — sharing one persistent worker
//! pool, fair-share width caps, and one partitioned memory budget small
//! enough to force tenants out of core — produces, for every job, output
//! byte-identical to the same spec run **sequentially in isolation**
//! (private single-worker pool, no budget). Neither multi-tenancy nor
//! spilling is allowed to change any answer.

use proptest::prelude::*;
use std::time::Duration;
use supmr_serve::{
    reference_output, AppSpec, JobSpec, JobStatus, Priority, Scheduler, ServeConfig,
};

/// Build the i-th randomized spec of a batch. TeraSort sizes are whole
/// 100-byte records; grep always carries the corpus's rank-0 word so
/// its output is non-trivial.
fn spec_for(app_pick: usize, seed: u64, size_pick: u64) -> JobSpec {
    let app = [AppSpec::WordCount, AppSpec::TeraSort, AppSpec::Grep][app_pick % 3];
    let input_bytes = match app {
        AppSpec::TeraSort => 100 * (100 + size_pick % 400),
        _ => 16 * 1024 + (size_pick % 5) * 16 * 1024,
    };
    JobSpec {
        app,
        seed,
        input_bytes,
        priority: [Priority::Low, Priority::Normal, Priority::High][(seed % 3) as usize],
        patterns: if app == AppSpec::Grep { vec!["ca".to_string()] } else { vec![] },
        ..JobSpec::default()
    }
}

/// Digest + pair count as reported over the status surface.
fn served_output(json: &supmr_metrics::Json) -> (String, f64) {
    let out = json.get("output").expect("completed job has output");
    (
        out.get("digest").unwrap().as_str().unwrap().to_string(),
        out.get("pairs").unwrap().as_f64().unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn concurrent_partitioned_runs_equal_sequential_isolated_runs(
        picks in proptest::collection::vec(any::<u64>(), 2..5),
        budget_kib in 24u64..96,
    ) {
        let specs: Vec<JobSpec> = picks
            .iter()
            .enumerate()
            .map(|(i, p)| spec_for((p % 97) as usize + i, p ^ 0x9e37, p >> 7))
            .collect();

        // Sequential oracle: each spec alone on a private 1-wide pool,
        // no memory budget.
        let oracles: Vec<_> = specs
            .iter()
            .map(|s| reference_output(s).expect("isolated run"))
            .collect();

        // Concurrent system under test: every spec at once, sharing one
        // pool and one deliberately tight budget partitioned across
        // tenants by priority weight.
        let scheduler = Scheduler::start(ServeConfig {
            workers: 4,
            max_concurrent: specs.len(),
            queue_depth: specs.len() + 1,
            memory_budget: Some(budget_kib * 1024),
            default_job_workers: 2,
        });
        let handles: Vec<_> = specs
            .iter()
            .map(|s| scheduler.submit(s.clone()).expect("admitted"))
            .collect();
        prop_assert!(scheduler.wait_idle(Duration::from_secs(120)), "batch settled");

        for (i, (handle, oracle)) in handles.iter().zip(&oracles).enumerate() {
            prop_assert_eq!(
                handle.status(),
                JobStatus::Completed,
                "job {} ({}) finished: {}",
                i,
                specs[i].app.name(),
                handle.status_json().render()
            );
            let (digest, pairs) = served_output(&handle.status_json());
            prop_assert_eq!(
                &digest,
                &oracle.digest,
                "job {} under shared pool + partitioned budget answers what isolation answers",
                i
            );
            prop_assert_eq!(pairs, oracle.pairs as f64);
        }
        scheduler.shutdown(Duration::from_secs(30));
    }
}
