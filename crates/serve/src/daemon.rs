//! The HTTP face of the job service, mounted on the generalized
//! [`MetricsServer::serve_with`] machinery:
//!
//! * `POST /jobs` — JSON spec → admitted job, `202` with its id.
//! * `GET /jobs` — every admitted job, oldest first.
//! * `GET /jobs/{id}` — status; output summary and full
//!   `supmr.job_report.v1` once terminal.
//! * `DELETE /jobs/{id}` — cooperative cancel.
//! * `GET /metrics` — daemon `supmr.serve.*` families plus every job's
//!   families labelled `job_id="..."`, one OpenMetrics exposition.
//! * `GET /debug/governor?job=ID[&tail=N]` — that job's recent
//!   `GovernorAction` decisions as JSONL.
//! * `GET /debug/trace?job=ID[&tail=N]` — that job's recent trace tail.
//! * `GET /healthz` — `ok` (or `draining` during shutdown).
//! * `POST /shutdown` — begin draining; new submissions get `503`.
//!
//! Graceful shutdown: `SIGTERM` (or `POST /shutdown`) flips the drain
//! flag — running and queued jobs finish, new ones are rejected — and
//! [`Daemon::run`] returns once the scheduler settles.

use crate::scheduler::{Scheduler, ServeConfig, SubmitError};
use crate::spec::JobSpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use supmr_metrics::openmetrics;
use supmr_metrics::server::{APPLICATION_JSON, CONTENT_TYPE, NDJSON, TEXT_PLAIN};
use supmr_metrics::{HttpHandler, HttpRequest, HttpResponse, Json, MetricsServer, MetricsSnapshot};

/// Process-wide drain request flag, flipped by the SIGTERM handler.
/// Signal handlers may only touch lock-free state, so this is the whole
/// hand-off: the daemon's run loop polls it.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Install a `SIGTERM` handler that requests a drain (unix only; a
/// no-op elsewhere — `POST /shutdown` always works).
fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_term(_sig: i32) {
            TERM_REQUESTED.store(true, Ordering::Relaxed);
        }
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

/// The running job service: scheduler plus HTTP endpoint.
pub struct Daemon {
    scheduler: Arc<Scheduler>,
    server: Option<MetricsServer>,
    addr: std::net::SocketAddr,
    /// Flipped by `POST /shutdown`; polled by [`Daemon::run`] alongside
    /// the SIGTERM flag.
    shutdown_requested: Arc<AtomicBool>,
}

impl Daemon {
    /// Bind `listen` (e.g. `127.0.0.1:8900`; port 0 picks a free port)
    /// and start serving jobs.
    pub fn start(listen: &str, config: ServeConfig) -> std::io::Result<Daemon> {
        let scheduler = Arc::new(Scheduler::start(config));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let handler: HttpHandler = {
            let scheduler = Arc::clone(&scheduler);
            let shutdown = Arc::clone(&shutdown_requested);
            Arc::new(move |req| handle(&scheduler, &shutdown, req))
        };
        let server = MetricsServer::serve_with(listen, handler)?;
        let addr = server.addr();
        Ok(Daemon { scheduler, server: Some(server), addr, shutdown_requested })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The scheduler behind the HTTP surface (for in-process tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Whether shutdown was requested by signal or endpoint.
    pub fn shutdown_requested(&self) -> bool {
        TERM_REQUESTED.load(Ordering::Relaxed) || self.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Serve until `SIGTERM` or `POST /shutdown`, then drain: stop
    /// admitting, let queued and running jobs finish, stop the HTTP
    /// endpoint, and return.
    pub fn run(mut self) {
        install_sigterm_handler();
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
        // Keep serving status reads while jobs drain; only admission is
        // closed (the handler answers 503 on POST /jobs once draining).
        self.scheduler.drain();
        self.scheduler.shutdown(Duration::from_secs(600));
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    /// Immediate teardown for tests: drain, settle, stop the endpoint.
    pub fn stop(mut self, timeout: Duration) -> bool {
        let settled = self.scheduler.shutdown(timeout);
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        settled
    }
}

/// Merge the daemon's own snapshot with every job's, labelling job
/// entries `job_id="..."`, and group same-name families adjacently so
/// the renderer announces each `# HELP`/`# TYPE` exactly once.
fn merged_exposition(scheduler: &Scheduler) -> String {
    let mut entries = scheduler.registry().snapshot().entries;
    for job in scheduler.jobs() {
        for mut entry in job.registry.snapshot().entries {
            entry.labels.insert(0, ("job_id".to_string(), job.id.clone()));
            entries.push(entry);
        }
    }
    // Stable sort by first appearance of each family name: entries of
    // one family become adjacent while submission/registration order is
    // otherwise preserved.
    let mut family_order: Vec<&str> = Vec::new();
    for entry in &entries {
        if !family_order.contains(&entry.name.as_str()) {
            family_order.push(&entry.name);
        }
    }
    let rank: std::collections::HashMap<String, usize> =
        family_order.iter().enumerate().map(|(i, n)| (n.to_string(), i)).collect();
    entries.sort_by_key(|e| rank[&e.name]);
    openmetrics::render(&MetricsSnapshot { entries })
}

fn json_response(status: &'static str, json: Json) -> HttpResponse {
    HttpResponse {
        status,
        content_type: APPLICATION_JSON,
        body: format!("{}\n", json.render()),
        allow: None,
    }
}

fn handle(scheduler: &Scheduler, shutdown: &AtomicBool, req: &HttpRequest) -> HttpResponse {
    let method = req.method.as_str();
    let route = req.route().to_string();
    match (method, route.as_str()) {
        ("POST", "/jobs") => submit(scheduler, &req.body),
        ("GET", "/jobs") | ("HEAD", "/jobs") => {
            let jobs: Vec<Json> = scheduler
                .jobs()
                .iter()
                .map(|j| {
                    Json::obj(vec![
                        ("id", Json::str(&j.id)),
                        ("app", Json::str(j.spec.app.name())),
                        ("priority", Json::str(j.spec.priority.name())),
                        ("status", Json::str(j.status().name())),
                    ])
                })
                .collect();
            json_response("200 OK", Json::obj(vec![("jobs", Json::Arr(jobs))]))
        }
        ("GET", "/metrics") | ("HEAD", "/metrics") | ("GET", "/") | ("HEAD", "/") => {
            HttpResponse::ok(CONTENT_TYPE, merged_exposition(scheduler))
        }
        ("GET", "/healthz") | ("HEAD", "/healthz") => {
            let body = if scheduler.draining() { "draining\n" } else { "ok\n" };
            HttpResponse::ok(TEXT_PLAIN, body.to_string())
        }
        ("GET", "/debug/governor") | ("HEAD", "/debug/governor") => {
            debug_tail(scheduler, req, true)
        }
        ("GET", "/debug/trace") | ("HEAD", "/debug/trace") => debug_tail(scheduler, req, false),
        ("POST", "/shutdown") => {
            scheduler.drain();
            shutdown.store(true, Ordering::Relaxed);
            json_response("200 OK", Json::obj(vec![("status", Json::str("draining"))]))
        }
        (_, r) if r.starts_with("/jobs/") => {
            let id = &r["/jobs/".len()..];
            match method {
                "GET" | "HEAD" => match scheduler.job(id) {
                    Some(job) => json_response("200 OK", job.status_json()),
                    None => HttpResponse::error("404 Not Found", "unknown job\n"),
                },
                "DELETE" => match scheduler.cancel(id) {
                    Some(status) => json_response(
                        "200 OK",
                        Json::obj(vec![
                            ("id", Json::str(id)),
                            ("status", Json::str(status.name())),
                        ]),
                    ),
                    None => HttpResponse::error("404 Not Found", "unknown job\n"),
                },
                _ => HttpResponse::method_not_allowed("GET, HEAD, DELETE"),
            }
        }
        ("GET", _) | ("HEAD", _) => HttpResponse::error("404 Not Found", "not found\n"),
        _ => HttpResponse::method_not_allowed("GET, HEAD, POST, DELETE"),
    }
}

fn submit(scheduler: &Scheduler, body: &[u8]) -> HttpResponse {
    let spec = match JobSpec::from_json_bytes(body) {
        Ok(spec) => spec,
        Err(e) => return HttpResponse::error("400 Bad Request", &format!("{e}\n")),
    };
    match scheduler.submit(spec) {
        Ok(job) => json_response(
            "202 Accepted",
            Json::obj(vec![("id", Json::str(&job.id)), ("status", Json::str(job.status().name()))]),
        ),
        Err(e @ (SubmitError::Draining | SubmitError::QueueFull)) => {
            HttpResponse::error("503 Service Unavailable", &format!("{e}\n"))
        }
    }
}

/// `/debug/governor` and `/debug/trace`: a `job=` query selects whose
/// ring to tail (required — the daemon hosts many).
fn debug_tail(scheduler: &Scheduler, req: &HttpRequest, governor_only: bool) -> HttpResponse {
    let Some(id) = req.query("job") else {
        return HttpResponse::error("400 Bad Request", "missing job= query parameter\n");
    };
    let Some(job) = scheduler.job(id) else {
        return HttpResponse::error("404 Not Found", "unknown job\n");
    };
    let tail = req.query("tail").and_then(|v| v.parse::<usize>().ok()).unwrap_or(256);
    let body =
        if governor_only { job.ring.tail_governor_jsonl(tail) } else { job.ring.tail_jsonl(tail) };
    HttpResponse::ok(NDJSON, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
        request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn body_json(resp: &str) -> Json {
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        Json::parse(body.trim()).expect("valid JSON body")
    }

    fn test_daemon() -> Daemon {
        Daemon::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                max_concurrent: 2,
                queue_depth: 8,
                memory_budget: Some(64 * 1024),
                default_job_workers: 2,
            },
        )
        .expect("bind")
    }

    fn poll_terminal(addr: std::net::SocketAddr, id: &str) -> Json {
        for _ in 0..600 {
            let status = body_json(&get(addr, &format!("/jobs/{id}")));
            let state = status.get("status").unwrap().as_str().unwrap().to_string();
            if ["completed", "failed", "cancelled"].contains(&state.as_str()) {
                return status;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never settled");
    }

    #[test]
    fn two_concurrent_jobs_complete_with_verified_outputs_and_labelled_metrics() {
        let daemon = test_daemon();
        let addr = daemon.addr();

        // Two overlapping jobs, big enough to exceed their budget
        // partitions (32K each under the 64K global budget).
        let a = body_json(&post(addr, "/jobs", r#"{"app":"wordcount","generate":"128K"}"#));
        let b = body_json(&post(
            addr,
            "/jobs",
            r#"{"app":"wordcount","generate":"128K","seed":7,"priority":"high"}"#,
        ));
        let (a_id, b_id) = (
            a.get("id").unwrap().as_str().unwrap().to_string(),
            b.get("id").unwrap().as_str().unwrap().to_string(),
        );
        assert_ne!(a_id, b_id);

        let a_status = poll_terminal(addr, &a_id);
        let b_status = poll_terminal(addr, &b_id);
        for (status, label) in [(&a_status, "a"), (&b_status, "b")] {
            assert_eq!(
                status.get("status").unwrap().as_str(),
                Some("completed"),
                "{label}: {}",
                status.render()
            );
            assert_eq!(
                status.get("report").unwrap().get("schema").unwrap().as_str(),
                Some("supmr.job_report.v1")
            );
        }

        // Independently verify both outputs against isolated reruns.
        let spec_a = JobSpec::from_json_bytes(br#"{"app":"wordcount","generate":"128K"}"#).unwrap();
        let spec_b =
            JobSpec::from_json_bytes(br#"{"app":"wordcount","generate":"128K","seed":7}"#).unwrap();
        let oracle_a = crate::runner::reference_output(&spec_a).expect("oracle a");
        let oracle_b = crate::runner::reference_output(&spec_b).expect("oracle b");
        assert_eq!(
            a_status.get("output").unwrap().get("digest").unwrap().as_str(),
            Some(oracle_a.digest.as_str()),
            "job a answered exactly what an isolated run answers"
        );
        assert_eq!(
            b_status.get("output").unwrap().get("digest").unwrap().as_str(),
            Some(oracle_b.digest.as_str())
        );
        assert_ne!(oracle_a.digest, oracle_b.digest, "different seeds, different outputs");

        // One scrape carries both jobs' families plus the daemon's own,
        // and shows the budget-pressed tenants spilled.
        let scrape = get(addr, "/metrics");
        assert!(scrape.contains(&format!("job_id=\"{a_id}\"")), "{scrape}");
        assert!(scrape.contains(&format!("job_id=\"{b_id}\"")), "{scrape}");
        assert!(scrape.contains("supmr_serve_jobs_completed_total 2"), "{scrape}");
        let spill_runs: u64 = scrape
            .lines()
            .filter(|l| l.starts_with("supmr_spill_runs_total{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert!(spill_runs > 0, "budget-exceeding tenants spilled: {scrape}");
        assert!(scrape.trim_end().ends_with("# EOF"), "valid exposition: {scrape}");
        // No family is announced twice (merge kept families adjacent).
        let type_lines: Vec<&str> = scrape.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut deduped = type_lines.clone();
        deduped.dedup();
        assert_eq!(type_lines.len(), deduped.len(), "duplicate TYPE announcement: {scrape}");

        assert!(daemon.stop(Duration::from_secs(30)));
    }

    #[test]
    fn submission_errors_and_job_listing() {
        let daemon = test_daemon();
        let addr = daemon.addr();
        assert!(post(addr, "/jobs", r#"{"app":"nope"}"#).starts_with("HTTP/1.1 400"));
        assert!(post(addr, "/jobs", "garbage").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/jobs/job-99").starts_with("HTTP/1.1 404"));
        assert!(request(addr, "DELETE /jobs/job-99 HTTP/1.1\r\nHost: t\r\n\r\n")
            .starts_with("HTTP/1.1 404"));
        assert!(request(addr, "PUT /jobs HTTP/1.1\r\nHost: t\r\n\r\n").starts_with("HTTP/1.1 405"));

        let resp = post(addr, "/jobs", r#"{"app":"wordcount","generate":"16K"}"#);
        assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
        let id = body_json(&resp).get("id").unwrap().as_str().unwrap().to_string();
        let list = body_json(&get(addr, "/jobs"));
        let jobs = list.get("jobs").unwrap().as_arr().unwrap();
        assert!(jobs.iter().any(|j| j.get("id").unwrap().as_str() == Some(id.as_str())));
        poll_terminal(addr, &id);
        assert!(daemon.stop(Duration::from_secs(30)));
    }

    #[test]
    fn delete_cancels_and_shutdown_drains_with_503() {
        let daemon = test_daemon();
        let addr = daemon.addr();
        // A long job to cancel mid-flight.
        let id = body_json(&post(addr, "/jobs", r#"{"app":"wordcount","generate":"8M"}"#))
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let resp = request(addr, &format!("DELETE /jobs/{id} HTTP/1.1\r\nHost: t\r\n\r\n"));
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let status = poll_terminal(addr, &id);
        assert_eq!(
            status.get("status").unwrap().as_str(),
            Some("cancelled"),
            "{}",
            status.render()
        );

        // Shutdown: draining healthz, 503 on new submissions.
        assert!(post(addr, "/shutdown", "").starts_with("HTTP/1.1 200"));
        assert!(get(addr, "/healthz").contains("draining"));
        assert!(post(addr, "/jobs", r#"{"app":"wordcount"}"#).starts_with("HTTP/1.1 503"));
        assert!(daemon.shutdown_requested());
        assert!(daemon.stop(Duration::from_secs(30)));
    }

    #[test]
    fn governor_debug_endpoint_filters_by_job() {
        let daemon = test_daemon();
        let addr = daemon.addr();
        let id = body_json(&post(
            addr,
            "/jobs",
            r#"{"app":"wordcount","generate":"64K","governor":true,"chunk":"8K"}"#,
        ))
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
        poll_terminal(addr, &id);
        let resp = get(addr, &format!("/debug/governor?job={id}&tail=10"));
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("application/x-ndjson"), "{resp}");
        // Every returned line (if the governor acted at all on this
        // short job) is a GovernorAction.
        for line in resp.split("\r\n\r\n").nth(1).unwrap_or("").lines() {
            assert!(line.contains("GovernorAction"), "{line}");
        }
        assert!(get(addr, "/debug/governor?job=job-42").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/debug/governor").starts_with("HTTP/1.1 400"), "job= is required");
        // The raw trace tail for the same job answers too.
        assert!(get(addr, &format!("/debug/trace?job={id}")).starts_with("HTTP/1.1 200"));
        assert!(daemon.stop(Duration::from_secs(30)));
    }
}
