//! Executing one admitted job against the daemon's shared facilities:
//! build the [`JobConfig`] from the spec, synthesize the input, run the
//! right application through [`supmr::run_with`], and reduce the output
//! to an independently-checkable [`JobOutput`].

use crate::job::JobOutput;
use crate::spec::{AppSpec, JobSpec};
use std::sync::Arc;
use supmr::pool::WorkerPool;
use supmr::runtime::{
    ActiveConfig, GovernorConfig, Input, JobConfig, JobReport, JobResult, MergeMode,
};
use supmr::spill::MemoryAccountant;
use supmr::{Chunking, Result};
use supmr_apps::{Grep, TeraSort, WordCount};
use supmr_metrics::{Registry, TraceLevel, TraceRing};
use supmr_storage::MemSource;
use supmr_workloads::{TeraGen, TextGen, TextGenConfig};

/// Hash seed used when the spec leaves placement unseeded: a fixed seed
/// keeps a job's output byte-identical however many neighbors it runs
/// beside, which is what the status digest promises.
const DEFAULT_HASH_SEED: u64 = 0xC0FFEE;

/// Default ingest chunk size when the spec does not choose one.
const DEFAULT_CHUNK_BYTES: u64 = 256 * 1024;

/// How many output pairs the status preview shows.
const PREVIEW_PAIRS: usize = 5;

impl AppSpec {
    /// Whether the application provides a spill codec — only these jobs
    /// join the daemon's partitioned memory budget (the others have no
    /// out-of-core path to actuate).
    pub fn supports_spill(self) -> bool {
        match self {
            AppSpec::WordCount | AppSpec::TeraSort => true,
            AppSpec::Grep => false,
        }
    }
}

/// The daemon-owned facilities one job run borrows.
pub(crate) struct JobFacilities<'p> {
    /// The shared persistent pool all jobs dispatch waves onto.
    pub pool: &'p WorkerPool,
    /// This tenant's partition of the global memory budget (already
    /// joined to the ledger), when the daemon runs with one.
    pub accountant: Option<Arc<MemoryAccountant>>,
    /// The job's metric families (merged into `/metrics` by job id).
    pub registry: Registry,
    /// The job's bounded event ring.
    pub ring: Arc<TraceRing>,
    /// The job's dynamic knobs (cancel flag + fair-share cap).
    pub active: Arc<ActiveConfig>,
    /// Per-job worker default when the spec names none.
    pub default_workers: usize,
}

/// Build the job's [`JobConfig`] from its spec plus the daemon
/// facilities. Pool choice is irrelevant here — [`supmr::SharedRun`]
/// routes every wave onto the host pool.
fn build_config(spec: &JobSpec, fac: &JobFacilities<'_>) -> JobConfig {
    let workers = |w: Option<usize>| w.unwrap_or(fac.default_workers).max(1);
    let mut config = JobConfig {
        map_workers: workers(spec.map_workers),
        reduce_workers: workers(spec.reduce_workers),
        chunking: Chunking::Inter { chunk_bytes: spec.chunk_bytes.unwrap_or(DEFAULT_CHUNK_BYTES) },
        trace: TraceLevel::Wave,
        on_event: Some(fac.ring.callback()),
        metrics: Some(fac.registry.clone()),
        hash_seed: Some(spec.hash_seed.unwrap_or(DEFAULT_HASH_SEED)),
        active: Some(Arc::clone(&fac.active)),
        ..JobConfig::default()
    };
    if let Some(split) = spec.split_bytes {
        config.split_bytes = split as usize;
    }
    if spec.governor {
        config.governor = Some(GovernorConfig::default());
    }
    if spec.app.supports_spill() {
        // The tenant partition governs under a daemon-wide budget;
        // otherwise the spec's own request engages out-of-core.
        config.memory_budget = match &fac.accountant {
            Some(a) => Some(a.budget().max(1)),
            None => spec.memory_budget,
        };
    }
    if spec.app == AppSpec::TeraSort {
        config.record_format = TeraSort::record_format();
        config.merge = MergeMode::PWay { ways: config.reduce_workers };
    }
    config
}

/// Synthesize the job's input bytes from its generator spec.
fn generate_input(spec: &JobSpec) -> Vec<u8> {
    match spec.app {
        AppSpec::WordCount | AppSpec::Grep => TextGen::new(TextGenConfig::default())
            .generate_bytes(spec.seed, spec.input_bytes as usize),
        AppSpec::TeraSort => TeraGen::with_total_bytes(spec.seed, spec.input_bytes).generate_all(),
    }
}

/// Run `spec` to completion on the daemon's facilities.
pub(crate) fn run_job(spec: &JobSpec, fac: JobFacilities<'_>) -> Result<(JobOutput, JobReport)> {
    let config = build_config(spec, &fac);
    let input = Input::stream(MemSource::from(generate_input(spec)));
    let shared = supmr::SharedRun {
        pool: Some(fac.pool),
        accountant: fac.accountant.clone(),
        run_prefix: String::new(), // spill stores are per-job temp dirs
    };
    match spec.app {
        AppSpec::WordCount => summarize(supmr::run_with(WordCount::new(), input, config, shared)?),
        AppSpec::Grep => {
            let patterns: Vec<Vec<u8>> =
                spec.patterns.iter().map(|p| p.as_bytes().to_vec()).collect();
            summarize(supmr::run_with(Grep::new(patterns), input, config, shared)?)
        }
        AppSpec::TeraSort => summarize(supmr::run_with(TeraSort::new(), input, config, shared)?),
    }
}

/// Anything renderable as a digest line: key and value as bytes plus a
/// lossy preview form.
trait PairBytes {
    fn bytes(&self) -> Vec<u8>;
    fn preview(&self) -> String;
}

impl PairBytes for (supmr::CompactKey, u64) {
    fn bytes(&self) -> Vec<u8> {
        let mut b = self.0.as_bytes().to_vec();
        b.push(b'\t');
        b.extend_from_slice(self.1.to_string().as_bytes());
        b
    }

    fn preview(&self) -> String {
        format!("{} {}", self.0.to_string_lossy(), self.1)
    }
}

impl PairBytes for (Vec<u8>, Vec<u8>) {
    fn bytes(&self) -> Vec<u8> {
        let mut b = self.0.clone();
        b.push(b'\t');
        b.extend_from_slice(&self.1);
        b
    }

    fn preview(&self) -> String {
        // Tera keys are 10 arbitrary bytes; hex keeps the preview
        // printable without inventing an encoding for the value.
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Collapse a finished run into the status summary: pair count, an
/// FNV-1a digest over the key-sorted pair stream (order-independent, so
/// concurrent and sequential executions of the same spec agree), and a
/// short preview.
fn summarize<K, O>(result: JobResult<K, O>) -> Result<(JobOutput, JobReport)>
where
    K: Ord + Clone,
    O: Clone,
    (K, O): PairBytes,
{
    let sorted = result.sorted_pairs();
    let mut hash: u64 = 0xcbf29ce484222325;
    for pair in &sorted {
        for byte in pair.bytes().iter().chain(b"\n") {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    let output = JobOutput {
        pairs: sorted.len() as u64,
        digest: format!("fnv1a:{hash:016x}"),
        preview: sorted.iter().take(PREVIEW_PAIRS).map(PairBytes::preview).collect(),
    };
    Ok((output, result.report))
}

/// Compute the digest a spec *should* produce by running it in
/// isolation (job-private pool, private budget) — the oracle the
/// concurrency tests and the smoke job verify daemon outputs against.
pub fn reference_output(spec: &JobSpec) -> Result<JobOutput> {
    let pool = WorkerPool::new(1);
    let fac = JobFacilities {
        pool: &pool,
        accountant: None,
        registry: Registry::new(),
        ring: TraceRing::new(16),
        active: Arc::new(ActiveConfig::new(1, 1, 1)),
        default_workers: 1,
    };
    // The digest is taken over key-sorted pairs, so worker widths and
    // partition counts cannot change it — one worker is the cheapest
    // correct oracle.
    run_job(spec, fac).map(|(output, _)| output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facilities<'p>(pool: &'p WorkerPool, workers: usize) -> JobFacilities<'p> {
        JobFacilities {
            pool,
            accountant: None,
            registry: Registry::new(),
            ring: TraceRing::new(64),
            active: Arc::new(ActiveConfig::new(workers, workers, 1)),
            default_workers: workers,
        }
    }

    #[test]
    fn wordcount_runs_and_digest_is_stable_across_widths() {
        let spec = JobSpec { input_bytes: 64 * 1024, ..JobSpec::default() };
        let pool = WorkerPool::new(4);
        let (narrow, _) = run_job(&spec, facilities(&pool, 1)).expect("narrow run");
        let (wide, _) = run_job(&spec, facilities(&pool, 4)).expect("wide run");
        assert!(narrow.pairs > 0);
        assert_eq!(narrow.digest, wide.digest, "digest is width-independent");
        assert_eq!(narrow.pairs, wide.pairs);
        assert_eq!(narrow.preview, wide.preview);
    }

    #[test]
    fn grep_counts_only_matching_lines() {
        let spec = JobSpec {
            app: AppSpec::Grep,
            // "ca" is the rank-0 (most frequent) synthetic word, so a
            // zipfian corpus of any useful size contains it.
            patterns: vec!["ca".to_string()],
            input_bytes: 32 * 1024,
            ..JobSpec::default()
        };
        let pool = WorkerPool::new(2);
        let (out, report) = run_job(&spec, facilities(&pool, 2)).expect("grep run");
        assert!(out.pairs >= 1, "zipfian text contains its rank-0 word");
        assert!(report.stats.bytes_ingested >= 32 * 1024);
    }

    #[test]
    fn terasort_output_is_sorted_and_complete() {
        let spec = JobSpec {
            app: AppSpec::TeraSort,
            input_bytes: 100 * 200, // 200 records
            ..JobSpec::default()
        };
        let pool = WorkerPool::new(2);
        let (out, _) = run_job(&spec, facilities(&pool, 2)).expect("sort run");
        assert_eq!(out.pairs, 200, "every record survives the sort");
    }

    #[test]
    fn budget_partition_makes_wordcount_spill() {
        let spec = JobSpec { input_bytes: 256 * 1024, ..JobSpec::default() };
        let pool = WorkerPool::new(2);
        let mut fac = facilities(&pool, 2);
        // A tiny tenant partition: the job must spill, not fail.
        fac.accountant = Some(Arc::new(MemoryAccountant::new(16 * 1024)));
        let registry = fac.registry.clone();
        let (out, _) = run_job(&spec, fac).expect("budgeted run succeeds by spilling");
        let spilled = registry.snapshot().entries.iter().any(|e| {
            e.name == "supmr.spill.runs"
                && matches!(e.value, supmr_metrics::MetricValue::Counter(c) if c > 0)
        });
        assert!(spilled, "a starved tenant spills instead of failing");

        // Same spec unbudgeted produces the identical digest.
        let (free, _) = run_job(&spec, facilities(&pool, 2)).expect("unbudgeted run");
        assert_eq!(out.digest, free.digest, "spilling never changes the answer");
    }

    #[test]
    fn reference_output_matches_pooled_run() {
        let spec = JobSpec { input_bytes: 16 * 1024, ..JobSpec::default() };
        let pool = WorkerPool::new(3);
        let (pooled, _) = run_job(&spec, facilities(&pool, 3)).expect("pooled");
        let reference = reference_output(&spec).expect("reference");
        assert_eq!(pooled.digest, reference.digest);
    }
}
