//! **supmr-serve** — a long-lived job service over the SupMR runtime.
//!
//! Where `supmr-cli` runs one job per process, this crate keeps a
//! daemon alive (`supmr serve --listen ADDR`) that accepts MapReduce
//! jobs over a std-only HTTP API and multiplexes them onto shared
//! machinery:
//!
//! * **HTTP surface** ([`daemon`]) — `POST /jobs` (a hand-rolled,
//!   serde-free JSON spec decoder, [`spec`]), `GET /jobs/{id}` (status
//!   plus the full `supmr.job_report.v1` report and an output digest on
//!   completion), `DELETE /jobs/{id}` (cooperative cancel), and
//!   `GET /metrics` (every family of every job, labelled `job_id=`),
//!   mounted on the generalized request machinery of
//!   [`supmr_metrics::server`].
//! * **Scheduler** ([`scheduler`]) — a bounded admission queue with
//!   priority classes; runner threads dispatch map/reduce waves of
//!   concurrent jobs onto **one shared persistent worker pool**, with
//!   per-job wave-width caps from a weighted [`supmr::FairShare`].
//! * **Budget partitioning** — one global memory budget re-partitioned
//!   across live tenants by priority weight
//!   ([`supmr::spill::MemoryAccountant::set_budget`]): a job that
//!   outgrows its slice spills sorted runs to disk instead of failing
//!   or starving its neighbors.
//! * **Per-job adaptivity** — each job may run its own feedback
//!   governor, which actuates *inside* the job's fair share (the share
//!   cap clamps whatever widths the governor picks).
//!
//! The service runs on generated workloads (deterministic text or
//! teragen records), so outputs are independently checkable: the status
//! digest of a job run on the shared daemon equals the digest of the
//! same spec run in isolation.

pub mod daemon;
pub mod job;
pub mod runner;
pub mod scheduler;
pub mod spec;

pub use daemon::Daemon;
pub use job::{JobHandle, JobOutput, JobStatus};
pub use runner::reference_output;
pub use scheduler::{Scheduler, ServeConfig, SubmitError};
pub use spec::{AppSpec, JobSpec, Priority, SpecError};
