//! The job submission spec: what a `POST /jobs` body may say.
//!
//! Decoding is hand-rolled over the dependency-free
//! [`Json`] value model — the same serde-free posture as the rest of
//! the observability stack — and size/duration strings go through the
//! hardened [`supmr::parse`] module the CLI uses, so `"64K"` means the
//! same thing on the wire as it does on the command line.

use supmr_metrics::Json;

/// Decode failure: what was wrong with the submitted spec. Rendered
/// into the `400 Bad Request` body verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Which bundled application a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSpec {
    /// Hash-container word count (ingest-bound).
    WordCount,
    /// Map-side pattern matching.
    Grep,
    /// 100-byte-record sort (merge-bound).
    TeraSort,
}

impl AppSpec {
    /// The wire name, as accepted in `"app"` and echoed in status JSON.
    pub fn name(self) -> &'static str {
        match self {
            AppSpec::WordCount => "wordcount",
            AppSpec::Grep => "grep",
            AppSpec::TeraSort => "terasort",
        }
    }
}

/// Admission priority class. Higher classes get a larger fair-share
/// weight for pool slots and budget partitions, and leave the queue
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: smallest share, dispatched last.
    Low,
    /// The default class.
    Normal,
    /// Latency-sensitive work: largest share, dispatched first.
    High,
}

impl Priority {
    /// Fair-share weight: how many shares of the pool and of the global
    /// memory budget this class holds relative to its neighbors.
    pub fn weight(self) -> usize {
        match self {
            Priority::High => 4,
            Priority::Normal => 2,
            Priority::Low => 1,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// A decoded job submission. Every field beyond `app` has a default, so
/// `{"app":"wordcount"}` is a complete spec.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which application to run.
    pub app: AppSpec,
    /// Client-chosen label, echoed in status JSON (never the job id —
    /// ids are server-assigned, so a hostile name stays a label value).
    pub name: Option<String>,
    /// Admission class.
    pub priority: Priority,
    /// Bytes of input to generate (`"generate"`: a size string or
    /// number). Jobs run on generated workloads so the service stays
    /// deterministic and self-contained.
    pub input_bytes: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Mapper threads (before fair-share capping). `None` uses the
    /// daemon's per-job default.
    pub map_workers: Option<usize>,
    /// Reducer threads (before fair-share capping).
    pub reduce_workers: Option<usize>,
    /// Input split size in bytes.
    pub split_bytes: Option<u64>,
    /// Ingest chunk size in bytes (inter-file chunking).
    pub chunk_bytes: Option<u64>,
    /// Job-requested memory budget. Under a daemon-wide budget the
    /// tenant partition governs instead; this engages out-of-core
    /// execution when the daemon has no global budget.
    pub memory_budget: Option<u64>,
    /// Container hash seed, for reproducible placement.
    pub hash_seed: Option<u64>,
    /// Patterns for [`AppSpec::Grep`].
    pub patterns: Vec<String>,
    /// Run the per-job feedback governor (actuates within the job's
    /// fair share).
    pub governor: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            app: AppSpec::WordCount,
            name: None,
            priority: Priority::Normal,
            input_bytes: 1024 * 1024,
            seed: 42,
            map_workers: None,
            reduce_workers: None,
            split_bytes: None,
            chunk_bytes: None,
            memory_budget: None,
            hash_seed: None,
            patterns: Vec::new(),
            governor: false,
        }
    }
}

/// A size-ish field: either a JSON number of bytes or a size string
/// (`"64K"`, `"1.5M"`) parsed by [`supmr::parse_size`].
fn size_field(value: &Json, field: &str) -> Result<u64, SpecError> {
    match value {
        Json::Str(s) => supmr::parse_size(s).map_err(|e| bad(format!("{field}: {}", e.0))),
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => Ok(*n as u64),
        _ => Err(bad(format!("{field}: expected a byte count or size string"))),
    }
}

fn uint_field(value: &Json, field: &str) -> Result<u64, SpecError> {
    match value {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => Ok(*n as u64),
        _ => Err(bad(format!("{field}: expected a non-negative integer"))),
    }
}

impl JobSpec {
    /// Decode a `POST /jobs` body. Unknown fields are rejected — a
    /// typoed knob silently ignored is a misconfigured job.
    pub fn from_json_bytes(body: &[u8]) -> Result<JobSpec, SpecError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        JobSpec::from_json(&json)
    }

    /// Decode an already-parsed [`Json`] object.
    pub fn from_json(json: &Json) -> Result<JobSpec, SpecError> {
        let Json::Obj(fields) = json else { return Err(bad("spec must be a JSON object")) };
        let mut spec = JobSpec::default();
        let mut saw_app = false;
        for (key, value) in fields {
            match key.as_str() {
                "app" => {
                    saw_app = true;
                    spec.app = match value.as_str() {
                        Some("wordcount") => AppSpec::WordCount,
                        Some("grep") => AppSpec::Grep,
                        Some("terasort") => AppSpec::TeraSort,
                        Some(other) => return Err(bad(format!("unknown app '{other}'"))),
                        None => return Err(bad("app: expected a string")),
                    };
                }
                "name" => {
                    spec.name = Some(
                        value.as_str().ok_or_else(|| bad("name: expected a string"))?.to_string(),
                    );
                }
                "priority" => {
                    spec.priority = match value.as_str() {
                        Some("high") => Priority::High,
                        Some("normal") => Priority::Normal,
                        Some("low") => Priority::Low,
                        _ => return Err(bad("priority: expected high, normal, or low")),
                    };
                }
                "generate" => {
                    spec.input_bytes = size_field(value, "generate")?;
                    if spec.input_bytes == 0 {
                        return Err(bad("generate: input must be non-empty"));
                    }
                }
                "seed" => spec.seed = uint_field(value, "seed")?,
                "workers" => {
                    let w = uint_field(value, "workers")? as usize;
                    spec.map_workers = Some(w);
                    spec.reduce_workers = Some(w);
                }
                "map_workers" => {
                    spec.map_workers = Some(uint_field(value, "map_workers")? as usize)
                }
                "reduce_workers" => {
                    spec.reduce_workers = Some(uint_field(value, "reduce_workers")? as usize)
                }
                "split" => spec.split_bytes = Some(size_field(value, "split")?),
                "chunk" => spec.chunk_bytes = Some(size_field(value, "chunk")?),
                "memory_budget" => spec.memory_budget = Some(size_field(value, "memory_budget")?),
                "hash_seed" => spec.hash_seed = Some(uint_field(value, "hash_seed")?),
                "patterns" => {
                    let arr = value.as_arr().ok_or_else(|| bad("patterns: expected an array"))?;
                    spec.patterns = arr
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .map(String::from)
                                .ok_or_else(|| bad("patterns: expected strings"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "pattern" => {
                    spec.patterns = vec![value
                        .as_str()
                        .ok_or_else(|| bad("pattern: expected a string"))?
                        .to_string()];
                }
                "governor" => {
                    spec.governor = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(bad("governor: expected a boolean")),
                    };
                }
                other => return Err(bad(format!("unknown field '{other}'"))),
            }
        }
        if !saw_app {
            return Err(bad("missing required field 'app'"));
        }
        if spec.app == AppSpec::Grep && spec.patterns.is_empty() {
            return Err(bad("grep needs at least one pattern"));
        }
        if spec.map_workers == Some(0) || spec.reduce_workers == Some(0) {
            return Err(bad("worker counts must be non-zero"));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_decodes_with_defaults() {
        let spec = JobSpec::from_json_bytes(br#"{"app":"wordcount"}"#).expect("decode");
        assert_eq!(spec.app, AppSpec::WordCount);
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.input_bytes, 1024 * 1024);
        assert_eq!(spec.seed, 42);
        assert!(!spec.governor);
    }

    #[test]
    fn full_spec_decodes_sizes_and_priorities() {
        let body = br#"{
            "app": "terasort", "name": "nightly sort", "priority": "high",
            "generate": "2M", "seed": 7, "workers": 3, "split": "64K",
            "chunk": "256K", "memory_budget": "512K", "hash_seed": 9,
            "governor": true
        }"#;
        let spec = JobSpec::from_json_bytes(body).expect("decode");
        assert_eq!(spec.app, AppSpec::TeraSort);
        assert_eq!(spec.name.as_deref(), Some("nightly sort"));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.input_bytes, 2 * 1024 * 1024);
        assert_eq!(spec.map_workers, Some(3));
        assert_eq!(spec.reduce_workers, Some(3));
        assert_eq!(spec.split_bytes, Some(64 * 1024));
        assert_eq!(spec.chunk_bytes, Some(256 * 1024));
        assert_eq!(spec.memory_budget, Some(512 * 1024));
        assert_eq!(spec.hash_seed, Some(9));
        assert!(spec.governor);
    }

    #[test]
    fn numeric_sizes_are_accepted() {
        let spec =
            JobSpec::from_json_bytes(br#"{"app":"wordcount","generate":4096}"#).expect("decode");
        assert_eq!(spec.input_bytes, 4096);
    }

    #[test]
    fn hostile_specs_are_rejected_with_reasons() {
        for (body, needle) in [
            (&br#"{"app":"sort"}"#[..], "unknown app"),
            (br#"{}"#, "missing required field"),
            (br#"{"app":"wordcount","typo":1}"#, "unknown field"),
            (br#"{"app":"wordcount","generate":"-4K"}"#, "generate"),
            (br#"{"app":"wordcount","generate":0}"#, "non-empty"),
            (br#"{"app":"wordcount","workers":0}"#, "non-zero"),
            (br#"{"app":"grep"}"#, "pattern"),
            (br#"{"app":"wordcount","priority":"urgent"}"#, "priority"),
            (br#"not json"#, "invalid JSON"),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let err = JobSpec::from_json_bytes(body).expect_err("must reject");
            assert!(err.0.contains(needle), "{body:?}: {err}");
        }
    }

    #[test]
    fn grep_accepts_single_and_plural_patterns() {
        let one = JobSpec::from_json_bytes(br#"{"app":"grep","pattern":"the"}"#).unwrap();
        assert_eq!(one.patterns, vec!["the".to_string()]);
        let two = JobSpec::from_json_bytes(br#"{"app":"grep","patterns":["a","b"]}"#).unwrap();
        assert_eq!(two.patterns, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::High.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
    }
}
