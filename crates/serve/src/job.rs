//! Per-job state inside the daemon: identity, lifecycle, per-job
//! observability facilities, and the finished output summary.

use crate::spec::JobSpec;
use parking_lot::Mutex;
use std::sync::Arc;
use supmr::runtime::{ActiveConfig, JobReport};
use supmr_metrics::{Json, Registry, TraceRing};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a runner slot.
    Queued,
    /// Executing on the shared pool.
    Running,
    /// Finished successfully; output and report are available.
    Completed,
    /// Finished with an error.
    Failed,
    /// Cancelled (while queued, or cooperatively mid-run).
    Cancelled,
}

impl JobStatus {
    /// The wire name used in status JSON.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled)
    }
}

/// The independently-checkable summary of a finished job's output: the
/// pair count, an order-independent digest over the sorted pairs, and a
/// short human preview. Clients verify correctness by digest without
/// shipping the whole output over the status endpoint.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Reduced output pairs produced.
    pub pairs: u64,
    /// `fnv1a:<16 hex>` over the key-sorted pair stream.
    pub digest: String,
    /// The first few pairs, rendered one per line.
    pub preview: Vec<String>,
}

/// Mutable lifecycle state, guarded by the handle's mutex.
struct JobState {
    status: JobStatus,
    error: Option<String>,
    output: Option<JobOutput>,
    report: Option<JobReport>,
}

/// One submitted job, shared between the HTTP surface, the queue, and
/// the runner that executes it. The observability facilities (registry,
/// trace ring, dynamic knobs) exist from admission, so a queued job
/// already answers status and scrape requests.
pub struct JobHandle {
    /// Server-assigned id (`job-N`) — path segment and `job_id` label.
    pub id: String,
    /// Monotonic admission number behind the id.
    pub seq: u64,
    /// The decoded submission.
    pub spec: JobSpec,
    /// Job-private metric families, merged into `/metrics` under this
    /// job's `job_id` label.
    pub registry: Registry,
    /// Bounded event ring behind `/debug/trace` and `/debug/governor`.
    pub ring: Arc<TraceRing>,
    /// Dynamic knobs: the cancel flag, the fair-share width cap, and
    /// the governor's actuation surface.
    pub active: Arc<ActiveConfig>,
    state: Mutex<JobState>,
}

impl JobHandle {
    /// Admit `spec` as job number `seq` with `workers`-wide initial
    /// scheduling knobs.
    pub fn new(seq: u64, spec: JobSpec, map_workers: usize, reduce_workers: usize) -> JobHandle {
        JobHandle {
            id: format!("job-{seq}"),
            seq,
            active: Arc::new(ActiveConfig::new(map_workers, reduce_workers, 1)),
            registry: Registry::new(),
            ring: TraceRing::new(TraceRing::DEFAULT_CAP),
            spec,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                error: None,
                output: None,
                report: None,
            }),
        }
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state.lock().status
    }

    /// Move to `Running` — only from `Queued`. Returns `false` when the
    /// job was cancelled while waiting (the runner then skips it).
    pub fn begin(&self) -> bool {
        let mut s = self.state.lock();
        if s.status != JobStatus::Queued {
            return false;
        }
        s.status = JobStatus::Running;
        true
    }

    /// Record a successful completion.
    pub fn complete(&self, output: JobOutput, report: JobReport) {
        let mut s = self.state.lock();
        s.status = JobStatus::Completed;
        s.output = Some(output);
        s.report = Some(report);
    }

    /// Record a failure (or a cooperative cancellation surfacing as
    /// [`supmr::SupmrError::Cancelled`]).
    pub fn fail(&self, error: &supmr::SupmrError) {
        let mut s = self.state.lock();
        s.status = match error {
            supmr::SupmrError::Cancelled => JobStatus::Cancelled,
            _ => JobStatus::Failed,
        };
        s.error = Some(error.to_string());
    }

    /// Request cancellation: a queued job is cancelled outright; a
    /// running job gets its cooperative flag raised and stops at the
    /// next wave boundary. Returns `false` when already terminal.
    pub fn cancel(&self) -> bool {
        let mut s = self.state.lock();
        match s.status {
            JobStatus::Queued => {
                s.status = JobStatus::Cancelled;
                s.error = Some("cancelled before start".to_string());
                true
            }
            JobStatus::Running => {
                self.active.cancel();
                true
            }
            _ => false,
        }
    }

    /// The `GET /jobs/{id}` body: identity, lifecycle, and — once
    /// terminal — the output summary and the full
    /// `supmr.job_report.v1` report.
    pub fn status_json(&self) -> Json {
        let s = self.state.lock();
        let mut fields = vec![
            ("schema", Json::str("supmr.job_status.v1")),
            ("id", Json::str(&self.id)),
            ("app", Json::str(self.spec.app.name())),
            ("priority", Json::str(self.spec.priority.name())),
            ("status", Json::str(s.status.name())),
        ];
        if let Some(name) = &self.spec.name {
            fields.insert(2, ("name", Json::str(name)));
        }
        if let Some(err) = &s.error {
            fields.push(("error", Json::str(err)));
        }
        if let Some(out) = &s.output {
            fields.push((
                "output",
                Json::obj(vec![
                    ("pairs", Json::from(out.pairs)),
                    ("digest", Json::str(&out.digest)),
                    ("preview", Json::Arr(out.preview.iter().map(Json::str).collect())),
                ]),
            ));
        }
        if let Some(report) = &s.report {
            fields.push(("report", report.to_json()));
        }
        Json::obj(fields)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("app", &self.spec.app.name())
            .field("status", &self.status().name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn handle() -> JobHandle {
        JobHandle::new(1, JobSpec::default(), 2, 2)
    }

    #[test]
    fn lifecycle_transitions() {
        let j = handle();
        assert_eq!(j.status(), JobStatus::Queued);
        assert!(j.begin());
        assert_eq!(j.status(), JobStatus::Running);
        assert!(!j.begin(), "begin is one-shot");
        j.complete(
            JobOutput { pairs: 3, digest: "fnv1a:0".into(), preview: vec![] },
            JobReport::default(),
        );
        assert_eq!(j.status(), JobStatus::Completed);
        assert!(j.status().is_terminal());
        assert!(!j.cancel(), "terminal jobs cannot be cancelled");
    }

    #[test]
    fn queued_cancel_is_immediate_and_running_cancel_is_cooperative() {
        let j = handle();
        assert!(j.cancel());
        assert_eq!(j.status(), JobStatus::Cancelled);
        assert!(!j.begin(), "a cancelled job never starts");

        let j = handle();
        j.begin();
        assert!(j.cancel());
        assert_eq!(j.status(), JobStatus::Running, "running cancel is a request");
        assert!(j.active.is_cancelled(), "the cooperative flag is raised");
    }

    #[test]
    fn status_json_carries_identity_and_outcome() {
        let j =
            JobHandle::new(4, JobSpec { name: Some("my job".into()), ..JobSpec::default() }, 2, 2);
        let json = j.status_json();
        assert_eq!(json.get("id").unwrap().as_str(), Some("job-4"));
        assert_eq!(json.get("name").unwrap().as_str(), Some("my job"));
        assert_eq!(json.get("status").unwrap().as_str(), Some("queued"));
        assert!(json.get("report").is_none(), "no report before completion");

        j.begin();
        j.complete(
            JobOutput { pairs: 9, digest: "fnv1a:abc".into(), preview: vec!["a 1".into()] },
            JobReport::default(),
        );
        let json = j.status_json();
        assert_eq!(json.get("status").unwrap().as_str(), Some("completed"));
        let out = json.get("output").expect("output");
        assert_eq!(out.get("pairs").unwrap().as_f64(), Some(9.0));
        assert_eq!(out.get("digest").unwrap().as_str(), Some("fnv1a:abc"));
        let report = json.get("report").expect("report");
        assert_eq!(report.get("schema").unwrap().as_str(), Some("supmr.job_report.v1"));
    }
}
