//! The multi-tenant scheduler behind the job API: a bounded admission
//! queue with priority classes, runner threads dispatching map/reduce
//! waves onto one shared persistent pool with fair-share width caps,
//! and one global memory budget partitioned across the tenants that can
//! spill.
//!
//! Scheduling is cooperative rather than preemptive: a job's wave
//! widths are clamped to its [`supmr::FairShare`] allocation (weighted
//! by priority class), so a heavy neighbor narrows instead of starving
//! others, and a tenant whose budget partition shrinks spills to disk
//! (PR 5 machinery) instead of failing. The per-job feedback governor,
//! when requested, actuates inside that share — its width moves are
//! capped by the same ticket.

use crate::job::{JobHandle, JobStatus};
use crate::runner::{run_job, JobFacilities};
use crate::spec::JobSpec;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
// The queue's condition variables are std: the workspace's parking_lot
// surface is guaranteed only for plain mutexes.
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;
use supmr::pool::WorkerPool;
use supmr::spill::{MemoryAccountant, SpillMetrics};
use supmr::FairShare;
use supmr_metrics::{Counter, Gauge, Registry};

/// Daemon-level configuration: the shared facilities every job runs
/// against.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Threads in the shared persistent pool (and the slot total the
    /// fair share divides).
    pub workers: usize,
    /// Runner threads: how many jobs execute concurrently.
    pub max_concurrent: usize,
    /// Bounded admission queue depth; a full queue rejects with 503.
    pub queue_depth: usize,
    /// Global memory budget partitioned across running spill-capable
    /// tenants; `None` leaves budgets to each job's own spec.
    pub memory_budget: Option<u64>,
    /// Default per-job worker width when a spec names none.
    pub default_job_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        ServeConfig {
            workers: cores,
            max_concurrent: 2,
            queue_depth: 16,
            memory_budget: None,
            default_job_workers: cores,
        }
    }
}

/// Why a submission was turned away (rendered as a 503).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon is draining for shutdown.
    Draining,
    /// The admission queue is at capacity.
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "shutting down: not accepting jobs"),
            SubmitError::QueueFull => write!(f, "admission queue full"),
        }
    }
}

/// One spill-capable tenant's slice of the global budget ledger.
struct Tenant {
    seq: u64,
    weight: u64,
    accountant: Arc<MemoryAccountant>,
    budget_gauge: Gauge,
}

/// The global memory budget, re-partitioned across live tenants by
/// priority weight on every membership change. Shrinking a partition
/// mid-run never fails the tenant — it just spills sooner.
struct BudgetLedger {
    total: u64,
    tenants: Mutex<Vec<Tenant>>,
}

impl BudgetLedger {
    fn join(&self, seq: u64, weight: u64, accountant: Arc<MemoryAccountant>, gauge: Gauge) {
        let mut tenants = self.tenants.lock();
        tenants.push(Tenant { seq, weight, accountant, budget_gauge: gauge });
        self.rebalance(&tenants);
    }

    fn leave(&self, seq: u64) {
        let mut tenants = self.tenants.lock();
        tenants.retain(|t| t.seq != seq);
        self.rebalance(&tenants);
    }

    fn rebalance(&self, tenants: &[Tenant]) {
        let total_weight: u64 = tenants.iter().map(|t| t.weight).sum();
        for t in tenants {
            let share = (self.total * t.weight / total_weight.max(1)).max(1);
            t.accountant.set_budget(share);
            t.budget_gauge.set(share.min(i64::MAX as u64) as i64);
        }
    }
}

/// Daemon-level metric families (the unlabelled rows on `/metrics`,
/// next to the per-job `job_id`-labelled ones).
pub(crate) struct ServeMetrics {
    pub submitted: Counter,
    pub rejected: Counter,
    pub completed: Counter,
    pub failed: Counter,
    pub cancelled: Counter,
    pub queue_depth: Gauge,
    pub running: Gauge,
}

impl ServeMetrics {
    fn register(r: &Registry) -> ServeMetrics {
        ServeMetrics {
            submitted: r.counter("supmr.serve.jobs_submitted", "Jobs admitted to the queue.", &[]),
            rejected: r.counter("supmr.serve.jobs_rejected", "Submissions turned away.", &[]),
            completed: r.counter("supmr.serve.jobs_completed", "Jobs finished successfully.", &[]),
            failed: r.counter("supmr.serve.jobs_failed", "Jobs finished with an error.", &[]),
            cancelled: r.counter("supmr.serve.jobs_cancelled", "Jobs cancelled.", &[]),
            queue_depth: r.gauge("supmr.serve.queue_depth", "Jobs waiting for a runner.", &[]),
            running: r.gauge("supmr.serve.jobs_running", "Jobs currently executing.", &[]),
        }
    }
}

struct SchedulerInner {
    config: ServeConfig,
    pool: WorkerPool,
    shares: Arc<FairShare>,
    registry: Registry,
    metrics: ServeMetrics,
    jobs: Mutex<Vec<Arc<JobHandle>>>,
    queue: StdMutex<VecDeque<Arc<JobHandle>>>,
    /// Signals runners that the queue changed (or stop was requested).
    work: Condvar,
    /// Signals waiters that a job reached a terminal state.
    settled: Condvar,
    draining: AtomicBool,
    stop: AtomicBool,
    running: AtomicUsize,
    next_seq: AtomicU64,
    budget: Option<BudgetLedger>,
}

/// The running scheduler: owns the shared pool, the runner threads, and
/// every job handle ever admitted.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Stand up the shared pool and `max_concurrent` runner threads.
    pub fn start(config: ServeConfig) -> Scheduler {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let workers = config.workers.max(1);
        let inner = Arc::new(SchedulerInner {
            pool: WorkerPool::new(workers),
            shares: FairShare::new(workers),
            metrics,
            registry,
            budget: config
                .memory_budget
                .map(|total| BudgetLedger { total: total.max(1), tenants: Mutex::new(Vec::new()) }),
            config,
            jobs: Mutex::new(Vec::new()),
            queue: StdMutex::new(VecDeque::new()),
            work: Condvar::new(),
            settled: Condvar::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            next_seq: AtomicU64::new(1),
        });
        let runners = (0..inner.config.max_concurrent.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("supmr-runner-{i}"))
                    .spawn(move || runner_loop(&inner))
                    .expect("spawn runner thread")
            })
            .collect();
        Scheduler { inner, runners: Mutex::new(runners) }
    }

    /// The daemon-level registry (`supmr.serve.*` families).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Admit `spec`, returning its handle, or reject when draining or
    /// full.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobHandle>, SubmitError> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Relaxed) {
            inner.metrics.rejected.inc();
            return Err(SubmitError::Draining);
        }
        let workers = inner.config.default_job_workers.max(1);
        let map_w = spec.map_workers.unwrap_or(workers).max(1);
        let reduce_w = spec.reduce_workers.unwrap_or(workers).max(1);
        let mut queue = inner.queue.lock().expect("queue lock");
        if queue.len() >= inner.config.queue_depth {
            inner.metrics.rejected.inc();
            return Err(SubmitError::QueueFull);
        }
        let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(JobHandle::new(seq, spec, map_w, reduce_w));
        queue.push_back(Arc::clone(&job));
        inner.metrics.submitted.inc();
        inner.metrics.queue_depth.set(queue.len() as i64);
        drop(queue);
        inner.jobs.lock().push(Arc::clone(&job));
        inner.work.notify_one();
        Ok(job)
    }

    /// Look up a job by its server-assigned id.
    pub fn job(&self, id: &str) -> Option<Arc<JobHandle>> {
        self.inner.jobs.lock().iter().find(|j| j.id == id).cloned()
    }

    /// Every admitted job, oldest first.
    pub fn jobs(&self) -> Vec<Arc<JobHandle>> {
        self.inner.jobs.lock().clone()
    }

    /// Cancel a job by id: queued jobs are dropped from the queue,
    /// running jobs get the cooperative flag. `None` means unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobStatus> {
        let job = self.job(id)?;
        if job.cancel() {
            // Remove a queued casualty from the admission queue so no
            // runner dequeues a corpse.
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.retain(|j| j.seq != job.seq);
            self.inner.metrics.queue_depth.set(queue.len() as i64);
            drop(queue);
            if job.status() == JobStatus::Cancelled {
                self.inner.metrics.cancelled.inc();
                self.inner.settled.notify_all();
            }
        }
        Some(job.status())
    }

    /// Stop admitting new jobs. Queued and running jobs still finish.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Relaxed);
    }

    /// Whether [`Scheduler::drain`] was called.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Relaxed)
    }

    /// Block until every admitted job is terminal, or `timeout` passes.
    /// Returns whether the queue fully settled.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().expect("queue lock");
        loop {
            let busy = !queue.is_empty() || self.inner.running.load(Ordering::Relaxed) > 0;
            if !busy {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            queue = self.inner.settled.wait_timeout(queue, deadline - now).expect("queue lock").0;
        }
    }

    /// Drain, wait for in-flight jobs, and join the runner threads.
    pub fn shutdown(&self, timeout: Duration) -> bool {
        self.drain();
        let settled = self.wait_idle(timeout);
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.work.notify_all();
        for handle in self.runners.lock().drain(..) {
            let _ = handle.join();
        }
        settled
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.work.notify_all();
        for handle in self.runners.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

fn runner_loop(inner: &SchedulerInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = pop_highest_priority(&mut queue) {
                    // Claim the running slot while still holding the
                    // queue lock, so `wait_idle` never observes the job
                    // as neither queued nor running.
                    inner.running.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.queue_depth.set(queue.len() as i64);
                    break job;
                }
                queue = inner.work.wait(queue).expect("queue lock");
            }
        };
        execute(inner, &job);
        inner.running.fetch_sub(1, Ordering::Relaxed);
        inner.metrics.running.set(inner.running.load(Ordering::Relaxed) as i64);
        // Terminal-state edge: wake drain waiters under the queue lock
        // they sleep on.
        drop(inner.queue.lock().expect("queue lock"));
        inner.settled.notify_all();
    }
}

/// Highest priority class first; FIFO within a class.
fn pop_highest_priority(queue: &mut VecDeque<Arc<JobHandle>>) -> Option<Arc<JobHandle>> {
    let best = queue
        .iter()
        .enumerate()
        .max_by_key(|(i, j)| (j.spec.priority, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)?;
    queue.remove(best)
}

/// Run one admitted job end to end: claim it, take a fair-share ticket
/// and (when budgeted) a tenant partition, execute, settle the ledger,
/// and record the outcome.
fn execute(inner: &SchedulerInner, job: &Arc<JobHandle>) {
    if !job.begin() {
        return; // cancelled while queued, after we dequeued it
    }
    inner.metrics.running.set(inner.running.load(Ordering::Relaxed) as i64);

    // Fair share: this tenant's pool slots, applied as a live cap on
    // the job's wave widths. The ticket's Drop releases the share.
    let weight = job.spec.priority.weight();
    let active = Arc::clone(&job.active);
    let _ticket = inner.shares.register(weight, move |cap| active.set_share_cap(cap));

    // Budget: spill-capable tenants get a partition of the global
    // ledger; membership changes re-partition every live tenant.
    let accountant = match (&inner.budget, job.spec.app.supports_spill()) {
        (Some(ledger), true) => {
            let spill_metrics = SpillMetrics::register(&job.registry);
            let accountant =
                Arc::new(MemoryAccountant::new(1).with_gauge(spill_metrics.resident_bytes.clone()));
            ledger.join(
                job.seq,
                weight as u64,
                Arc::clone(&accountant),
                spill_metrics.budget_bytes.clone(),
            );
            Some(accountant)
        }
        _ => None,
    };

    let facilities = JobFacilities {
        pool: &inner.pool,
        accountant: accountant.clone(),
        registry: job.registry.clone(),
        ring: Arc::clone(&job.ring),
        active: Arc::clone(&job.active),
        default_workers: inner.config.default_job_workers,
    };
    let outcome = run_job(&job.spec, facilities);

    if let (Some(ledger), Some(_)) = (&inner.budget, &accountant) {
        ledger.leave(job.seq);
    }
    match outcome {
        Ok((output, report)) => {
            job.complete(output, report);
            inner.metrics.completed.inc();
        }
        Err(err) => {
            match err {
                supmr::SupmrError::Cancelled => inner.metrics.cancelled.inc(),
                _ => inner.metrics.failed.inc(),
            }
            job.fail(&err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Priority;

    fn quick_spec(bytes: u64) -> JobSpec {
        JobSpec { input_bytes: bytes, ..JobSpec::default() }
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_concurrent: 2,
            queue_depth: 4,
            memory_budget: None,
            default_job_workers: 2,
        }
    }

    #[test]
    fn submits_run_to_completion() {
        let sched = Scheduler::start(small_config());
        let job = sched.submit(quick_spec(16 * 1024)).expect("admit");
        assert!(sched.wait_idle(Duration::from_secs(30)), "job settles");
        assert_eq!(job.status(), JobStatus::Completed);
        let json = job.status_json();
        assert!(json.get("output").is_some());
        assert!(sched.job(&job.id).is_some());
        assert!(sched.job("job-999").is_none());
    }

    #[test]
    fn queue_bounds_and_drain_reject() {
        let sched =
            Scheduler::start(ServeConfig { max_concurrent: 1, queue_depth: 1, ..small_config() });
        // A grossly oversized queue burst: at most 1 + in-flight admit.
        let mut accepted = 0;
        for _ in 0..8 {
            if sched.submit(quick_spec(512 * 1024)).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted <= 3, "bounded admission, got {accepted}");
        sched.drain();
        assert_eq!(sched.submit(quick_spec(1024)).unwrap_err(), SubmitError::Draining);
        assert!(sched.wait_idle(Duration::from_secs(60)), "drain settles");
    }

    #[test]
    fn queued_jobs_dispatch_by_priority_class() {
        // One runner, pre-loaded queue: after the first job (FIFO grab)
        // the high-priority straggler must overtake the low one.
        let sched =
            Scheduler::start(ServeConfig { max_concurrent: 1, queue_depth: 8, ..small_config() });
        let blocker = sched.submit(quick_spec(256 * 1024)).expect("blocker");
        let low = sched
            .submit(JobSpec { priority: Priority::Low, ..quick_spec(16 * 1024) })
            .expect("low");
        let high = sched
            .submit(JobSpec { priority: Priority::High, ..quick_spec(16 * 1024) })
            .expect("high");
        assert!(sched.wait_idle(Duration::from_secs(60)), "all settle");
        for job in [&blocker, &low, &high] {
            assert_eq!(job.status(), JobStatus::Completed, "{}", job.id);
        }
        // Completion order is not directly observable post-hoc from
        // status; assert the selection function instead.
        let mut q = VecDeque::new();
        q.push_back(Arc::clone(&low));
        q.push_back(Arc::clone(&high));
        let first = pop_highest_priority(&mut q).unwrap();
        assert_eq!(first.seq, high.seq, "high priority leaves the queue first");
    }

    #[test]
    fn cancel_queued_and_unknown_ids() {
        let sched =
            Scheduler::start(ServeConfig { max_concurrent: 1, queue_depth: 8, ..small_config() });
        let blocker = sched.submit(quick_spec(512 * 1024)).expect("blocker");
        let victim = sched.submit(quick_spec(256 * 1024)).expect("victim");
        let status = sched.cancel(&victim.id).expect("known id");
        assert!(
            matches!(status, JobStatus::Cancelled | JobStatus::Running),
            "victim cancelled (or raced into running): {status:?}"
        );
        assert!(sched.cancel("job-777").is_none(), "unknown id is None");
        assert!(sched.wait_idle(Duration::from_secs(60)));
        assert_eq!(blocker.status(), JobStatus::Completed);
    }

    #[test]
    fn shared_budget_is_partitioned_and_returned() {
        let sched = Scheduler::start(ServeConfig {
            memory_budget: Some(64 * 1024),
            max_concurrent: 2,
            ..small_config()
        });
        let a = sched.submit(quick_spec(128 * 1024)).expect("a");
        let b = sched.submit(quick_spec(128 * 1024)).expect("b");
        assert!(sched.wait_idle(Duration::from_secs(60)));
        assert_eq!(a.status(), JobStatus::Completed, "{:?}", a.status_json().render());
        assert_eq!(b.status(), JobStatus::Completed);
        // Both ran under a partition small enough to make wordcount on
        // 128K of text spill; the ledger emptied afterwards.
        let ledger = sched.inner.budget.as_ref().expect("budgeted");
        assert!(ledger.tenants.lock().is_empty(), "tenants left the ledger");
    }
}
