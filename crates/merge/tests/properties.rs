//! Property-based tests for the merge algorithms: all merge paths must
//! agree with plain sorting for arbitrary inputs, preserve multiplicity,
//! and respect stability.

use proptest::collection::vec;
use proptest::prelude::*;
use supmr_merge::{
    kway_merge, pairwise_merge_rounds, parallel_kway_merge, parallel_sort, MergeBackend,
};

/// Arbitrary sorted runs: up to 12 runs of up to 200 small values.
fn arb_runs() -> impl Strategy<Value = Vec<Vec<u16>>> {
    vec(vec(0u16..500, 0..200), 0..12).prop_map(|mut runs| {
        for r in &mut runs {
            r.sort_unstable();
        }
        runs
    })
}

fn sorted_concat(runs: &[Vec<u16>]) -> Vec<u16> {
    let mut all: Vec<u16> = runs.iter().flatten().copied().collect();
    all.sort_unstable();
    all
}

proptest! {
    #[test]
    fn kway_merge_equals_sorted_concat(runs in arb_runs()) {
        let expected = sorted_concat(&runs);
        let (out, stats) = kway_merge(runs);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(stats.elements_moved as usize, expected.len());
    }

    #[test]
    fn parallel_kway_equals_sorted_concat(runs in arb_runs(), ways in 1usize..9) {
        let expected = sorted_concat(&runs);
        let (out, stats) = parallel_kway_merge(runs, ways);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(stats.elements_moved as usize, expected.len());
    }

    #[test]
    fn pairwise_equals_sorted_concat(runs in arb_runs(), parallel in any::<bool>()) {
        let expected = sorted_concat(&runs);
        let (out, stats) = pairwise_merge_rounds(runs.clone(), parallel);
        prop_assert_eq!(&out, &expected);
        // Round count is ceil(log2(#non-empty runs)).
        let k = runs.iter().filter(|r| !r.is_empty()).count();
        if k > 1 {
            let expected_rounds = (k as f64).log2().ceil() as u32;
            prop_assert_eq!(stats.rounds, expected_rounds);
        } else {
            prop_assert_eq!(stats.rounds, 0);
        }
    }

    #[test]
    fn parallel_sort_equals_std_sort(
        data in vec(0u16..2000, 0..3000),
        run_count in 1usize..40,
        ways in 1usize..9,
    ) {
        let mut expected = data.clone();
        expected.sort_unstable();
        let (a, _) = parallel_sort(data.clone(), run_count, MergeBackend::PairwiseRounds);
        let (b, _) = parallel_sort(data, run_count, MergeBackend::PWay { ways });
        prop_assert_eq!(&a, &expected);
        prop_assert_eq!(&b, &expected);
    }

    #[test]
    fn merge_backends_agree_exactly(runs in arb_runs()) {
        let (a, _) = kway_merge(runs.clone());
        let (b, _) = parallel_kway_merge(runs.clone(), 4);
        let (c, _) = pairwise_merge_rounds(runs, true);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn kway_is_stable_by_run_index(
        keys in vec(vec(0u8..8, 0..40), 0..6)
    ) {
        // Tag each element with (key, run, position); stability means the
        // output's (run, position) is nondecreasing within equal keys.
        let runs: Vec<Vec<(u8, usize, usize)>> = keys
            .iter()
            .enumerate()
            .map(|(ri, ks)| {
                let mut ks: Vec<u8> = ks.clone();
                ks.sort_unstable();
                ks.into_iter().enumerate().map(|(pi, k)| (k, ri, pi)).collect()
            })
            .collect();
        // Compare only on the key: wrap in a struct ordering on key alone.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct E((u8, usize, usize));
        impl Ord for E {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering { self.0.0.cmp(&o.0.0) }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> { Some(self.cmp(o)) }
        }
        let wrapped: Vec<Vec<E>> =
            runs.into_iter().map(|r| r.into_iter().map(E).collect()).collect();
        let (out, _) = kway_merge(wrapped);
        for w in out.windows(2) {
            let (ka, ra, pa) = w[0].0;
            let (kb, rb, pb) = w[1].0;
            prop_assert!(ka <= kb);
            if ka == kb {
                prop_assert!((ra, pa) < (rb, pb), "stability violated");
            }
        }
    }
}
