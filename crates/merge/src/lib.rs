//! Sorting and merging algorithms for the SupMR merge phase.
//!
//! The paper's merge-phase finding (§IV): the stock Phoenix++ runtime
//! merges sorted runs with **iterative 2-way rounds** — each round merges
//! pairs of lists in parallel, halving the number of active threads, and
//! every round re-scans all N elements, so total data movement is
//! `N·⌈log₂ k⌉` for `k` runs. SupMR replaces this with a **p-way merge**
//! (à la `gnu_parallel::sort`, Salzberg's "merging sorted runs using large
//! main memory"): one pass over the data using a tournament (loser) tree,
//! `N` element moves and `N·log₂ k` comparisons but no re-scanning, and a
//! single fully-parallel round instead of a thread-starved step-down.
//!
//! This crate implements both sides of that comparison plus the parallel
//! sorts built on them:
//!
//! * [`loser_tree`] — the k-way tournament tree.
//! * [`kway`] — single-pass p-way merge, sequential and parallel
//!   (output-partitioned by splitter keys).
//! * [`pairwise`] — the baseline iterative 2-way merge rounds with
//!   instrumentation (rounds, elements re-scanned, wave widths) so the
//!   "step curve" of the paper's Fig. 1 is observable.
//! * [`sort`] — parallel chunk sort + configurable merge backend; this is
//!   both the runtime's merge phase and the "OpenMP sort" comparator.
//!
//! ```
//! use supmr_merge::{kway_merge, pairwise_merge_rounds};
//!
//! let runs = vec![vec![1, 4, 7], vec![2, 5, 8], vec![0, 3, 6]];
//! let (merged, kw) = kway_merge(runs.clone());
//! assert_eq!(merged, (0..9).collect::<Vec<_>>());
//! assert_eq!(kw.elements_moved, 9);          // single pass
//!
//! let (_, pw) = pairwise_merge_rounds(runs, false);
//! assert_eq!(pw.rounds, 2);                  // ceil(log2(3))
//! assert!(pw.elements_moved > 9);            // re-scans each round
//! ```

pub mod external;
pub mod folded;
pub mod heap;
pub mod kway;
pub mod loser_tree;
pub mod pairwise;
pub mod sort;

pub use external::{
    crc32, external_sort, merge_run_files, spill_sorted_runs, RunReadError, RunReader, RunWriter,
};
pub use folded::{merge_by_key, merge_fold, FoldedMerge, Keyed};
pub use heap::heap_kway_merge;
pub use kway::{kway_merge, parallel_kway_merge, KwayStats};
pub use loser_tree::{merge_iterators, LoserTree};
pub use pairwise::{pairwise_merge_rounds, two_way_merge, PairwiseStats};
pub use sort::{parallel_sort, MergeBackend, SortStats};
