//! Binary-heap k-way merge — the textbook alternative to the loser tree.
//!
//! Kept as an independently-implemented comparator for the loser tree:
//! same asymptotics (`O(N log k)`), but each element performs a
//! sift-down *and* sift-up against ~2·log₂k candidates instead of the
//! loser tree's single root-to-leaf replay, so the tree typically does
//! ~half the comparisons. The benches quantify it; the tests use the
//! heap as an oracle for the tree.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Entry ordering: by head element, ties by run index (stability).
struct Entry<T: Ord> {
    head: T,
    run: usize,
    pos: usize,
}

impl<T: Ord> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.run == other.run
    }
}
impl<T: Ord> Eq for Entry<T> {}
impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.head.cmp(&other.head).then(self.run.cmp(&other.run))
    }
}

/// Merge sorted `runs` with a binary min-heap. Stable (ties by run
/// index). Returns the merged vector and the number of heap operations
/// (push + pop), the work metric comparable to loser-tree comparisons.
pub fn heap_kway_merge<T: Ord>(runs: Vec<Vec<T>>) -> (Vec<T>, u64) {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut ops = 0u64;

    let mut runs: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<Entry<T>>> = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter_mut().enumerate() {
        if let Some(head) = run.next() {
            heap.push(Reverse(Entry { head, run: i, pos: 0 }));
            ops += 1;
        }
    }
    while let Some(Reverse(Entry { head, run, pos })) = heap.pop() {
        ops += 1;
        out.push(head);
        if let Some(next) = runs[run].next() {
            heap.push(Reverse(Entry { head: next, run, pos: pos + 1 }));
            ops += 1;
        }
    }
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::kway_merge;

    #[test]
    fn merges_correctly() {
        let runs = vec![vec![1, 4, 7], vec![2, 5, 8], vec![0, 3, 6, 9]];
        let (out, ops) = heap_kway_merge(runs);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(ops > 10);
    }

    #[test]
    fn agrees_with_loser_tree_on_many_shapes() {
        for k in [0usize, 1, 2, 5, 16, 33] {
            let runs: Vec<Vec<u32>> =
                (0..k).map(|i| (0..((i * 7) % 19)).map(|j| (j * k + i) as u32).collect()).collect();
            let (heap_out, _) = heap_kway_merge(runs.clone());
            let (tree_out, _) = kway_merge(runs);
            assert_eq!(heap_out, tree_out, "k = {k}");
        }
    }

    #[test]
    fn stability_by_run_index() {
        #[derive(PartialEq, Eq, Debug, Clone)]
        struct KeyOnly(u8, usize);
        impl Ord for KeyOnly {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        impl PartialOrd for KeyOnly {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let runs = vec![
            vec![KeyOnly(1, 0), KeyOnly(3, 0)],
            vec![KeyOnly(1, 1)],
            vec![KeyOnly(1, 2), KeyOnly(2, 2)],
        ];
        let (out, _) = heap_kway_merge(runs);
        assert_eq!(
            out,
            vec![KeyOnly(1, 0), KeyOnly(1, 1), KeyOnly(1, 2), KeyOnly(2, 2), KeyOnly(3, 0)]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(heap_kway_merge(Vec::<Vec<u8>>::new()).0.is_empty());
        assert!(heap_kway_merge(vec![Vec::<u8>::new(), Vec::new()]).0.is_empty());
    }
}
