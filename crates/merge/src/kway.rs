//! Single-pass p-way merge, sequential and parallel.
//!
//! This is the merge SupMR substitutes for the runtime's iterative 2-way
//! rounds: "p-way merge merges N ordered lists into a single ordered array
//! using p processors" — one pass, one round, full parallelism throughout.
//!
//! The parallel variant partitions the *output* by splitter keys sampled
//! from the runs (the `gnu_parallel` multiway-merge strategy): each of the
//! `p` workers owns a disjoint key range, binary-searches every run for
//! its range boundaries, and loser-tree-merges just those subruns. Workers
//! never touch each other's output, so the round is embarrassingly
//! parallel and utilization stays flat-high instead of stepping down.

use crate::loser_tree::LoserTree;
use rayon::prelude::*;

/// Work counters from a k-way merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KwayStats {
    /// Number of key comparisons performed.
    pub comparisons: u64,
    /// Number of elements moved into the output (= N exactly: the merge is
    /// single-pass, the number the pairwise baseline multiplies by its
    /// round count).
    pub elements_moved: u64,
    /// Number of parallel partitions used (1 for the sequential variant).
    pub partitions: usize,
}

/// Merge `runs` (each sorted ascending) into one sorted vector in a single
/// sequential pass over the data.
pub fn kway_merge<T: Ord>(runs: Vec<Vec<T>>) -> (Vec<T>, KwayStats) {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut lt = LoserTree::new(runs.into_iter().map(Vec::into_iter).collect());
    let mut out = Vec::with_capacity(total);
    out.extend(lt.by_ref());
    let stats = KwayStats {
        comparisons: lt.comparisons(),
        elements_moved: out.len() as u64,
        partitions: 1,
    };
    (out, stats)
}

/// Merge `runs` into one sorted vector using `ways` parallel output
/// partitions.
///
/// Equal keys never straddle a partition boundary (boundaries are lower
/// bounds), and within a partition the loser tree is stable, so the merge
/// as a whole is stable.
///
/// Elements are **moved**, never cloned (runs are carved into disjoint
/// sub-runs with `split_off`); `Clone` is only needed to materialize the
/// few splitter keys. This matters: merge inputs are often
/// allocation-heavy records, and a cloning merge would hand the baseline
/// an artificial advantage.
///
/// # Panics
/// Panics if `ways == 0`.
pub fn parallel_kway_merge<T>(runs: Vec<Vec<T>>, ways: usize) -> (Vec<T>, KwayStats)
where
    T: Ord + Clone + Send,
{
    assert!(ways > 0, "need at least one way");
    let total: usize = runs.iter().map(Vec::len).sum();
    if ways == 1 || total == 0 || runs.len() <= 1 {
        let (out, mut stats) = kway_merge(runs);
        stats.partitions = 1;
        return (out, stats);
    }

    let splitters = sample_splitters(&runs, ways);
    // Partition p covers keys in [splitters[p-1], splitters[p]) with the
    // first and last partitions unbounded below/above. Carve each run
    // into owned sub-runs, back to front.
    let parts_count = splitters.len() + 1;
    let mut partition_jobs: Vec<Vec<Vec<T>>> =
        (0..parts_count).map(|_| Vec::with_capacity(runs.len())).collect();
    for mut run in runs {
        let cuts: Vec<usize> = splitters.iter().map(|s| run.partition_point(|x| x < s)).collect();
        for p in (1..parts_count).rev() {
            let tail = run.split_off(cuts[p - 1].min(run.len()));
            partition_jobs[p].push(tail);
        }
        partition_jobs[0].push(run);
    }

    let merged: Vec<(Vec<T>, u64)> = partition_jobs
        .into_par_iter()
        .map(|subruns| {
            let expected: usize = subruns.iter().map(Vec::len).sum();
            let mut lt = LoserTree::new(subruns.into_iter().map(Vec::into_iter).collect());
            let mut out = Vec::with_capacity(expected);
            out.extend(lt.by_ref());
            let comparisons = lt.comparisons();
            (out, comparisons)
        })
        .collect();

    let mut out = Vec::with_capacity(total);
    let mut comparisons = 0;
    let partitions = merged.len();
    for (part, c) in merged {
        out.extend(part);
        comparisons += c;
    }
    let stats = KwayStats { comparisons, elements_moved: out.len() as u64, partitions };
    (out, stats)
}

/// Pick `ways - 1` splitter keys that approximately equipartition the
/// merged output, by sampling each run at regular offsets and taking
/// quantiles of the pooled (sorted) sample.
fn sample_splitters<T: Ord + Clone>(runs: &[Vec<T>], ways: usize) -> Vec<T> {
    const OVERSAMPLE: usize = 8;
    let per_run = ways * OVERSAMPLE;
    let mut sample: Vec<T> = Vec::new();
    for run in runs {
        if run.is_empty() {
            continue;
        }
        // Cap at the run length: sampling a short run more times than it
        // has elements would duplicate them, over-weighting the short
        // run in the pooled quantiles and skewing partition balance.
        let take = per_run.min(run.len());
        for i in 0..take {
            let idx = i * run.len() / take;
            sample.push(run[idx].clone());
        }
    }
    sample.sort();
    if sample.is_empty() {
        return Vec::new();
    }
    (1..ways).map(|p| sample[(p * sample.len() / ways).min(sample.len() - 1)].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs_interleaved(k: usize, n_per: usize) -> Vec<Vec<u64>> {
        (0..k).map(|i| (0..n_per).map(|j| (j * k + i) as u64).collect()).collect()
    }

    #[test]
    fn sequential_kway_equals_sorted_concat() {
        let runs = runs_interleaved(7, 100);
        let mut expected: Vec<u64> = runs.iter().flatten().copied().collect();
        expected.sort();
        let (out, stats) = kway_merge(runs);
        assert_eq!(out, expected);
        assert_eq!(stats.elements_moved, 700);
        assert_eq!(stats.partitions, 1);
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn parallel_kway_equals_sequential() {
        let runs = runs_interleaved(9, 250);
        let (expected, _) = kway_merge(runs.clone());
        for ways in [1usize, 2, 3, 4, 8] {
            let (out, stats) = parallel_kway_merge(runs.clone(), ways);
            assert_eq!(out, expected, "ways = {ways}");
            assert_eq!(stats.elements_moved as usize, expected.len());
            assert!(stats.partitions <= ways.max(1));
        }
    }

    #[test]
    fn parallel_kway_handles_empty_and_tiny_runs() {
        let runs: Vec<Vec<u64>> = vec![vec![], vec![5], vec![], vec![1, 9]];
        let (out, _) = parallel_kway_merge(runs, 4);
        assert_eq!(out, vec![1, 5, 9]);
        let (out, _) = parallel_kway_merge(Vec::<Vec<u64>>::new(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_kway_with_heavy_duplicates() {
        let runs: Vec<Vec<u32>> = vec![vec![7; 500], vec![7; 300], vec![3; 200], vec![7; 100]];
        let (out, _) = parallel_kway_merge(runs, 4);
        assert_eq!(out.len(), 1100);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.iter().filter(|&&x| x == 3).count(), 200);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        parallel_kway_merge::<u32>(vec![vec![1]], 0);
    }

    #[test]
    fn splitters_are_sorted_and_bounded() {
        let runs = runs_interleaved(4, 64);
        let s = sample_splitters(&runs, 8);
        assert_eq!(s.len(), 7);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.iter().all(|&x| x < 256));
    }

    #[test]
    fn splitters_empty_when_all_runs_empty() {
        let runs: Vec<Vec<u32>> = vec![vec![], vec![]];
        assert!(sample_splitters(&runs, 4).is_empty());
    }

    #[test]
    fn short_runs_do_not_dominate_the_sample() {
        // A 2-element run next to a 100-element run. Uncapped sampling
        // would push 32 copies of {5, 6} into the pool (vs 32 samples of
        // 0..100), dragging every low quantile into the tiny run and
        // starving the early partitions.
        let runs: Vec<Vec<u32>> = vec![vec![5, 6], (0..100).collect()];
        let s = sample_splitters(&runs, 4);
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert!(s[0] > 6, "first splitter stuck inside the short run: {s:?}");
        assert!(s[2] > 50, "upper splitter must reach the long run's top half: {s:?}");
    }

    #[test]
    fn single_pass_moves_each_element_once() {
        let runs = runs_interleaved(16, 64);
        let n = 16 * 64;
        let (_, seq) = kway_merge(runs.clone());
        let (_, par) = parallel_kway_merge(runs, 4);
        assert_eq!(seq.elements_moved, n);
        assert_eq!(par.elements_moved, n);
    }
}
