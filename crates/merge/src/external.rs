//! External sorting: spill sorted runs to disk, stream-merge them back.
//!
//! The paper's p-way merge citation — Salzberg, *"Merging Sorted Runs
//! Using Large Main Memory"* — is an external-merge paper: the classic
//! discipline for inputs that exceed RAM is to sort bounded in-memory
//! runs, spill each to a run file, and k-way merge the run streams. The
//! in-memory SupMR runtime never needs this on the paper's 384GB box,
//! but a library a downstream user adopts for "large batch computations"
//! does; this module provides it on top of the same
//! [`LoserTree`](crate::LoserTree).
//!
//! Records are opaque byte strings ordered lexicographically (the
//! Terasort order), stored length-prefixed (`u32` little-endian) in the
//! run files.

use crate::loser_tree::merge_iterators;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Writes one sorted run as a length-prefixed record file.
pub struct RunWriter {
    out: BufWriter<File>,
    path: PathBuf,
    records: u64,
}

impl RunWriter {
    /// Create a run file at `path` (parent directories are created).
    pub fn create(path: impl AsRef<Path>) -> io::Result<RunWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(RunWriter { out: BufWriter::new(File::create(&path)?), path, records: 0 })
    }

    /// Append one record (caller guarantees run order).
    ///
    /// # Errors
    /// Fails for records longer than `u32::MAX` bytes or on I/O errors.
    pub fn push(&mut self, record: &[u8]) -> io::Result<()> {
        let len = u32::try_from(record.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(record)?;
        self.records += 1;
        Ok(())
    }

    /// Flush and close, returning the path and record count.
    pub fn finish(mut self) -> io::Result<(PathBuf, u64)> {
        self.out.flush()?;
        Ok((self.path, self.records))
    }
}

/// Streams the records of one run file.
pub struct RunReader {
    input: BufReader<File>,
    /// Deferred I/O error (iterators can't return `Result` cleanly; the
    /// merge surfaces this after iteration).
    error: Option<io::Error>,
}

impl RunReader {
    /// Open a run file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<RunReader> {
        Ok(RunReader { input: BufReader::new(File::open(path)?), error: None })
    }

    /// Any I/O error encountered while iterating.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }
}

impl Iterator for RunReader {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.error.is_some() {
            return None;
        }
        let mut len_buf = [0u8; 4];
        match self.input.read_exact(&mut len_buf) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
            Ok(()) => {}
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        // A corrupt prefix must surface as an error, not a giant
        // allocation: no writer in this module produces records beyond
        // this bound.
        const MAX_RECORD: usize = 256 * 1024 * 1024;
        if len > MAX_RECORD {
            self.error = Some(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt record length {len}"),
            ));
            return None;
        }
        let mut rec = vec![0u8; len];
        if let Err(e) = self.input.read_exact(&mut rec) {
            self.error = Some(e);
            return None;
        }
        Some(rec)
    }
}

/// Externally sort a stream of byte records: buffer up to
/// `run_budget_bytes` in memory, sort, spill as a run file under `dir`,
/// repeat; returns the run paths with their record counts (the counts
/// let callers detect truncated merges).
///
/// # Panics
/// Panics if `run_budget_bytes == 0`.
pub fn spill_sorted_runs(
    records: impl Iterator<Item = Vec<u8>>,
    run_budget_bytes: usize,
    dir: impl AsRef<Path>,
) -> io::Result<Vec<(PathBuf, u64)>> {
    assert!(run_budget_bytes > 0, "run budget must be non-zero");
    let dir = dir.as_ref();
    let mut paths = Vec::new();
    let mut buffer: Vec<Vec<u8>> = Vec::new();
    let mut buffered_bytes = 0usize;

    let spill = |buffer: &mut Vec<Vec<u8>>, paths: &mut Vec<(PathBuf, u64)>| -> io::Result<()> {
        if buffer.is_empty() {
            return Ok(());
        }
        buffer.sort_unstable();
        let path = dir.join(format!("run-{:05}.dat", paths.len()));
        let mut w = RunWriter::create(&path)?;
        for rec in buffer.drain(..) {
            w.push(&rec)?;
        }
        paths.push(w.finish()?);
        Ok(())
    };

    for rec in records {
        buffered_bytes += rec.len() + 4;
        buffer.push(rec);
        if buffered_bytes >= run_budget_bytes {
            spill(&mut buffer, &mut paths)?;
            buffered_bytes = 0;
        }
    }
    spill(&mut buffer, &mut paths)?;
    Ok(paths)
}

/// Merge previously-spilled run files into one sorted record stream.
/// The merge is streaming: memory use is one buffered record per run.
///
/// Caveat: mid-stream I/O errors end the affected run silently (the
/// iterator protocol has nowhere to put them). Callers that must detect
/// truncation should compare the merged record count against the counts
/// returned by [`spill_sorted_runs`], as [`external_sort`] does.
pub fn merge_run_files(paths: &[PathBuf]) -> io::Result<impl Iterator<Item = Vec<u8>>> {
    let readers = paths.iter().map(RunReader::open).collect::<io::Result<Vec<RunReader>>>()?;
    Ok(merge_iterators(readers))
}

/// Convenience: external sort end-to-end. Spills runs under `dir`,
/// merges them, and returns the fully sorted records (materialized).
/// Run files are removed afterwards. A merge that comes back short
/// (truncated or unreadable run file) is an error, never a silently
/// smaller output.
pub fn external_sort(
    records: impl Iterator<Item = Vec<u8>>,
    run_budget_bytes: usize,
    dir: impl AsRef<Path>,
) -> io::Result<Vec<Vec<u8>>> {
    let dir = dir.as_ref();
    let runs = spill_sorted_runs(records, run_budget_bytes, dir)?;
    let paths: Vec<PathBuf> = runs.iter().map(|(p, _)| p.clone()).collect();
    let expected: u64 = runs.iter().map(|(_, n)| n).sum();
    let merged: Vec<Vec<u8>> = merge_run_files(&paths)?.collect();
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    if merged.len() as u64 != expected {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "external merge returned {} of {expected} records (truncated run file?)",
                merged.len()
            ),
        ));
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("supmr-external-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn random_records(n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0..40);
                (0..len).map(|_| rng.gen::<u8>()).collect()
            })
            .collect()
    }

    #[test]
    fn run_file_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut w = RunWriter::create(dir.join("r.dat")).unwrap();
        let records = vec![b"".to_vec(), b"alpha".to_vec(), b"beta".to_vec()];
        for r in &records {
            w.push(r).unwrap();
        }
        let (path, count) = w.finish().unwrap();
        assert_eq!(count, 3);
        let mut reader = RunReader::open(&path).unwrap();
        let got: Vec<Vec<u8>> = reader.by_ref().collect();
        assert_eq!(got, records);
        assert!(reader.take_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_run_file_reports_an_error() {
        let dir = temp_dir("truncated");
        let path = dir.join("bad.dat");
        // Length prefix says 100 bytes, only 3 present.
        std::fs::write(&path, [100u32.to_le_bytes().as_slice(), b"abc"].concat()).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        assert!(reader.take_error().is_some(), "truncation must surface");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_sort_matches_in_memory_sort() {
        let dir = temp_dir("sorteq");
        let records = random_records(5_000, 9);
        let mut expected = records.clone();
        expected.sort_unstable();
        // Budget small enough to force many runs.
        let sorted = external_sort(records.into_iter(), 4 * 1024, &dir).unwrap();
        assert_eq!(sorted, expected);
        // Run files cleaned up.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_produces_multiple_sorted_runs() {
        let dir = temp_dir("spill");
        let records = random_records(1_000, 4);
        let runs = spill_sorted_runs(records.into_iter(), 2 * 1024, &dir).unwrap();
        assert!(runs.len() > 3, "expected several runs, got {}", runs.len());
        let total: u64 = runs.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1_000);
        for (p, n) in &runs {
            let run: Vec<Vec<u8>> = RunReader::open(p).unwrap().collect();
            assert_eq!(run.len() as u64, *n);
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_yields_no_runs_and_empty_output() {
        let dir = temp_dir("empty");
        let runs = spill_sorted_runs(std::iter::empty(), 1024, &dir).unwrap();
        assert!(runs.is_empty());
        let sorted = external_sort(std::iter::empty(), 1024, &dir).unwrap();
        assert!(sorted.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_length_prefix_is_an_error_not_an_allocation() {
        let dir = temp_dir("corrupt");
        let path = dir.join("bad.dat");
        std::fs::write(&path, u32::MAX.to_le_bytes()).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        let err = reader.take_error().expect("corruption must surface");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_stable_across_runs_with_duplicates() {
        let dir = temp_dir("dups");
        let records: Vec<Vec<u8>> = (0..200).map(|i| vec![(i % 3) as u8]).collect();
        let sorted = external_sort(records.into_iter(), 64, &dir).unwrap();
        assert_eq!(sorted.len(), 200);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn terasort_records_sort_externally() {
        let dir = temp_dir("tera");
        // Length-100 CRLF records sort by their whole body, which starts
        // with the 10-byte key — the Terasort order.
        let mut rng = SmallRng::seed_from_u64(3);
        let records: Vec<Vec<u8>> = (0..500)
            .map(|_| {
                let mut r = vec![0u8; 100];
                for b in r.iter_mut().take(10) {
                    *b = rng.gen_range(b'A'..=b'Z');
                }
                r[98] = b'\r';
                r[99] = b'\n';
                r
            })
            .collect();
        let sorted = external_sort(records.clone().into_iter(), 3_000, &dir).unwrap();
        let mut expected = records;
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
