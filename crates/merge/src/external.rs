//! External sorting: spill sorted runs to disk, stream-merge them back.
//!
//! The paper's p-way merge citation — Salzberg, *"Merging Sorted Runs
//! Using Large Main Memory"* — is an external-merge paper: the classic
//! discipline for inputs that exceed RAM is to sort bounded in-memory
//! runs, spill each to a run file, and k-way merge the run streams. The
//! in-memory SupMR runtime never needs this on the paper's 384GB box,
//! but a library a downstream user adopts for "large batch computations"
//! does; this module provides it on top of the same
//! [`LoserTree`](crate::LoserTree), and the runtime's out-of-core spill
//! path (`supmr::spill`) builds on the same run format.
//!
//! Records are opaque byte strings ordered lexicographically (the
//! Terasort order). Each record is framed as
//! `u32 length (LE) | u32 CRC32 (LE) | payload`: the checksum covers the
//! payload, so a truncated or bit-rotted run file surfaces as a typed
//! [`RunReadError::Corrupt`] instead of a mis-parsed length prefix.

use crate::loser_tree::merge_iterators;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320),
/// generated at compile time so the crate stays dependency-free.
static CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data` (the zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What went wrong while reading a run file.
///
/// `Io` is the transport failing (disk error, injected fault); `Corrupt`
/// is the file contents lying (truncation mid-record, checksum
/// mismatch, impossible length prefix).
#[derive(Debug)]
pub enum RunReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file bytes are inconsistent with the run format.
    Corrupt {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl RunReadError {
    /// The closest `io::ErrorKind`: corruption maps to `InvalidData`.
    pub fn kind(&self) -> io::ErrorKind {
        match self {
            RunReadError::Io(e) => e.kind(),
            RunReadError::Corrupt { .. } => io::ErrorKind::InvalidData,
        }
    }

    /// Whether this is a corruption (vs transport) error.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, RunReadError::Corrupt { .. })
    }
}

impl fmt::Display for RunReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunReadError::Io(e) => write!(f, "run file read failed: {e}"),
            RunReadError::Corrupt { detail } => write!(f, "run file corrupt: {detail}"),
        }
    }
}

impl std::error::Error for RunReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunReadError::Io(e) => Some(e),
            RunReadError::Corrupt { .. } => None,
        }
    }
}

impl From<RunReadError> for io::Error {
    fn from(e: RunReadError) -> io::Error {
        match e {
            RunReadError::Io(e) => e,
            RunReadError::Corrupt { detail } => io::Error::new(io::ErrorKind::InvalidData, detail),
        }
    }
}

/// Writes one sorted run as a checksummed, length-prefixed record file.
///
/// Generic over the sink so spill runs can be written through the
/// storage layer (throttled, observed, fault-injected); plain file runs
/// use the [`RunWriter::create`] constructor.
pub struct RunWriter<W: Write = BufWriter<File>> {
    out: W,
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl RunWriter<BufWriter<File>> {
    /// Create a run file at `path` (parent directories are created).
    pub fn create(path: impl AsRef<Path>) -> io::Result<RunWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(RunWriter { out: BufWriter::new(File::create(&path)?), path, records: 0, bytes: 0 })
    }
}

impl<W: Write> RunWriter<W> {
    /// Wrap an arbitrary sink (the returned path from [`finish`] is
    /// empty; stream writers name their runs out of band).
    ///
    /// [`finish`]: RunWriter::finish
    pub fn from_writer(out: W) -> RunWriter<W> {
        RunWriter { out, path: PathBuf::new(), records: 0, bytes: 0 }
    }

    /// Append one record (caller guarantees run order).
    ///
    /// # Errors
    /// Fails for records longer than `u32::MAX` bytes or on I/O errors.
    pub fn push(&mut self, record: &[u8]) -> io::Result<()> {
        let len = u32::try_from(record.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&crc32(record).to_le_bytes())?;
        self.out.write_all(record)?;
        self.records += 1;
        self.bytes += 8 + record.len() as u64;
        Ok(())
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes framed so far (record payloads plus headers).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush and close, returning the path and record count.
    pub fn finish(mut self) -> io::Result<(PathBuf, u64)> {
        self.out.flush()?;
        Ok((self.path, self.records))
    }
}

/// Streams the records of one run file, verifying each checksum.
///
/// Generic over the byte source so spill runs can be read back through
/// the storage layer; plain files use [`RunReader::open`].
pub struct RunReader<R: Read = BufReader<File>> {
    input: R,
    /// Deferred error (iterators can't return `Result` cleanly; the
    /// merge surfaces this after iteration).
    error: Option<RunReadError>,
}

impl RunReader<BufReader<File>> {
    /// Open a run file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<RunReader> {
        Ok(RunReader { input: BufReader::new(File::open(path)?), error: None })
    }
}

impl<R: Read> RunReader<R> {
    /// Wrap an arbitrary byte source (callers buffer if they need to).
    pub fn from_reader(input: R) -> RunReader<R> {
        RunReader { input, error: None }
    }

    /// Any error encountered while iterating.
    pub fn take_error(&mut self) -> Option<RunReadError> {
        self.error.take()
    }

    /// Read exactly `buf.len()` bytes; EOF mid-way is corruption
    /// (truncated file), any other failure is transport.
    fn fill(&mut self, buf: &mut [u8], what: &str) -> Result<(), RunReadError> {
        self.input.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                RunReadError::Corrupt { detail: format!("truncated while reading {what}") }
            } else {
                RunReadError::Io(e)
            }
        })
    }
}

impl<R: Read> Iterator for RunReader<R> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.error.is_some() {
            return None;
        }
        // The length prefix is the one place EOF is legitimate — but
        // only on a record boundary, so read it byte-aware: zero bytes
        // is a clean end, a partial prefix is truncation.
        let mut len_buf = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match self.input.read(&mut len_buf[filled..]) {
                Ok(0) if filled == 0 => return None,
                Ok(0) => {
                    self.error = Some(RunReadError::Corrupt {
                        detail: format!("truncated length prefix ({filled} of 4 bytes)"),
                    });
                    return None;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && filled == 0 => return None,
                Err(e) => {
                    self.error = Some(RunReadError::Io(e));
                    return None;
                }
            }
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        // A corrupt prefix must surface as an error, not a giant
        // allocation: no writer in this module produces records beyond
        // this bound.
        const MAX_RECORD: usize = 256 * 1024 * 1024;
        if len > MAX_RECORD {
            self.error =
                Some(RunReadError::Corrupt { detail: format!("impossible record length {len}") });
            return None;
        }
        let mut crc_buf = [0u8; 4];
        if let Err(e) = self.fill(&mut crc_buf, "record checksum") {
            self.error = Some(e);
            return None;
        }
        let expected = u32::from_le_bytes(crc_buf);
        let mut rec = vec![0u8; len];
        if let Err(e) = self.fill(&mut rec, "record payload") {
            self.error = Some(e);
            return None;
        }
        let actual = crc32(&rec);
        if actual != expected {
            self.error = Some(RunReadError::Corrupt {
                detail: format!(
                    "record checksum mismatch (stored {expected:08x}, computed {actual:08x})"
                ),
            });
            return None;
        }
        Some(rec)
    }
}

/// Externally sort a stream of byte records: buffer up to
/// `run_budget_bytes` in memory, sort, spill as a run file under `dir`,
/// repeat; returns the run paths with their record counts (the counts
/// let callers detect truncated merges).
///
/// # Panics
/// Panics if `run_budget_bytes == 0`.
pub fn spill_sorted_runs(
    records: impl Iterator<Item = Vec<u8>>,
    run_budget_bytes: usize,
    dir: impl AsRef<Path>,
) -> io::Result<Vec<(PathBuf, u64)>> {
    assert!(run_budget_bytes > 0, "run budget must be non-zero");
    let dir = dir.as_ref();
    let mut paths = Vec::new();
    let mut buffer: Vec<Vec<u8>> = Vec::new();
    let mut buffered_bytes = 0usize;

    let spill = |buffer: &mut Vec<Vec<u8>>, paths: &mut Vec<(PathBuf, u64)>| -> io::Result<()> {
        if buffer.is_empty() {
            return Ok(());
        }
        buffer.sort_unstable();
        let path = dir.join(format!("run-{:05}.dat", paths.len()));
        let mut w = RunWriter::create(&path)?;
        for rec in buffer.drain(..) {
            w.push(&rec)?;
        }
        paths.push(w.finish()?);
        Ok(())
    };

    for rec in records {
        buffered_bytes += rec.len() + 8;
        buffer.push(rec);
        if buffered_bytes >= run_budget_bytes {
            spill(&mut buffer, &mut paths)?;
            buffered_bytes = 0;
        }
    }
    spill(&mut buffer, &mut paths)?;
    Ok(paths)
}

/// Merge previously-spilled run files into one sorted record stream.
/// The merge is streaming: memory use is one buffered record per run.
///
/// Caveat: mid-stream read errors end the affected run silently (the
/// iterator protocol has nowhere to put them). Callers that must detect
/// truncation should compare the merged record count against the counts
/// returned by [`spill_sorted_runs`], as [`external_sort`] does.
pub fn merge_run_files(paths: &[PathBuf]) -> io::Result<impl Iterator<Item = Vec<u8>>> {
    let readers = paths.iter().map(RunReader::open).collect::<io::Result<Vec<RunReader>>>()?;
    Ok(merge_iterators(readers))
}

/// Convenience: external sort end-to-end. Spills runs under `dir`,
/// merges them, and returns the fully sorted records (materialized).
/// Run files are removed afterwards. A merge that comes back short
/// (truncated or unreadable run file) is an error, never a silently
/// smaller output.
pub fn external_sort(
    records: impl Iterator<Item = Vec<u8>>,
    run_budget_bytes: usize,
    dir: impl AsRef<Path>,
) -> io::Result<Vec<Vec<u8>>> {
    let dir = dir.as_ref();
    let runs = spill_sorted_runs(records, run_budget_bytes, dir)?;
    let paths: Vec<PathBuf> = runs.iter().map(|(p, _)| p.clone()).collect();
    let expected: u64 = runs.iter().map(|(_, n)| n).sum();
    let merged: Vec<Vec<u8>> = merge_run_files(&paths)?.collect();
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    if merged.len() as u64 != expected {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "external merge returned {} of {expected} records (truncated run file?)",
                merged.len()
            ),
        ));
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("supmr-external-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn random_records(n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0..40);
                (0..len).map(|_| rng.gen::<u8>()).collect()
            })
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        // The zlib/PNG IEEE polynomial's canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn run_file_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut w = RunWriter::create(dir.join("r.dat")).unwrap();
        let records = vec![b"".to_vec(), b"alpha".to_vec(), b"beta".to_vec()];
        for r in &records {
            w.push(r).unwrap();
        }
        assert_eq!(w.records(), 3);
        let (path, count) = w.finish().unwrap();
        assert_eq!(count, 3);
        let mut reader = RunReader::open(&path).unwrap();
        let got: Vec<Vec<u8>> = reader.by_ref().collect();
        assert_eq!(got, records);
        assert!(reader.take_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_writer_reader_round_trip() {
        let mut buf = Vec::new();
        let mut w = RunWriter::from_writer(&mut buf);
        w.push(b"one").unwrap();
        w.push(b"two").unwrap();
        assert_eq!(w.bytes(), 8 + 3 + 8 + 3);
        let (path, n) = w.finish().unwrap();
        assert_eq!(path, PathBuf::new());
        assert_eq!(n, 2);
        let mut r = RunReader::from_reader(buf.as_slice());
        let got: Vec<Vec<u8>> = r.by_ref().collect();
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(r.take_error().is_none());
    }

    #[test]
    fn truncated_run_file_reports_an_error() {
        let dir = temp_dir("truncated");
        let path = dir.join("bad.dat");
        // Length prefix says 100 bytes; the checksum and payload are cut
        // short.
        std::fs::write(&path, [100u32.to_le_bytes().as_slice(), b"abc"].concat()).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        let err = reader.take_error().expect("truncation must surface");
        assert!(err.is_corrupt(), "truncation is corruption: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_length_prefix_reports_an_error() {
        let dir = temp_dir("shortlen");
        let path = dir.join("bad.dat");
        std::fs::write(&path, [7u8, 0]).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        let err = reader.take_error().expect("partial prefix must surface");
        assert!(err.is_corrupt(), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_rot_fails_the_checksum() {
        let dir = temp_dir("bitrot");
        let mut w = RunWriter::create(dir.join("r.dat")).unwrap();
        w.push(b"stable payload").unwrap();
        let (path, _) = w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        let err = reader.take_error().expect("bit rot must surface");
        assert!(err.is_corrupt(), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_sort_matches_in_memory_sort() {
        let dir = temp_dir("sorteq");
        let records = random_records(5_000, 9);
        let mut expected = records.clone();
        expected.sort_unstable();
        // Budget small enough to force many runs.
        let sorted = external_sort(records.into_iter(), 4 * 1024, &dir).unwrap();
        assert_eq!(sorted, expected);
        // Run files cleaned up.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_produces_multiple_sorted_runs() {
        let dir = temp_dir("spill");
        let records = random_records(1_000, 4);
        let runs = spill_sorted_runs(records.into_iter(), 2 * 1024, &dir).unwrap();
        assert!(runs.len() > 3, "expected several runs, got {}", runs.len());
        let total: u64 = runs.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1_000);
        for (p, n) in &runs {
            let run: Vec<Vec<u8>> = RunReader::open(p).unwrap().collect();
            assert_eq!(run.len() as u64, *n);
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_yields_no_runs_and_empty_output() {
        let dir = temp_dir("empty");
        let runs = spill_sorted_runs(std::iter::empty(), 1024, &dir).unwrap();
        assert!(runs.is_empty());
        let sorted = external_sort(std::iter::empty(), 1024, &dir).unwrap();
        assert!(sorted.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_length_prefix_is_an_error_not_an_allocation() {
        let dir = temp_dir("corrupt");
        let path = dir.join("bad.dat");
        std::fs::write(&path, u32::MAX.to_le_bytes()).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        assert!(reader.by_ref().next().is_none());
        let err = reader.take_error().expect("corruption must surface");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.is_corrupt());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_stable_across_runs_with_duplicates() {
        let dir = temp_dir("dups");
        let records: Vec<Vec<u8>> = (0..200).map(|i| vec![(i % 3) as u8]).collect();
        let sorted = external_sort(records.into_iter(), 64, &dir).unwrap();
        assert_eq!(sorted.len(), 200);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn terasort_records_sort_externally() {
        let dir = temp_dir("tera");
        // Length-100 CRLF records sort by their whole body, which starts
        // with the 10-byte key — the Terasort order.
        let mut rng = SmallRng::seed_from_u64(3);
        let records: Vec<Vec<u8>> = (0..500)
            .map(|_| {
                let mut r = vec![0u8; 100];
                for b in r.iter_mut().take(10) {
                    *b = rng.gen_range(b'A'..=b'Z');
                }
                r[98] = b'\r';
                r[99] = b'\n';
                r
            })
            .collect();
        let sorted = external_sort(records.clone().into_iter(), 3_000, &dir).unwrap();
        let mut expected = records;
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
