//! A k-way tournament ("loser") tree over sorted runs.
//!
//! The classic structure for merging many sorted runs in one pass
//! (Salzberg 1989, which the paper cites for p-way merging): internal
//! nodes remember the *loser* of the match played there while the overall
//! winner sits at the root, so replacing the winner after each pop replays
//! only one root-to-leaf path — `O(log k)` comparisons per element instead
//! of scanning all `k` heads.
//!
//! The tree is stable: ties are broken by run index, so elements that
//! compare equal are emitted in run order.

/// A loser tree merging `k` sorted runs of `T`.
///
/// Runs are consumed as iterators; the tree itself yields merged items via
/// [`Iterator`]. Comparison counts are tracked so experiments can report
/// work done, not just wall-clock time.
pub struct LoserTree<T, I>
where
    T: Ord,
    I: Iterator<Item = T>,
{
    /// Padded run count (power of two); leaves `k..k2` are permanently
    /// exhausted.
    k2: usize,
    /// `tree[n]` for `1 <= n < k2` holds the run index that *lost* the
    /// match at internal node `n`.
    tree: Vec<usize>,
    /// Current head element of each real run (`None` = exhausted).
    heads: Vec<Option<T>>,
    /// The run sources.
    sources: Vec<I>,
    /// Run index currently at the root.
    winner: usize,
    comparisons: u64,
    remaining: usize,
}

impl<T, I> LoserTree<T, I>
where
    T: Ord,
    I: Iterator<Item = T>,
{
    /// Build a loser tree over the given runs. Runs must each be sorted
    /// ascending; this is the caller's contract (verified only in tests —
    /// checking would cost the pass over the data the structure exists to
    /// avoid).
    pub fn new(mut sources: Vec<I>) -> Self {
        let k = sources.len();
        let k2 = k.next_power_of_two().max(1);
        let mut heads: Vec<Option<T>> = Vec::with_capacity(k);
        for s in sources.iter_mut() {
            heads.push(s.next());
        }
        let remaining =
            heads.iter().flatten().count() + sources.iter().map(|s| s.size_hint().0).sum::<usize>();
        let mut lt = LoserTree {
            k2,
            tree: vec![usize::MAX; k2.max(1)],
            heads,
            sources,
            winner: 0,
            comparisons: 0,
            remaining,
        };
        lt.winner = lt.build(1);
        lt
    }

    /// Recursively play the initial tournament rooted at internal node
    /// `node`; returns the winning run index, parking losers in `tree`.
    fn build(&mut self, node: usize) -> usize {
        if node >= self.k2 {
            return node - self.k2;
        }
        let left = self.build(2 * node);
        let right = self.build(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) { (left, right) } else { (right, left) };
        self.tree[node] = loser;
        winner
    }

    /// Does run `a` beat run `b`? Exhausted runs always lose; ties go to
    /// the lower run index (stability).
    fn beats(&mut self, a: usize, b: usize) -> bool {
        let ha = self.heads.get(a).and_then(|h| h.as_ref());
        let hb = self.heads.get(b).and_then(|h| h.as_ref());
        match (ha, hb) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => {
                self.comparisons += 1;
                match x.cmp(y) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => a < b,
                }
            }
        }
    }

    /// Replay the path from `run`'s leaf to the root after its head
    /// changed; updates the winner.
    fn replay(&mut self, mut run: usize) {
        let mut node = (run + self.k2) / 2;
        while node >= 1 {
            let stored = self.tree[node];
            if stored != usize::MAX && self.beats(stored, run) {
                self.tree[node] = run;
                run = stored;
            }
            node /= 2;
        }
        self.winner = run;
    }

    /// Reference to the next element to be emitted, if any.
    pub fn peek(&self) -> Option<&T> {
        self.heads.get(self.winner).and_then(|h| h.as_ref())
    }

    /// Number of key comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Lower bound of elements left to emit.
    fn remaining_hint(&self) -> usize {
        self.remaining
    }
}

impl<T, I> Iterator for LoserTree<T, I>
where
    T: Ord,
    I: Iterator<Item = T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let w = self.winner;
        let out = self.heads.get_mut(w)?.take()?;
        self.heads[w] = self.sources[w].next();
        self.replay(w);
        self.remaining = self.remaining.saturating_sub(1);
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining_hint(), None)
    }
}

/// Merge any set of sorted iterators into one sorted, stable stream —
/// the streaming form of [`crate::kway_merge`] for inputs that should
/// not be materialized first.
///
/// ```
/// use supmr_merge::loser_tree::merge_iterators;
///
/// let evens = (0..20u32).step_by(2);
/// let odds = (1..20u32).step_by(2);
/// let merged: Vec<u32> = merge_iterators(vec![evens, odds]).collect();
/// assert_eq!(merged, (0..20).collect::<Vec<_>>());
/// ```
pub fn merge_iterators<T, I>(sources: Vec<I>) -> LoserTree<T, I>
where
    T: Ord,
    I: Iterator<Item = T>,
{
    LoserTree::new(sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merge_vecs(runs: Vec<Vec<i64>>) -> Vec<i64> {
        LoserTree::new(runs.into_iter().map(|r| r.into_iter()).collect()).collect()
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(merge_vecs(vec![]).is_empty());
        assert!(merge_vecs(vec![vec![], vec![], vec![]]).is_empty());
    }

    #[test]
    fn single_run_passes_through() {
        assert_eq!(merge_vecs(vec![vec![1, 2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn merges_uneven_runs() {
        let out = merge_vecs(vec![vec![1, 4, 7], vec![2, 5], vec![], vec![0, 3, 6, 8, 9]]);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn non_power_of_two_run_counts() {
        for k in 1..=9usize {
            let runs: Vec<Vec<i64>> =
                (0..k).map(|i| (0..5).map(|j| (j * k + i) as i64).collect()).collect();
            let out = merge_vecs(runs);
            let expected: Vec<i64> = (0..(5 * k) as i64).collect();
            assert_eq!(out, expected, "k = {k}");
        }
    }

    #[test]
    fn stability_ties_broken_by_run_index() {
        // Elements carry their origin run; equal keys must come out in
        // run order.
        #[derive(PartialEq, Eq, Debug, Clone)]
        struct Tagged(u32, usize);
        impl Ord for Tagged {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        impl PartialOrd for Tagged {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let runs: Vec<Vec<Tagged>> = vec![
            vec![Tagged(1, 0), Tagged(2, 0)],
            vec![Tagged(1, 1), Tagged(2, 1)],
            vec![Tagged(1, 2)],
        ];
        let out: Vec<Tagged> =
            LoserTree::new(runs.into_iter().map(|r| r.into_iter()).collect()).collect();
        assert_eq!(out, vec![Tagged(1, 0), Tagged(1, 1), Tagged(1, 2), Tagged(2, 0), Tagged(2, 1)]);
    }

    #[test]
    fn comparison_count_is_n_log_k_ish() {
        let k = 16usize;
        let n_per = 1000usize;
        let runs: Vec<Vec<u64>> =
            (0..k).map(|i| (0..n_per).map(|j| (j * k + i) as u64).collect()).collect();
        let mut lt = LoserTree::new(runs.into_iter().map(|r| r.into_iter()).collect());
        let out: Vec<u64> = lt.by_ref().collect();
        assert_eq!(out.len(), k * n_per);
        let n = (k * n_per) as u64;
        let log_k = (k as f64).log2() as u64;
        // One root-to-leaf replay per element: <= n * log2(k) comparisons
        // (plus the initial build), and at least n (every element plays
        // some match).
        assert!(lt.comparisons() <= n * log_k + (2 * k as u64)); // build slack
        assert!(lt.comparisons() >= n - k as u64);
    }

    #[test]
    fn peek_matches_next() {
        let mut lt = LoserTree::new(vec![vec![3, 5].into_iter(), vec![1, 9].into_iter()]);
        assert_eq!(lt.peek(), Some(&1));
        assert_eq!(lt.next(), Some(1));
        assert_eq!(lt.peek(), Some(&3));
    }

    #[test]
    fn size_hint_lower_bound_is_sound() {
        let lt = LoserTree::new(vec![vec![1, 2, 3].into_iter(), vec![4, 5].into_iter()]);
        assert!(lt.size_hint().0 <= 5);
        let collected: Vec<i32> = lt.collect();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn duplicate_heavy_input() {
        let out = merge_vecs(vec![vec![2; 100], vec![2; 50], vec![1; 30]]);
        assert_eq!(out.len(), 180);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.iter().filter(|&&x| x == 1).count(), 30);
    }
}
