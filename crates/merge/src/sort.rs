//! Parallel sorting built from chunk sorts plus a merge backend.
//!
//! Both sides of the paper's merge comparison sort the same way —
//! partition the data into runs and sort runs in parallel — and differ
//! only in how the sorted runs are combined:
//!
//! * [`MergeBackend::PairwiseRounds`] — the stock runtime's iterative
//!   2-way rounds (the Fig. 1 step curve).
//! * [`MergeBackend::PWay`] — SupMR's single-round p-way merge (what
//!   `__gnu_parallel::sort` does after its local sorts).

use crate::kway::{parallel_kway_merge, KwayStats};
use crate::pairwise::{pairwise_merge_rounds, PairwiseStats};
use rayon::prelude::*;

/// How sorted runs are combined into the final array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeBackend {
    /// Iterative 2-way merge rounds with halving parallelism (baseline).
    PairwiseRounds,
    /// Single-pass parallel p-way merge with the given way count
    /// (SupMR / OpenMP-style).
    PWay {
        /// Number of parallel output partitions.
        ways: usize,
    },
}

/// Work counters from a [`parallel_sort`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SortStats {
    /// Number of sorted runs produced before merging.
    pub runs: usize,
    /// Merge rounds executed (1 for p-way, ⌈log₂ runs⌉ for pairwise).
    pub merge_rounds: u32,
    /// Elements written during merging, across all rounds.
    pub merge_elements_moved: u64,
    /// Key comparisons during merging.
    pub merge_comparisons: u64,
}

impl SortStats {
    fn from_pairwise(runs: usize, s: &PairwiseStats) -> SortStats {
        SortStats {
            runs,
            merge_rounds: s.rounds,
            merge_elements_moved: s.elements_moved,
            merge_comparisons: s.comparisons,
        }
    }

    fn from_kway(runs: usize, s: &KwayStats) -> SortStats {
        SortStats {
            runs,
            merge_rounds: u32::from(runs > 1),
            merge_elements_moved: s.elements_moved,
            merge_comparisons: s.comparisons,
        }
    }
}

/// Sort `data` by splitting it into `run_count` runs, sorting runs in
/// parallel, and combining them with `backend`.
///
/// `run_count` models the number of worker threads the paper's runtimes
/// would use (e.g. 32 hardware contexts); it is independent of the actual
/// rayon pool size so work-counter experiments are machine-independent.
///
/// # Panics
/// Panics if `run_count == 0`.
pub fn parallel_sort<T>(
    data: Vec<T>,
    run_count: usize,
    backend: MergeBackend,
) -> (Vec<T>, SortStats)
where
    T: Ord + Clone + Send + Sync,
{
    assert!(run_count > 0, "need at least one run");
    let n = data.len();
    if n <= 1 {
        return (data, SortStats { runs: usize::from(n == 1), ..SortStats::default() });
    }

    // Split into near-equal runs and sort each in parallel. Unstable sort
    // per run is fine: the merge's stability guarantees then apply to the
    // run order, matching what a per-thread quicksort in Phoenix++ does.
    let run_len = n.div_ceil(run_count.min(n));
    let mut runs: Vec<Vec<T>> = data.chunks(run_len).map(<[T]>::to_vec).collect();
    runs.par_iter_mut().for_each(|run| run.sort_unstable());
    let run_total = runs.len();

    match backend {
        MergeBackend::PairwiseRounds => {
            let (out, stats) = pairwise_merge_rounds(runs, true);
            (out, SortStats::from_pairwise(run_total, &stats))
        }
        MergeBackend::PWay { ways } => {
            let (out, stats) = parallel_kway_merge(runs, ways.max(1));
            (out, SortStats::from_kway(run_total, &stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    #[test]
    fn both_backends_sort_correctly() {
        let data = random_data(10_000, 7);
        let mut expected = data.clone();
        expected.sort();
        for backend in [MergeBackend::PairwiseRounds, MergeBackend::PWay { ways: 4 }] {
            let (out, _) = parallel_sort(data.clone(), 16, backend);
            assert_eq!(out, expected, "{backend:?}");
        }
    }

    #[test]
    fn empty_and_single() {
        let (out, stats) = parallel_sort(Vec::<u64>::new(), 8, MergeBackend::PWay { ways: 4 });
        assert!(out.is_empty());
        assert_eq!(stats.runs, 0);
        let (out, stats) = parallel_sort(vec![42u64], 8, MergeBackend::PairwiseRounds);
        assert_eq!(out, vec![42]);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.merge_rounds, 0);
    }

    #[test]
    fn pway_uses_one_round_pairwise_uses_log() {
        let data = random_data(4096, 3);
        let (_, pw) = parallel_sort(data.clone(), 16, MergeBackend::PairwiseRounds);
        let (_, kw) = parallel_sort(data, 16, MergeBackend::PWay { ways: 8 });
        assert_eq!(pw.runs, 16);
        assert_eq!(kw.runs, 16);
        assert_eq!(pw.merge_rounds, 4); // log2(16)
        assert_eq!(kw.merge_rounds, 1);
        // log-factor more data movement for the baseline.
        assert_eq!(pw.merge_elements_moved, 4096 * 4);
        assert_eq!(kw.merge_elements_moved, 4096);
    }

    #[test]
    fn run_count_larger_than_data() {
        let (out, stats) = parallel_sort(vec![3u8, 1, 2], 64, MergeBackend::PWay { ways: 8 });
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.runs <= 3);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        parallel_sort(vec![1u8], 0, MergeBackend::PairwiseRounds);
    }

    #[test]
    fn presorted_and_reverse_inputs() {
        let asc: Vec<u32> = (0..5000).collect();
        let desc: Vec<u32> = (0..5000).rev().collect();
        for data in [asc.clone(), desc] {
            let (out, _) = parallel_sort(data, 8, MergeBackend::PWay { ways: 4 });
            assert_eq!(out, asc);
        }
    }
}
