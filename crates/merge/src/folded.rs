//! Key-ordered merging of `(key, accumulator)` streams.
//!
//! The spill-aware reduce path merges several key-sorted sources per
//! partition — spilled run files plus the in-memory remainder — and must
//! either **fold** equal keys with the job's combiner (hash-container
//! jobs, where each source holds at most one entry per key) or keep
//! every record (identity-combiner jobs like Terasort, where duplicates
//! are real data). Both shapes ride the same
//! [`LoserTree`] used everywhere else in this crate,
//! ordered by key only.

use crate::loser_tree::{merge_iterators, LoserTree};

/// A `(key, accumulator)` pair ordered **by key only**, so the loser
/// tree never compares (or requires ordering on) accumulator values.
pub struct Keyed<K, A> {
    /// Sort key.
    pub key: K,
    /// Payload carried alongside the key, ignored by comparisons.
    pub acc: A,
}

impl<K: Ord, A> PartialEq for Keyed<K, A> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<K: Ord, A> Eq for Keyed<K, A> {}

impl<K: Ord, A> PartialOrd for Keyed<K, A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, A> Ord for Keyed<K, A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Adapts an `Iterator<Item = (K, A)>` into keyed items for the tree.
pub struct KeyedIter<I>(I);

impl<K, A, I: Iterator<Item = (K, A)>> Iterator for KeyedIter<I> {
    type Item = Keyed<K, A>;

    fn next(&mut self) -> Option<Keyed<K, A>> {
        self.0.next().map(|(key, acc)| Keyed { key, acc })
    }
}

/// Merge key-sorted `(key, acc)` sources into one key-sorted stream,
/// preserving duplicates (no folding). Memory use is one buffered pair
/// per source.
pub fn merge_by_key<K: Ord, A, I>(sources: Vec<I>) -> impl Iterator<Item = (K, A)>
where
    I: Iterator<Item = (K, A)>,
{
    merge_iterators(sources.into_iter().map(KeyedIter).collect()).map(|k| (k.key, k.acc))
}

/// Merge key-sorted `(key, acc)` sources into one key-sorted stream,
/// folding equal keys with `fold` (first accumulator wins the slot, the
/// rest are folded into it in merge order). One output pair per
/// distinct key.
pub fn merge_fold<K, A, I, F>(sources: Vec<I>, fold: F) -> FoldedMerge<K, A, I, F>
where
    K: Ord,
    I: Iterator<Item = (K, A)>,
    F: FnMut(&mut A, A),
{
    FoldedMerge {
        inner: merge_iterators(sources.into_iter().map(KeyedIter).collect()),
        pending: None,
        fold,
    }
}

/// Streaming combiner-folding merge returned by [`merge_fold`].
pub struct FoldedMerge<K: Ord, A, I: Iterator<Item = (K, A)>, F> {
    inner: LoserTree<Keyed<K, A>, KeyedIter<I>>,
    pending: Option<(K, A)>,
    fold: F,
}

impl<K, A, I, F> Iterator for FoldedMerge<K, A, I, F>
where
    K: Ord,
    I: Iterator<Item = (K, A)>,
    F: FnMut(&mut A, A),
{
    type Item = (K, A);

    fn next(&mut self) -> Option<(K, A)> {
        loop {
            match self.inner.next() {
                Some(Keyed { key, acc }) => match &mut self.pending {
                    Some((pk, pa)) if *pk == key => (self.fold)(pa, acc),
                    pending => {
                        if let Some(done) = pending.replace((key, acc)) {
                            return Some(done);
                        }
                    }
                },
                None => return self.pending.take(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_by_key_keeps_duplicates() {
        let a = vec![(1, "a1"), (3, "a3"), (3, "a3b")];
        let b = vec![(2, "b2"), (3, "b3")];
        let merged: Vec<(i32, &str)> = merge_by_key(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged.len(), 5);
        let keys: Vec<i32> = merged.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 3, 3]);
    }

    #[test]
    fn merge_fold_folds_equal_keys() {
        let a = vec![("ant", 2u64), ("bee", 1)];
        let b = vec![("ant", 5u64), ("cat", 7)];
        let c = vec![("bee", 10u64)];
        let merged: Vec<(&str, u64)> =
            merge_fold(vec![a.into_iter(), b.into_iter(), c.into_iter()], |acc, v| *acc += v)
                .collect();
        assert_eq!(merged, vec![("ant", 7), ("bee", 11), ("cat", 7)]);
    }

    #[test]
    fn merge_fold_handles_empty_and_single_sources() {
        let empty: Vec<(i32, i32)> = Vec::new();
        let merged: Vec<(i32, i32)> =
            merge_fold(vec![empty.into_iter()], |acc, v| *acc += v).collect();
        assert!(merged.is_empty());

        let one = vec![(1, 10), (1, 20), (2, 5)];
        let merged: Vec<(i32, i32)> =
            merge_fold(vec![one.into_iter()], |acc, v| *acc += v).collect();
        assert_eq!(merged, vec![(1, 30), (2, 5)]);
    }

    #[test]
    fn merge_no_sources_is_empty() {
        let sources: Vec<std::vec::IntoIter<(u8, u8)>> = Vec::new();
        assert_eq!(merge_by_key(sources).count(), 0);
    }
}
