//! The baseline: iterative 2-way merge rounds.
//!
//! This is what the stock runtime's merge phase does and what produces the
//! "step curve" in the paper's Fig. 1: round 1 merges k runs pairwise with
//! k/2 threads, round 2 merges the results with k/4 threads, … — each
//! round *re-scans every element*, so for k runs the data is moved
//! `⌈log₂ k⌉` times, and parallelism collapses geometrically while the
//! lists being compared grow.
//!
//! [`PairwiseStats`] captures exactly those two pathologies (elements
//! re-scanned, per-round wave widths) so benches can report the work-done
//! comparison independently of wall-clock noise on small machines.

use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Work counters from an iterative pairwise merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairwiseStats {
    /// Number of merge rounds executed (⌈log₂ k⌉ for k runs).
    pub rounds: u32,
    /// Total elements written across all rounds — the "multiple scans of
    /// the data" the paper calls out. A single-pass merge writes N; this
    /// writes ≈ N·rounds.
    pub elements_moved: u64,
    /// Total key comparisons across all rounds.
    pub comparisons: u64,
    /// Number of concurrent pair-merges in each round: k/2, k/4, …, 1.
    /// The step-down utilization curve is this sequence.
    pub wave_widths: Vec<usize>,
    /// Wall-clock duration of each round, parallel to `wave_widths` —
    /// the runtime turns these into retroactive `MergeRound` trace
    /// spans.
    pub round_times: Vec<Duration>,
    /// Elements written by each round, parallel to `round_times` (sums
    /// to `elements_moved`). The runtime pairs these with the per-round
    /// durations when feeding `supmr.merge.*` registry families, so a
    /// scrape shows which round moved how many keys and how slowly.
    pub round_keys: Vec<u64>,
}

/// Merge two sorted runs, counting comparisons. Stable: ties come from
/// `a` first.
pub fn two_way_merge<T: Ord>(a: Vec<T>, b: Vec<T>) -> (Vec<T>, u64) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut comparisons = 0u64;
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                comparisons += 1;
                if x <= y {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ia.by_ref());
                break;
            }
            (None, _) => {
                out.extend(ib.by_ref());
                break;
            }
        }
    }
    (out, comparisons)
}

/// Iteratively merge `runs` down to one sorted vector, two at a time, with
/// each round's pair-merges running in parallel (`parallel = true`) or
/// serially — the latter exists so work counters can be verified
/// deterministically in unit tests.
pub fn pairwise_merge_rounds<T>(mut runs: Vec<Vec<T>>, parallel: bool) -> (Vec<T>, PairwiseStats)
where
    T: Ord + Send,
{
    let mut stats = PairwiseStats::default();
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return (Vec::new(), stats);
    }
    while runs.len() > 1 {
        let round_start = Instant::now();
        stats.rounds += 1;
        let pairs = runs.len() / 2;
        stats.wave_widths.push(pairs);

        let mut iter = runs.into_iter();
        let mut jobs: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::with_capacity(pairs + 1);
        while let Some(a) = iter.next() {
            jobs.push((a, iter.next()));
        }

        // The third field records whether a real merge happened: an odd
        // run carried to the next round unmerged is not re-scanned, so it
        // does not count toward elements moved.
        let do_job = |(a, b): (Vec<T>, Option<Vec<T>>)| match b {
            Some(b) => {
                let (r, c) = two_way_merge(a, b);
                (r, c, true)
            }
            None => (a, 0, false),
        };
        let merged: Vec<(Vec<T>, u64, bool)> = if parallel {
            jobs.into_par_iter().map(do_job).collect()
        } else {
            jobs.into_iter().map(do_job).collect()
        };

        runs = Vec::with_capacity(merged.len());
        let mut round_keys = 0u64;
        for (r, c, was_merged) in merged {
            stats.comparisons += c;
            if was_merged {
                round_keys += r.len() as u64;
            }
            runs.push(r);
        }
        stats.elements_moved += round_keys;
        stats.round_keys.push(round_keys);
        stats.round_times.push(round_start.elapsed());
    }
    (runs.pop().unwrap_or_default(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_basics() {
        let (out, c) = two_way_merge(vec![1, 3, 5], vec![2, 4, 6]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        assert!(c >= 5);
        let (out, c) = two_way_merge(Vec::<i32>::new(), vec![1]);
        assert_eq!(out, vec![1]);
        assert_eq!(c, 0);
    }

    #[test]
    fn two_way_is_stable() {
        let (out, _) = two_way_merge(vec![(1, 'a'), (2, 'a')], vec![(1, 'b'), (2, 'b')]);
        assert_eq!(out, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn rounds_equals_log2_of_run_count() {
        for (k, expected_rounds) in [(2usize, 1u32), (4, 2), (8, 3), (16, 4), (5, 3), (9, 4)] {
            let runs: Vec<Vec<u64>> =
                (0..k).map(|i| (0..10).map(|j| (j * k + i) as u64).collect()).collect();
            let (_, stats) = pairwise_merge_rounds(runs, false);
            assert_eq!(stats.rounds, expected_rounds, "k = {k}");
        }
    }

    #[test]
    fn wave_widths_step_down() {
        let runs: Vec<Vec<u64>> = (0..16).map(|i| vec![i as u64]).collect();
        let (_, stats) = pairwise_merge_rounds(runs, false);
        assert_eq!(stats.wave_widths, vec![8, 4, 2, 1]);
        assert_eq!(stats.round_times.len(), stats.wave_widths.len());
        assert_eq!(stats.round_keys, vec![16, 16, 16, 16]);
    }

    #[test]
    fn round_keys_sum_to_elements_moved() {
        // 5 runs: the odd run carried over unmerged must not count.
        let runs: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64, i as u64 + 10]).collect();
        let (_, stats) = pairwise_merge_rounds(runs, false);
        assert_eq!(stats.round_keys.len(), stats.rounds as usize);
        assert_eq!(stats.round_keys.iter().sum::<u64>(), stats.elements_moved);
    }

    #[test]
    fn elements_moved_is_n_times_rounds_for_powers_of_two() {
        let k = 8usize;
        let n_per = 100usize;
        let runs: Vec<Vec<u64>> =
            (0..k).map(|i| (0..n_per).map(|j| (j * k + i) as u64).collect()).collect();
        let (out, stats) = pairwise_merge_rounds(runs, false);
        let n = (k * n_per) as u64;
        assert_eq!(out.len() as u64, n);
        // Every round re-scans all N elements.
        assert_eq!(stats.elements_moved, n * stats.rounds as u64);
    }

    #[test]
    fn result_is_sorted_concat() {
        let runs: Vec<Vec<i32>> = vec![vec![5, 6], vec![1, 9], vec![0], vec![2, 3, 4], vec![]];
        let mut expected: Vec<i32> = runs.iter().flatten().copied().collect();
        expected.sort();
        for parallel in [false, true] {
            let (out, _) = pairwise_merge_rounds(runs.clone(), parallel);
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let (out, stats) = pairwise_merge_rounds(Vec::<Vec<u8>>::new(), false);
        assert!(out.is_empty());
        assert_eq!(stats.rounds, 0);
        let (out, stats) = pairwise_merge_rounds(vec![vec![1u8, 2]], true);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn pairwise_moves_log_factor_more_than_single_pass() {
        // The quantitative heart of the paper's merge claim.
        let k = 32usize;
        let runs: Vec<Vec<u64>> =
            (0..k).map(|i| (0..50).map(|j| (j * k + i) as u64).collect()).collect();
        let n: u64 = (k * 50) as u64;
        let (_, pw) = pairwise_merge_rounds(runs.clone(), false);
        let (_, kw) = crate::kway::kway_merge(runs);
        assert_eq!(kw.elements_moved, n);
        assert_eq!(pw.elements_moved, n * 5); // log2(32) = 5 rounds
        assert!(pw.elements_moved > 4 * kw.elements_moved);
    }
}
