//! Clustered 2-D point generation for the kmeans application.
//!
//! Emits `x y\n` text lines: `k` Gaussian-ish blobs (Irwin–Hall
//! approximation — the sum of uniforms — so no extra distribution
//! crate is needed) around well-separated centers. Deterministic in
//! the seed, like every other generator in this crate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`clustered_points`].
#[derive(Debug, Clone, Copy)]
pub struct PointsConfig {
    /// Number of blobs.
    pub clusters: usize,
    /// Points per blob.
    pub points_per_cluster: usize,
    /// Blob standard deviation (same on both axes).
    pub spread: f64,
    /// Distance scale between blob centers.
    pub separation: f64,
}

impl Default for PointsConfig {
    fn default() -> Self {
        PointsConfig { clusters: 4, points_per_cluster: 500, spread: 0.5, separation: 10.0 }
    }
}

/// The true blob centers used by [`clustered_points`], laid out on a
/// circle so every pair is well separated.
pub fn true_centers(config: &PointsConfig) -> Vec<(f64, f64)> {
    (0..config.clusters)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / config.clusters as f64;
            (config.separation * angle.cos(), config.separation * angle.sin())
        })
        .collect()
}

/// Approximate standard normal via Irwin–Hall (12 uniforms).
fn gaussian(rng: &mut SmallRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Generate the corpus as `x y\n` text.
///
/// # Panics
/// Panics if `clusters == 0`.
pub fn clustered_points(seed: u64, config: &PointsConfig) -> Vec<u8> {
    assert!(config.clusters > 0, "need at least one cluster");
    let centers = true_centers(config);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    // Interleave clusters so chunked ingest sees all of them early.
    for p in 0..config.points_per_cluster {
        let _ = p;
        for &(cx, cy) in &centers {
            let x = cx + config.spread * gaussian(&mut rng);
            let y = cy + config.spread * gaussian(&mut rng);
            out.extend_from_slice(format!("{x:.6} {y:.6}\n").as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_count_and_format() {
        let config = PointsConfig { clusters: 3, points_per_cluster: 100, ..Default::default() };
        let data = clustered_points(1, &config);
        let lines: Vec<&[u8]> = data.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 300);
        for line in lines {
            let s = std::str::from_utf8(line).unwrap();
            let fields: Vec<f64> =
                s.split(' ').map(|f| f.parse().expect("numeric field")).collect();
            assert_eq!(fields.len(), 2);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let c = PointsConfig::default();
        assert_eq!(clustered_points(9, &c), clustered_points(9, &c));
        assert_ne!(clustered_points(9, &c), clustered_points(10, &c));
    }

    #[test]
    fn points_hug_their_centers() {
        let config =
            PointsConfig { clusters: 2, points_per_cluster: 200, spread: 0.1, separation: 100.0 };
        let centers = true_centers(&config);
        let data = clustered_points(3, &config);
        for line in String::from_utf8(data).unwrap().lines() {
            let mut it = line.split(' ');
            let x: f64 = it.next().unwrap().parse().unwrap();
            let y: f64 = it.next().unwrap().parse().unwrap();
            let nearest = centers
                .iter()
                .map(|&(cx, cy)| ((x - cx).powi(2) + (y - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 2.0, "point ({x},{y}) far from every center");
        }
    }

    #[test]
    fn centers_are_distinct() {
        let c = true_centers(&PointsConfig { clusters: 5, ..Default::default() });
        for i in 0..5 {
            for j in (i + 1)..5 {
                let d = ((c[i].0 - c[j].0).powi(2) + (c[i].1 - c[j].1).powi(2)).sqrt();
                assert!(d > 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        clustered_points(1, &PointsConfig { clusters: 0, ..Default::default() });
    }
}
