//! Terasort input generation (gensort-style).
//!
//! Each record is exactly [`TERA_RECORD_LEN`] (100) bytes: a
//! [`TERA_KEY_LEN`] (10) byte uniform random printable key, an ASCII
//! payload carrying the record number, and the `\r\n` terminator the
//! paper's split-point adjustment looks for ("each key-value pair in the
//! input for Terasort is terminated with `\r\n`").
//!
//! Generation is *indexed*: record `i` depends only on `(seed, i)`, so any
//! byte range of an arbitrarily large logical input can be produced on
//! demand — that is what lets the benchmark harness pretend a 60GB input
//! exists while only ever materializing the chunks in flight.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bytes per record, terminator included.
pub const TERA_RECORD_LEN: usize = 100;
/// Bytes of key at the start of each record.
pub const TERA_KEY_LEN: usize = 10;

const PRINTABLE: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

/// A deterministic Terasort input generator.
#[derive(Debug, Clone, Copy)]
pub struct TeraGen {
    seed: u64,
    records: u64,
}

impl TeraGen {
    /// A generator for `records` records under `seed`.
    pub fn new(seed: u64, records: u64) -> TeraGen {
        TeraGen { seed, records }
    }

    /// A generator sized to approximately `bytes` of input (rounded down
    /// to whole records).
    pub fn with_total_bytes(seed: u64, bytes: u64) -> TeraGen {
        TeraGen::new(seed, bytes / TERA_RECORD_LEN as u64)
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total input size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records * TERA_RECORD_LEN as u64
    }

    /// Generate record `i` (0-based).
    ///
    /// # Panics
    /// Panics if `i >= records()`.
    pub fn record(&self, i: u64) -> [u8; TERA_RECORD_LEN] {
        assert!(i < self.records, "record index {i} out of range");
        let mut rng = SmallRng::seed_from_u64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rec = [b' '; TERA_RECORD_LEN];
        for b in rec.iter_mut().take(TERA_KEY_LEN) {
            *b = PRINTABLE[rng.gen_range(0..PRINTABLE.len())];
        }
        // Payload: two-hyphen frame then the record number in decimal,
        // padded with repeating filler — visually similar to gensort's
        // "recordnumber" ASCII format.
        rec[TERA_KEY_LEN] = b'-';
        let num = format!("{i:020}");
        rec[TERA_KEY_LEN + 1..TERA_KEY_LEN + 1 + num.len()].copy_from_slice(num.as_bytes());
        let filler_start = TERA_KEY_LEN + 1 + num.len();
        let filler = PRINTABLE[(i % PRINTABLE.len() as u64) as usize];
        for b in rec.iter_mut().take(TERA_RECORD_LEN - 2).skip(filler_start) {
            *b = filler;
        }
        rec[TERA_RECORD_LEN - 2] = b'\r';
        rec[TERA_RECORD_LEN - 1] = b'\n';
        rec
    }

    /// Materialize the byte range `[offset, offset + len)` of the logical
    /// input, truncated at the logical end.
    pub fn read_range(&self, offset: u64, len: usize) -> Vec<u8> {
        let total = self.total_bytes();
        if offset >= total {
            return Vec::new();
        }
        let end = (offset + len as u64).min(total);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut rec_idx = offset / TERA_RECORD_LEN as u64;
        let mut skip = (offset % TERA_RECORD_LEN as u64) as usize;
        while (out.len() as u64) < end - offset {
            let rec = self.record(rec_idx);
            let want = (end - offset) as usize - out.len();
            let take = (TERA_RECORD_LEN - skip).min(want);
            out.extend_from_slice(&rec[skip..skip + take]);
            skip = 0;
            rec_idx += 1;
        }
        out
    }

    /// Materialize the whole input. Only sensible at test scales.
    pub fn generate_all(&self) -> Vec<u8> {
        self.read_range(0, self.total_bytes() as usize)
    }

    /// Write the whole input to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for i in 0..self.records {
            w.write_all(&self.record(i))?;
        }
        w.flush()
    }

    /// The 10-byte key of record `i`.
    pub fn key(&self, i: u64) -> [u8; TERA_KEY_LEN] {
        let rec = self.record(i);
        let mut key = [0u8; TERA_KEY_LEN];
        key.copy_from_slice(&rec[..TERA_KEY_LEN]);
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_exactly_100_bytes_and_crlf_terminated() {
        let g = TeraGen::new(1, 50);
        for i in 0..50 {
            let r = g.record(i);
            assert_eq!(r.len(), TERA_RECORD_LEN);
            assert_eq!(&r[TERA_RECORD_LEN - 2..], b"\r\n");
            assert!(r[..TERA_KEY_LEN].iter().all(|b| PRINTABLE.contains(b)));
            // No stray terminators inside the record body.
            assert!(!r[..TERA_RECORD_LEN - 2].iter().any(|&b| b == b'\n' || b == b'\r'));
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = TeraGen::new(7, 10).generate_all();
        let b = TeraGen::new(7, 10).generate_all();
        let c = TeraGen::new(8, 10).generate_all();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn read_range_matches_generate_all() {
        let g = TeraGen::new(3, 20);
        let all = g.generate_all();
        // Unaligned range crossing several records.
        assert_eq!(g.read_range(37, 301), all[37..338].to_vec());
        // Range truncated at the end.
        assert_eq!(g.read_range(1990, 100), all[1990..].to_vec());
        // Range past the end.
        assert!(g.read_range(2000, 10).is_empty());
        assert!(g.read_range(9999, 1).is_empty());
    }

    #[test]
    fn with_total_bytes_rounds_down() {
        let g = TeraGen::with_total_bytes(1, 1234);
        assert_eq!(g.records(), 12);
        assert_eq!(g.total_bytes(), 1200);
    }

    #[test]
    fn keys_vary() {
        let g = TeraGen::new(11, 1000);
        let first = g.key(0);
        let distinct = (0..1000).filter(|&i| g.key(i) != first).count();
        assert!(distinct > 990, "keys should be effectively unique");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        TeraGen::new(1, 5).record(5);
    }

    #[test]
    fn write_to_disk_round_trips() {
        let dir = std::env::temp_dir().join("supmr-teragen-test");
        let path = dir.join("tera.dat");
        let g = TeraGen::new(5, 30);
        g.write_to(&path).unwrap();
        let disk = std::fs::read(&path).unwrap();
        assert_eq!(disk, g.generate_all());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_embeds_record_number() {
        let g = TeraGen::new(2, 100);
        let r = g.record(42);
        let body = String::from_utf8_lossy(&r[TERA_KEY_LEN..TERA_RECORD_LEN - 2]);
        assert!(body.contains("00000000000000000042"), "body = {body}");
    }
}
