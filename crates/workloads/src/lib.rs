//! Deterministic workload generators for the SupMR experiments.
//!
//! The paper evaluates on two inputs that match Hadoop's two input shapes
//! (§III-A): **Terasort data** — one big file of `\r\n`-terminated
//! 100-byte records (60GB for sort) — and a **text corpus** — many files
//! of whitespace-separated words (155GB for word count). Both are
//! synthetic, so faithful reproduction means regenerating the same
//! *formats* at any scale:
//!
//! * [`teragen`] — gensort-style fixed-size records with uniform random
//!   printable keys, addressable by record index (any byte range can be
//!   produced without materializing the whole input).
//! * [`text`] — Zipf-distributed words over a synthetic vocabulary,
//!   newline-terminated lines, matching word count's skewed key
//!   distribution (many pairs with the same key — the reason its hash
//!   container works well).
//! * [`files`] — the many-small-files corpus for intra-file chunking.

pub mod files;
pub mod points;
pub mod teragen;
pub mod text;

pub use files::small_files_corpus;
pub use points::{clustered_points, PointsConfig};
pub use teragen::{TeraGen, TERA_KEY_LEN, TERA_RECORD_LEN};
pub use text::{TextGen, TextGenConfig};
