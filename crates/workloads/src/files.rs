//! Many-small-files corpora for intra-file chunking.
//!
//! Word count's input in the Hadoop ecosystem is "many small files"
//! (§III-A); SupMR's intra-file chunking coalesces several of them into
//! one ingest chunk. This module materializes such corpora — in memory
//! for tests and benches, or on disk for the examples.

use crate::text::{TextGen, TextGenConfig};
use std::io;
use std::path::Path;

/// Generate `count` text files of roughly `bytes_per_file` each, as raw
/// contents (index = file order). Contents are deterministic in `seed`.
pub fn small_files_corpus(seed: u64, count: usize, bytes_per_file: usize) -> Vec<Vec<u8>> {
    let gen = TextGen::new(TextGenConfig::default());
    (0..count).map(|i| gen.generate_bytes(seed.wrapping_add(i as u64), bytes_per_file)).collect()
}

/// Write a small-files corpus into `dir` as `part-00000 … part-NNNNN`
/// (the Hadoop naming convention), creating the directory.
pub fn write_corpus_dir(
    dir: &Path,
    seed: u64,
    count: usize,
    bytes_per_file: usize,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, contents) in small_files_corpus(seed, count, bytes_per_file).iter().enumerate() {
        std::fs::write(dir.join(format!("part-{i:05}")), contents)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_shape() {
        let files = small_files_corpus(1, 7, 2000);
        assert_eq!(files.len(), 7);
        for f in &files {
            assert!(f.len() >= 2000 && f.len() < 2100);
            assert_eq!(*f.last().unwrap(), b'\n');
        }
    }

    #[test]
    fn files_differ_from_each_other_but_are_reproducible() {
        let a = small_files_corpus(5, 3, 1000);
        let b = small_files_corpus(5, 3, 1000);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
    }

    #[test]
    fn empty_corpus_is_fine() {
        assert!(small_files_corpus(1, 0, 100).is_empty());
    }

    #[test]
    fn writes_hadoop_style_part_files() {
        let dir = std::env::temp_dir().join("supmr-files-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_corpus_dir(&dir, 2, 3, 500).unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["part-00000", "part-00001", "part-00002"]);
        let on_disk = std::fs::read(dir.join("part-00001")).unwrap();
        assert_eq!(on_disk, small_files_corpus(2, 3, 500)[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
