//! Zipf-distributed text corpus generation for word count.
//!
//! Word count's defining property in the paper is key skew: "applications
//! like word count … have many pairs with the same key because the large
//! input set is transformed into a much smaller intermediate set" — that
//! is why Phoenix++'s hash container (with a combiner) suits it. Natural
//! language is approximately Zipfian, so the generator samples words from
//! a synthetic vocabulary with probability ∝ 1/rank^s and wraps them into
//! newline-terminated lines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`TextGen`].
#[derive(Debug, Clone)]
pub struct TextGenConfig {
    /// Vocabulary size (number of distinct words).
    pub vocabulary: usize,
    /// Zipf exponent `s` (1.0 ≈ natural language; 0.0 = uniform).
    pub exponent: f64,
    /// Target line length in bytes before the newline.
    pub line_len: usize,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        TextGenConfig { vocabulary: 10_000, exponent: 1.0, line_len: 80 }
    }
}

/// Deterministic Zipf text generator.
#[derive(Debug, Clone)]
pub struct TextGen {
    config: TextGenConfig,
    /// Cumulative probability table over word ranks.
    cdf: Vec<f64>,
    words: Vec<String>,
}

impl TextGen {
    /// Build a generator (precomputes the vocabulary and Zipf CDF).
    ///
    /// # Panics
    /// Panics if the vocabulary is empty or the line length is zero.
    pub fn new(config: TextGenConfig) -> TextGen {
        assert!(config.vocabulary > 0, "vocabulary must be non-empty");
        assert!(config.line_len > 0, "line length must be non-zero");
        let mut weights: Vec<f64> =
            (1..=config.vocabulary).map(|rank| 1.0 / (rank as f64).powf(config.exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let words = (0..config.vocabulary).map(synthetic_word).collect();
        TextGen { config, cdf: weights, words }
    }

    /// The vocabulary, most frequent first.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Sample one word rank.
    fn sample_rank(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.config.vocabulary - 1)
    }

    /// Generate approximately `total_bytes` of newline-terminated text
    /// (always ends with `\n`, may overshoot by up to one word).
    pub fn generate_bytes(&self, seed: u64, total_bytes: usize) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(total_bytes + 16);
        let mut line_start = 0usize;
        while out.len() < total_bytes {
            let word = &self.words[self.sample_rank(&mut rng)];
            if out.len() > line_start {
                // Continue the line or wrap.
                if out.len() - line_start + word.len() >= self.config.line_len {
                    out.push(b'\n');
                    line_start = out.len();
                } else {
                    out.push(b' ');
                }
            }
            out.extend_from_slice(word.as_bytes());
        }
        out.push(b'\n');
        out
    }

    /// Exact expected relative frequency of the rank-`r` word (0-based).
    pub fn expected_frequency(&self, r: usize) -> f64 {
        let prev = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - prev
    }
}

/// Deterministic pronounceable-ish word for a vocabulary rank.
fn synthetic_word(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut w = String::new();
    let mut x = rank + 1;
    loop {
        w.push(CONSONANTS[x % CONSONANTS.len()] as char);
        w.push(VOWELS[(x / CONSONANTS.len()) % VOWELS.len()] as char);
        x /= CONSONANTS.len() * VOWELS.len();
        if x == 0 {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn words_are_distinct() {
        let g = TextGen::new(TextGenConfig { vocabulary: 5000, ..Default::default() });
        let mut set = std::collections::HashSet::new();
        for w in g.words() {
            assert!(set.insert(w.clone()), "duplicate word {w}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TextGen::new(TextGenConfig::default());
        assert_eq!(g.generate_bytes(1, 5000), g.generate_bytes(1, 5000));
        assert_ne!(g.generate_bytes(1, 5000), g.generate_bytes(2, 5000));
    }

    #[test]
    fn output_is_newline_terminated_lines_of_bounded_length() {
        let config = TextGenConfig { line_len: 40, ..Default::default() };
        let g = TextGen::new(config);
        let text = g.generate_bytes(9, 10_000);
        assert_eq!(*text.last().unwrap(), b'\n');
        for line in text.split(|&b| b == b'\n') {
            assert!(line.len() <= 40 + 24, "line too long: {}", line.len());
        }
    }

    #[test]
    fn size_is_approximately_requested() {
        let g = TextGen::new(TextGenConfig::default());
        let text = g.generate_bytes(3, 50_000);
        assert!(text.len() >= 50_000);
        assert!(text.len() < 50_000 + 64);
    }

    #[test]
    fn frequencies_are_zipf_skewed() {
        let g = TextGen::new(TextGenConfig { vocabulary: 1000, exponent: 1.0, line_len: 80 });
        let text = g.generate_bytes(42, 200_000);
        let mut counts: HashMap<&[u8], usize> = HashMap::new();
        for line in text.split(|&b| b == b'\n') {
            for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                *counts.entry(word).or_default() += 1;
            }
        }
        let top = g.words()[0].as_bytes();
        let mid = g.words()[99].as_bytes();
        let top_count = counts.get(top).copied().unwrap_or(0);
        let mid_count = counts.get(mid).copied().unwrap_or(0);
        // Rank 1 vs rank 100 should differ by roughly 100x; allow wide
        // slack for sampling noise.
        assert!(
            top_count > mid_count * 20,
            "rank0 = {top_count}, rank99 = {mid_count}: not Zipfian"
        );
    }

    #[test]
    fn uniform_exponent_flattens_distribution() {
        let g = TextGen::new(TextGenConfig { vocabulary: 100, exponent: 0.0, line_len: 80 });
        assert!((g.expected_frequency(0) - 0.01).abs() < 1e-9);
        assert!((g.expected_frequency(99) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn expected_frequencies_sum_to_one() {
        let g = TextGen::new(TextGenConfig { vocabulary: 333, exponent: 1.3, line_len: 80 });
        let sum: f64 = (0..333).map(|r| g.expected_frequency(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn empty_vocabulary_rejected() {
        TextGen::new(TextGenConfig { vocabulary: 0, ..Default::default() });
    }
}
