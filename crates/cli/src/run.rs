//! Execution layer of the `supmr` CLI: build inputs, configure the
//! runtime, run the selected application, and render a report.

use crate::args::{AppKind, ChunkingSpec, CliArgs, MergeSpec, PoolSpec};
use crate::reporter::SnapshotReporter;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use supmr::chunk::AdaptiveConfig;
use supmr::runtime::{GovernorConfig, Input, Job, JobConfig, JobReport, JobResult, MergeMode};
use supmr::{Chunking, PoolMode, Registry, Result};
use supmr_apps::{
    kmeans::run_kmeans, linreg, terasort_pipeline, Grep, Histogram, LinearRegression, TeraSort,
    WordCount,
};
use supmr_metrics::{FlowLedger, FlowPhase};
use supmr_storage::{
    DataSource, DirFileSet, DiskRunStore, FileSet, FileSource, IngestMeter, MemSource,
    ObservedFileSet, ObservedRunStore, ObservedSource, RunStore, ThrottledFileSet,
    ThrottledRunStore, ThrottledSource, TokenBucket,
};
use supmr_workloads::{
    clustered_points, small_files_corpus, PointsConfig, TeraGen, TextGen, TextGenConfig,
};

/// What a CLI run produced, separated from printing for testability.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The job's full report (timings, counters, stalls, traces).
    pub report: JobReport,
    /// Rendered result lines (already truncated to `--top`).
    pub lines: Vec<String>,
}

impl RunSummary {
    fn from_result<K, O>(r: &JobResult<K, O>, lines: Vec<String>) -> RunSummary {
        RunSummary { report: r.report.clone(), lines }
    }

    /// Number of output pairs.
    pub fn output_pairs(&self) -> u64 {
        self.report.stats.output_pairs
    }

    /// Ingest chunks processed.
    pub fn chunks(&self) -> u32 {
        self.report.stats.ingest_chunks
    }
}

fn to_chunking(spec: ChunkingSpec) -> Chunking {
    match spec {
        ChunkingSpec::None => Chunking::None,
        ChunkingSpec::Inter(b) => Chunking::Inter { chunk_bytes: b },
        ChunkingSpec::Intra(n) => Chunking::Intra { files_per_chunk: n },
        ChunkingSpec::Hybrid(b) => Chunking::Hybrid { chunk_bytes: b },
        ChunkingSpec::Adaptive => Chunking::Adaptive(AdaptiveConfig::default()),
    }
}

fn to_merge(spec: Option<MergeSpec>, default: MergeMode) -> MergeMode {
    match spec {
        None => default,
        Some(MergeSpec::Unsorted) => MergeMode::Unsorted,
        Some(MergeSpec::Pairwise) => MergeMode::PairwiseRounds,
        Some(MergeSpec::PWay(ways)) => MergeMode::PWay { ways },
    }
}

fn job_config(
    args: &CliArgs,
    record_format: supmr_storage::RecordFormat,
    default_merge: MergeMode,
    metrics: Option<&Registry>,
    meter: Option<&IngestMeter>,
    flow: &Arc<FlowLedger>,
) -> io::Result<JobConfig> {
    let mut config = JobConfig {
        flow: Some(Arc::clone(flow)),
        split_bytes: args.split_bytes,
        record_format,
        chunking: to_chunking(args.chunking),
        merge: to_merge(args.merge, default_merge),
        prefetch_depth: args.prefetch,
        pool: match args.pool {
            PoolSpec::Wave => PoolMode::WavePerRound,
            PoolSpec::Persistent => PoolMode::Persistent,
        },
        trace: args.trace,
        metrics: metrics.cloned(),
        metrics_addr: args.metrics_addr.clone(),
        hash_seed: args.hash_seed,
        ..JobConfig::default()
    };
    if let Some(w) = args.workers {
        config.map_workers = w;
        config.reduce_workers = w;
    }
    if args.adaptive {
        let mut governor = GovernorConfig::default();
        if let Some(interval) = args.governor_interval {
            governor.interval = interval;
        }
        config.governor = Some(governor);
    }
    configure_spill(args, meter, flow, &mut config)?;
    Ok(config)
}

/// Apply `--memory-budget`/`--spill-dir`. Spill runs go through the
/// storage layer like ingest does: under `--throttle` they draw from a
/// token bucket, and with metrics attached they feed the storage meter —
/// which requires building the run store here rather than leaving it to
/// the runtime.
fn configure_spill(
    args: &CliArgs,
    meter: Option<&IngestMeter>,
    flow: &Arc<FlowLedger>,
    config: &mut JobConfig,
) -> io::Result<()> {
    let Some(budget) = args.memory_budget else { return Ok(()) };
    config.memory_budget = Some(budget);
    if args.throttle.is_none() && meter.is_none() {
        // Nothing to wrap; the runtime manages the store (and cleans up
        // the temp directory when no --spill-dir is given).
        config.spill_dir = args.spill_dir.clone();
        return Ok(());
    }
    static CLI_SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = args.spill_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "supmr-spill-{}-{}",
            std::process::id(),
            CLI_SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    });
    let mut store: Arc<dyn RunStore> = Arc::new(DiskRunStore::create(&dir)?);
    if let Some(rate) = args.throttle {
        store = Arc::new(ThrottledRunStore::new(store, TokenBucket::new(rate)));
    }
    if let Some(m) = meter {
        // The spill store gets its own meter clone with its own flow
        // attribution: its reads happen during the external merge, its
        // writes during spills (the source meter's reads are ingest).
        let spill_meter = m.clone().with_flow(Arc::clone(flow), FlowPhase::Merge, FlowPhase::Spill);
        store = Arc::new(ObservedRunStore::new(store, spill_meter));
    }
    config.spill_store = Some(store);
    Ok(())
}

/// Generate an app-appropriate synthetic input of ~`bytes`.
fn generated_bytes(app: AppKind, seed: u64, bytes: u64, k: usize) -> Vec<u8> {
    match app {
        AppKind::TeraSort => TeraGen::with_total_bytes(seed, bytes).generate_all(),
        AppKind::Histogram => {
            // Deterministic pseudo-pixels.
            (0..bytes).map(|i| (i.wrapping_mul(2654435761) % 256) as u8).collect()
        }
        AppKind::LinReg => {
            // y = 2x + 1 with a deterministic wiggle.
            let mut out = Vec::new();
            let mut i = 0u64;
            while (out.len() as u64) < bytes {
                let x = i as f64 / 100.0;
                let wiggle = ((i * 37) % 11) as f64 / 1000.0;
                out.extend_from_slice(format!("{x} {}\n", 2.0 * x + 1.0 + wiggle).as_bytes());
                i += 1;
            }
            out
        }
        AppKind::KMeans => {
            let clusters = k.max(1);
            let per = ((bytes / 24).max(4) as usize / clusters).max(1);
            clustered_points(
                seed,
                &PointsConfig { clusters, points_per_cluster: per, ..Default::default() },
            )
        }
        AppKind::WordCount | AppKind::Grep => {
            TextGen::new(TextGenConfig::default()).generate_bytes(seed, bytes as usize)
        }
    }
}

/// Wrap a stream source into an [`Input`], metering it if a meter is
/// present (`--metrics-*` flags feed `supmr.storage.*` families).
fn stream_input(src: impl DataSource + 'static, meter: Option<&IngestMeter>) -> Input {
    match meter {
        Some(m) => Input::stream(ObservedSource::new(src, m.clone())),
        None => Input::stream(src),
    }
}

/// [`stream_input`]'s file-set counterpart.
fn files_input(set: impl FileSet + 'static, meter: Option<&IngestMeter>) -> Input {
    match meter {
        Some(m) => Input::files(ObservedFileSet::new(set, m.clone())),
        None => Input::files(set),
    }
}

/// Build the job input from the CLI arguments.
fn build_input(args: &CliArgs, meter: Option<&IngestMeter>) -> io::Result<Input> {
    let throttle = args.throttle;
    if let Some(path) = &args.input {
        if path.is_dir() {
            let set = DirFileSet::open(path)?;
            return Ok(match throttle {
                Some(rate) => {
                    files_input(ThrottledFileSet::with_bucket(set, TokenBucket::new(rate)), meter)
                }
                None => files_input(set, meter),
            });
        }
        let src = FileSource::open(path)?;
        return Ok(match throttle {
            Some(rate) => stream_input(ThrottledSource::new(src, rate), meter),
            None => stream_input(src, meter),
        });
    }
    let bytes = args.generate.expect("validated: generate or input");
    // Intra/hybrid chunking needs a file set; synthesize one.
    let wants_files = matches!(args.chunking, ChunkingSpec::Intra(_) | ChunkingSpec::Hybrid(_));
    if wants_files {
        let files = (bytes / (256 * 1024)).clamp(4, 64) as usize;
        let per = (bytes as usize / files).max(1024);
        let corpus = small_files_corpus(args.seed, files, per);
        let set = supmr_storage::MemFileSet::new(corpus);
        return Ok(match throttle {
            Some(rate) => {
                files_input(ThrottledFileSet::with_bucket(set, TokenBucket::new(rate)), meter)
            }
            None => files_input(set, meter),
        });
    }
    let data = generated_bytes(args.app, args.seed, bytes, args.k);
    let src = MemSource::from(data);
    Ok(match throttle {
        Some(rate) => stream_input(ThrottledSource::new(src, rate), meter),
        None => stream_input(src, meter),
    })
}

/// Run the job described by `args` and return a printable summary.
///
/// When `--metrics-addr` or `--metrics-interval` is given, a live
/// [`Registry`] is attached to the job (and to the storage layer via an
/// [`IngestMeter`]); the interval flag additionally streams ASCII
/// snapshots to stderr while the job runs.
///
/// # Errors
/// Returns the runtime's typed [`supmr::SupmrError`]: missing inputs
/// and ingest failures as `Ingest`, bad flag combinations as
/// `InvalidConfig`, and map/reduce panics as `TaskPanic`.
pub fn execute(args: &CliArgs) -> Result<RunSummary> {
    let registry =
        (args.metrics_addr.is_some() || args.metrics_interval.is_some()).then(Registry::new);
    let reporter = match (&registry, args.metrics_interval) {
        (Some(r), Some(interval)) => Some(SnapshotReporter::to_stderr(r.clone(), interval)),
        _ => None,
    };
    let result = execute_app(args, registry.as_ref());
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    result
}

fn execute_app(args: &CliArgs, registry: Option<&Registry>) -> Result<RunSummary> {
    let top = args.top;
    // One bandwidth ledger for the whole run, shared between the
    // storage meters (which own the phases they meter) and the runtime
    // (which records the rest and classifies the bottleneck).
    let flow = Arc::new(FlowLedger::new());
    let meter = registry.map(|r| {
        IngestMeter::with_registry(r).with_flow(
            Arc::clone(&flow),
            FlowPhase::Ingest,
            FlowPhase::Spill,
        )
    });
    match args.app {
        AppKind::WordCount => {
            let config = job_config(
                args,
                supmr_storage::RecordFormat::Newline,
                MergeMode::Unsorted,
                registry,
                meter.as_ref(),
                &flow,
            )?;
            let r = Job::new(WordCount::new())
                .config(config)
                .run(build_input(args, meter.as_ref())?)?;
            let mut pairs = r.pairs.clone();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let lines = pairs.iter().take(top).map(|(w, c)| format!("{c:>10}  {w}")).collect();
            Ok(RunSummary::from_result(&r, lines))
        }
        AppKind::TeraSort => {
            // Sorting is the point: default to a p-way merge, but an
            // explicit --merge unsorted is honoured.
            let config = job_config(
                args,
                TeraSort::record_format(),
                MergeMode::PWay { ways: 4 },
                registry,
                meter.as_ref(),
                &flow,
            )?;
            let input = build_input(args, meter.as_ref())?;
            let (pairs, report) = if args.pipeline {
                // Two-stage partition→sort pipeline: same output, but
                // the report (and any scraped metrics) break down by
                // stage.
                let r = terasort_pipeline(input, config)?;
                (r.pairs, r.report)
            } else {
                let r = Job::new(TeraSort::new()).config(config).run(input)?;
                (r.pairs, r.report)
            };
            let sorted = pairs.windows(2).all(|w| w[0].0 <= w[1].0);
            let mut lines: Vec<String> = pairs
                .iter()
                .take(top)
                .map(|(k, _)| format!("{}", String::from_utf8_lossy(k)))
                .collect();
            lines.push(format!("(output sorted: {sorted})"));
            Ok(RunSummary { report, lines })
        }
        AppKind::Grep => {
            let config = job_config(
                args,
                supmr_storage::RecordFormat::Newline,
                MergeMode::Unsorted,
                registry,
                meter.as_ref(),
                &flow,
            )?;
            let patterns: Vec<Vec<u8>> =
                args.patterns.iter().map(|p| p.clone().into_bytes()).collect();
            let r = Job::new(Grep::new(patterns))
                .config(config)
                .run(build_input(args, meter.as_ref())?)?;
            let mut pairs = r.pairs.clone();
            pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let lines = pairs.iter().take(top).map(|(p, c)| format!("{c:>10}  {p}")).collect();
            Ok(RunSummary::from_result(&r, lines))
        }
        AppKind::Histogram => {
            let config = job_config(
                args,
                Histogram::record_format(),
                MergeMode::Unsorted,
                registry,
                meter.as_ref(),
                &flow,
            )?;
            let r = Job::new(Histogram::new())
                .config(config)
                .run(build_input(args, meter.as_ref())?)?;
            let mut pairs = r.pairs.clone();
            pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let lines = pairs
                .iter()
                .take(top)
                .map(|(bucket, c)| {
                    let channel = ["R", "G", "B"][bucket / 256];
                    format!("{c:>10}  {channel}[{}]", bucket % 256)
                })
                .collect();
            Ok(RunSummary::from_result(&r, lines))
        }
        AppKind::LinReg => {
            let config = job_config(
                args,
                supmr_storage::RecordFormat::Newline,
                MergeMode::Unsorted,
                registry,
                meter.as_ref(),
                &flow,
            )?;
            let r = Job::new(LinearRegression::new())
                .config(config)
                .run(build_input(args, meter.as_ref())?)?;
            let lines = match linreg::fit(&r.pairs) {
                Some(f) => {
                    vec![format!("y = {:.6}x + {:.6}   (n = {})", f.slope, f.intercept, f.n)]
                }
                None => vec!["(degenerate input: no fit)".to_string()],
            };
            Ok(RunSummary::from_result(&r, lines))
        }
        AppKind::KMeans => {
            let config = job_config(
                args,
                supmr_storage::RecordFormat::Newline,
                MergeMode::Unsorted,
                registry,
                meter.as_ref(),
                &flow,
            )?;
            // kmeans re-ingests per iteration: rebuild the input each time.
            let args2 = args.clone();
            let meter2 = meter.clone();
            let init: Vec<(f64, f64)> =
                (0..args.k).map(|i| (i as f64 * 3.1 + 0.5, i as f64 * -2.3)).collect();
            let result = run_kmeans(
                move || build_input(&args2, meter2.as_ref()),
                init,
                &config,
                args.iters,
                1e-6,
            )?;
            let mut lines: Vec<String> = result
                .centroids
                .iter()
                .enumerate()
                .map(|(i, (x, y))| format!("centroid {i}: ({x:.4}, {y:.4})"))
                .collect();
            lines.push(format!(
                "{} iterations, converged: {}, {} points",
                result.iterations, result.converged, result.points
            ));
            // The iterative pipeline aggregates all passes into one
            // report, with a per-iteration stage breakdown.
            Ok(RunSummary { report: result.report, lines })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run(cmdline: &str) -> RunSummary {
        execute(&parse_args(&argv(cmdline)).unwrap()).unwrap()
    }

    #[test]
    fn wordcount_generate_and_top() {
        let s = run("wordcount --generate 64K --chunking inter:16K --top 3 --workers 2");
        assert_eq!(s.lines.len(), 3);
        assert!(s.output_pairs() > 3);
        assert!(s.chunks() >= 3);
    }

    #[test]
    fn terasort_reports_sorted_output() {
        let s = run("terasort --generate 32K --chunking inter:8K --merge pway:2 --workers 2");
        assert!(s.lines.last().unwrap().contains("sorted: true"));
        assert_eq!(s.output_pairs(), 32 * 1024 / 100);
    }

    #[test]
    fn pipeline_terasort_matches_the_single_job() {
        let single = run("terasort --generate 32K --chunking inter:8K --merge pway:2 --workers 2");
        let piped = run("terasort --generate 32K --chunking inter:8K --merge pway:2 --workers 2 \
             --pipeline");
        assert_eq!(piped.lines, single.lines, "pipeline output must match the single job");
        assert_eq!(piped.output_pairs(), single.output_pairs());
        assert_eq!(piped.report.stages.len(), 2, "partition and sort stages reported");
        let handoff = piped.report.stages[0].handoff.expect("partition stage hands off");
        assert_eq!(handoff.materialized_pairs, 0, "the hand-off streams");
    }

    #[test]
    fn pipeline_terasort_scrapes_stage_labelled_metrics() {
        let s = run("terasort --generate 32K --merge pway:2 --workers 2 --pipeline \
             --metrics-addr 127.0.0.1:0");
        assert!(s.lines.last().unwrap().contains("sorted: true"));
        let snap = s.report.metrics.as_ref().expect("metrics attached");
        for stage in ["partition", "sort"] {
            assert!(
                snap.entries.iter().any(|e| {
                    e.name == "supmr.stage.runs"
                        && e.labels.iter().any(|(k, v)| k == "stage" && v == stage)
                }),
                "supmr.stage.runs{{stage={stage}}} registered"
            );
        }
        assert!(snap.entries.iter().any(|e| e.name == "supmr.stage.handoff_bytes"));
    }

    #[test]
    fn grep_counts_generated_text() {
        // The generator's rank-0 word is "ca" (vocabulary order).
        let s = run("grep --generate 32K --pattern ca --pattern zzzzzz --workers 2");
        assert!(!s.lines.is_empty());
        assert!(s.lines[0].contains("ca"));
    }

    #[test]
    fn histogram_over_generated_pixels() {
        let s = run("histogram --generate 30K --workers 2 --top 4");
        assert_eq!(s.lines.len(), 4);
        assert!(s.output_pairs() > 100);
    }

    #[test]
    fn linreg_recovers_generated_line() {
        let s = run("linreg --generate 64K --workers 2");
        assert!(s.lines[0].starts_with("y = 2.0"), "{}", s.lines[0]);
    }

    #[test]
    fn kmeans_converges_on_generated_blobs() {
        let s = run("kmeans --generate 64K --k 4 --iters 30 --workers 2");
        let last = s.lines.last().unwrap();
        assert!(last.contains("converged: true"), "{last}");
        assert_eq!(s.lines.len(), 5, "4 centroid lines + the summary line");
        // The final pass emits one pair per non-empty cluster; seeds
        // that capture no points keep their centroid but emit nothing.
        let pairs = s.output_pairs();
        assert!((1..=4).contains(&pairs), "final pass emitted {pairs} cluster pairs");
        assert!(!s.report.stages.is_empty(), "the iterative pipeline reports its passes");
        assert!(s.report.stats.map_tasks > 0, "aggregated counters are real, not a stub");
    }

    #[test]
    fn persistent_pool_via_cli_matches_wave() {
        let wave = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5");
        let pooled = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5 \
             --pool persistent");
        assert_eq!(pooled.lines, wave.lines);
        assert_eq!(pooled.output_pairs(), wave.output_pairs());
        assert_eq!(pooled.chunks(), wave.chunks());
    }

    #[test]
    fn intra_chunking_synthesizes_a_file_set() {
        let s = run("wordcount --generate 512K --chunking intra:2 --workers 2");
        assert!(s.chunks() >= 2);
    }

    #[test]
    fn hybrid_chunking_synthesizes_a_file_set() {
        let s = run("wordcount --generate 512K --chunking hybrid:64K --workers 2");
        assert!(s.chunks() >= 4);
    }

    #[test]
    fn adaptive_chunking_via_cli() {
        let s = run("wordcount --generate 256K --chunking adaptive --workers 2");
        assert!(s.output_pairs() > 0);
    }

    #[test]
    fn file_input_round_trip() {
        let dir = std::env::temp_dir().join("supmr-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input.txt");
        std::fs::write(&path, b"apple banana apple\n").unwrap();
        let s = run(&format!("wordcount --input {} --workers 1", path.display()));
        assert_eq!(s.output_pairs(), 2);
        assert!(s.lines[0].contains("apple"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_input_round_trip() {
        let dir = std::env::temp_dir().join("supmr-cli-dir-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.txt"), b"x y\n").unwrap();
        std::fs::write(dir.join("b.txt"), b"x z\n").unwrap();
        let s = run(&format!("wordcount --input {} --chunking intra:1 --workers 1", dir.display()));
        assert_eq!(s.output_pairs(), 3);
        assert_eq!(s.chunks(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_input_is_an_error() {
        let args = parse_args(&argv("wordcount --input /nonexistent/supmr")).unwrap();
        assert!(execute(&args).is_err());
    }

    #[test]
    fn adaptive_run_matches_static_and_reports_the_governor() {
        let base = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5 \
             --hash-seed 7");
        let adaptive = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5 \
             --hash-seed 7 --adaptive --governor-interval 1ms");
        assert_eq!(adaptive.lines, base.lines, "the governor must not change the output");
        assert_eq!(adaptive.output_pairs(), base.output_pairs());
        let gov = adaptive.report.governor.as_ref().expect("governor report attached");
        assert_eq!(gov.interval_ms, 1);
        assert!(
            adaptive.report.to_json().render().contains("supmr.governor.v1"),
            "report JSON carries the governor block"
        );
    }

    #[test]
    fn budgeted_wordcount_spills_and_matches_unbounded() {
        let base = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5 \
             --hash-seed 7");
        let budgeted = run("wordcount --generate 64K --chunking inter:16K --workers 2 --top 5 \
             --hash-seed 7 --memory-budget 2K");
        assert!(budgeted.report.stats.spill_runs > 0, "2K budget must spill");
        assert_eq!(budgeted.lines, base.lines, "spilling must not change the output");
        assert_eq!(budgeted.output_pairs(), base.output_pairs());
    }

    #[test]
    fn budgeted_terasort_still_sorts() {
        let s = run("terasort --generate 32K --merge pway:2 --workers 2 --memory-budget 4K");
        assert!(s.lines.last().unwrap().contains("sorted: true"));
        assert!(s.report.stats.spill_runs > 0, "4K budget must spill");
        assert_eq!(s.output_pairs(), 32 * 1024 / 100);
    }

    #[test]
    fn budgeted_run_with_throttle_and_metrics_observes_spill_io() {
        let dir = std::env::temp_dir().join("supmr-cli-spill-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = run(&format!(
            "wordcount --generate 64K --workers 2 --memory-budget 1K \
             --spill-dir {} --throttle 64M --metrics-addr 127.0.0.1:0",
            dir.display()
        ));
        assert!(s.report.stats.spill_runs > 0);
        let snap = s.report.metrics.as_ref().expect("metrics attached");
        let value = |name: &str| snap.entries.iter().find(|e| e.name == name).map(|e| &e.value);
        assert!(value("supmr.spill.runs").is_some(), "spill families registered");
        // The runs went through the observed store, so the storage
        // meter's write side counted their bytes.
        match value("supmr.storage.bytes_written") {
            Some(supmr_metrics::MetricValue::Counter(n)) => assert!(*n > 0, "spill writes metered"),
            other => panic!("expected a bytes_written counter, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_run_scrapes_and_reports() {
        // Port 0: the OS picks a free port; the run still exercises the
        // full wiring (registry -> runtimes, pool, storage meter).
        let s = run("wordcount --generate 64K --chunking inter:16K --workers 2 \
             --pool persistent --metrics-addr 127.0.0.1:0");
        let snap = s.report.metrics.as_ref().expect("metrics attached");
        let has = |name: &str| snap.entries.iter().any(|e| e.name == name);
        assert!(has("supmr.map.task_us"), "map histogram registered");
        assert!(has("supmr.ingest.bytes"), "ingest counter registered");
        assert!(has("supmr.pool.dispatch_us"), "pool histogram registered");
        assert!(has("supmr.storage.bytes_read"), "storage meter fed the registry");
        assert!(has("supmr.jobs_completed"), "job completion counted");
        // The JSON report carries the metrics section.
        assert!(s.report.to_json().render().contains("\"metrics\""));
    }

    #[test]
    fn unmetered_run_attaches_no_metrics() {
        let s = run("wordcount --generate 32K --workers 1");
        assert!(s.report.metrics.is_none());
    }

    #[test]
    fn traced_run_attaches_a_valid_trace() {
        let s = run("wordcount --generate 128K --chunking inter:32K --workers 2 --trace wave");
        let trace = s.report.trace.as_ref().expect("trace requested");
        assert!(trace.event_count() > 0);
        trace.validate().expect("spans nest cleanly");
        assert!(!trace.rounds().is_empty(), "pipelined run must reconstruct rounds");
    }

    #[test]
    fn untraced_run_attaches_no_trace() {
        let s = run("wordcount --generate 32K --workers 1");
        assert!(s.report.trace.is_none());
    }
}
