//! Command-line driver for SupMR.
//!
//! ```text
//! supmr <app> [--input PATH | --generate SIZE] [options]
//!
//! apps:
//!   wordcount   count words (text input)
//!   terasort    sort gensort-style CRLF records
//!   grep        count fixed-pattern occurrences (--pattern, repeatable)
//!   histogram   RGB histogram over 3-byte pixels
//!   linreg      least-squares fit over "x y" lines
//!   kmeans      cluster "x y" points (--k, --iters)
//!
//! options:
//!   --input PATH        a file (stream input) or a directory (file set)
//!   --generate SIZE     synthesize an app-appropriate input of SIZE
//!                       (suffixes K/M/G; e.g. 64M)
//!   --chunking SPEC     none | inter:SIZE | intra:N | hybrid:SIZE | adaptive
//!   --merge SPEC        unsorted | pairwise | pway:N
//!   --workers N         mapper/reducer threads          [default: cores]
//!   --split SIZE        input split size                [default: 1M]
//!   --prefetch N        ingest chunks buffered ahead    [default: 1]
//!   --throttle RATE     cap storage bandwidth, e.g. 24M (bytes/sec)
//!   --memory-budget SIZE  cap the intermediate set's resident bytes;
//!                       past it the job spills sorted runs to disk and
//!                       the reduce phase streams an external merge
//!   --spill-dir PATH    where spill runs go [default: per-job temp dir]
//!   --trace LEVEL       event tracing: off | wave | task [default: off]
//!   --trace-out PATH    write the recorded trace (.json Chrome trace,
//!                       .jsonl events, .txt ASCII timeline)
//!   --metrics-addr A    serve live OpenMetrics at http://A/metrics
//!                       while the job runs (e.g. 127.0.0.1:9400)
//!   --metrics-interval D  print ASCII metrics snapshots to stderr
//!                       every D (e.g. 500ms, 2s)
//!   --diagnose          print the bottleneck diagnosis panel (verdict,
//!                       blocked-time shares, per-phase MB/s) after the
//!                       job completes
//!   --adaptive          run the feedback governor: retune wave widths,
//!                       prefetch depth, the absorb sweep mask, and
//!                       spill watermarks mid-job from the live metrics
//!   --governor-interval D  governor sampling period [default: 50ms]
//!                       (implies --adaptive)
//!   --report-out PATH   write the full job report JSON to PATH
//!   --top N             print the N largest results     [default: 10]
//!   --seed N            generator seed                  [default: 42]
//!   --hash-seed N       fix the container hash seed so key placement
//!                       is reproducible across runs  [default: random]
//! ```
//!
//! The parsing layer is a small hand-rolled option walker (no external
//! dependency) kept separate from execution so it is unit-testable.

pub mod args;
pub mod reporter;
pub mod run;

pub use args::{parse_args, AppKind, ChunkingSpec, CliArgs, CliError, MergeSpec};
pub use reporter::SnapshotReporter;
pub use run::{execute, RunSummary};
