//! The `supmr` command-line tool. See crate docs / `--help` for usage.

use std::path::Path;
use supmr_cli::{execute, parse_args, RunSummary};
use supmr_metrics::ascii::{render_timeline, ChartOptions};
use supmr_metrics::chrome::{to_chrome_json, to_jsonl};
use supmr_metrics::{JobTrace, PhaseTimings};

const USAGE: &str = "\
usage: supmr <app> [--input PATH | --generate SIZE] [options]
       supmr serve [--listen ADDR] [serve options]

apps: wordcount terasort grep histogram linreg kmeans

serve options:
  --listen ADDR      bind address (default 127.0.0.1:8900)
  --workers N        shared worker pool size (default: cores)
  --max-concurrent N jobs running at once (default 2)
  --queue-depth N    bounded admission queue (default 16)
  --memory-budget SIZE
                     global budget partitioned across running jobs;
                     a tenant that outgrows its share spills to disk
  --job-workers N    per-job wave width default (default: pool size)
  endpoints: POST /jobs, GET /jobs[/{id}], DELETE /jobs/{id},
             GET /metrics, GET /debug/governor?job=ID, GET /healthz,
             POST /shutdown; SIGTERM drains gracefully

options:
  --input PATH       file (stream) or directory (file set)
  --generate SIZE    synthesize input (K/M/G suffixes)
  --chunking SPEC    none | inter:SIZE | intra:N | hybrid:SIZE | adaptive
  --merge SPEC       unsorted | pairwise | pway[:N]
  --workers N        mapper/reducer threads
  --split SIZE       input split size (default 1M)
  --prefetch N       ingest chunks buffered ahead (default 1)
  --pool MODE        wave (spawn/join per round, default) | persistent
  --throttle RATE    cap storage bandwidth (e.g. 24M = 24 MiB/s)
  --memory-budget SIZE
                     cap the intermediate set; past it the job spills
                     sorted runs to disk and reduces via external merge
  --spill-dir PATH   where spill runs go (default: per-job temp dir)
  --trace LEVEL      event tracing: off (default) | wave | task
  --trace-out PATH   write the trace: .json Chrome trace (chrome://tracing),
                     .jsonl line-delimited events, .txt ASCII timeline
                     (implies --trace wave if tracing is off)
  --metrics-addr A   serve live OpenMetrics at http://A/metrics while the
                     job runs (curl http://A/metrics)
  --metrics-interval D
                     print ASCII metrics snapshots to stderr every D
                     (500ms, 2s, ...)
  --diagnose         print the bottleneck diagnosis after the job: the
                     verdict (ingest-bound, map-bound, shuffle-bound,
                     memory-budget-bound, reduce/merge-bound), blocked-
                     time shares, and achieved MB/s per phase
  --adaptive         run the feedback governor: sample the live metrics,
                     classify the bottleneck, and retune wave widths,
                     prefetch depth, the absorb sweep mask, and spill
                     watermarks mid-job
  --governor-interval D
                     governor sampling period (default 50ms; implies
                     --adaptive)
  --report-out PATH  write the full job report JSON (timings, metrics,
                     diagnosis, governor decisions) to PATH
  --top N            results to print (default 10)
  --seed N           generator seed (default 42)
  --hash-seed N      fix the container hash seed for reproducible
                     key placement (default: random per run)
  --pattern P        grep pattern (repeatable)
  --k N --iters N    kmeans parameters

examples:
  supmr wordcount --generate 64M --chunking inter:4M --throttle 24M
  supmr wordcount --generate 64M --chunking inter:4M --trace-out trace.json
  supmr wordcount --generate 64M --metrics-addr 127.0.0.1:9400
  supmr wordcount --generate 64M --throttle 24M --diagnose
  supmr wordcount --generate 64M --throttle 24M --adaptive --report-out report.json
  supmr terasort  --input /data/tera.dat --chunking inter:64M --merge pway:8
  supmr terasort  --generate 8G --memory-budget 2G --spill-dir /mnt/fast/spill
  supmr grep      --input logs/ --chunking intra:8 --pattern ERROR
";

/// Serialize `trace` in the format implied by `path`'s extension.
fn render_trace(trace: &JobTrace, path: &Path) -> String {
    match path.extension().and_then(|e| e.to_str()) {
        Some("jsonl") => to_jsonl(trace),
        Some("txt") => render_timeline(
            trace,
            &ChartOptions { title: "supmr job timeline".to_string(), ..Default::default() },
        ),
        _ => to_chrome_json(trace),
    }
}

fn print_summary(
    summary: &RunSummary,
    trace_out: Option<&Path>,
    report_out: Option<&Path>,
    diagnose: bool,
) {
    println!("{}", PhaseTimings::table_header());
    println!("{}", summary.report.timings.table_row("job"));
    let stalls = summary.report.stalls();
    if !stalls.map_waiting.is_zero() || !stalls.ingest_waiting.is_zero() {
        println!(
            "stalls: map waited {:.3}s for chunks, ingest waited {:.3}s for mappers",
            stalls.map_waiting.as_secs_f64(),
            stalls.ingest_waiting.as_secs_f64()
        );
    }
    println!("\n{} output pairs, {} ingest chunks\n", summary.output_pairs(), summary.chunks());
    for line in &summary.lines {
        println!("{line}");
    }
    if diagnose {
        match &summary.report.diag {
            Some(d) => println!("\n{}", d.render_ascii()),
            None => eprintln!("supmr: no diagnosis recorded for this app"),
        }
    }
    if let Some(gov) = &summary.report.governor {
        println!(
            "\ngovernor: {} ticks, {} actions; final widths map={} reduce={} prefetch={}",
            gov.ticks,
            gov.actions.len() as u64 + gov.dropped_actions,
            gov.final_map_width,
            gov.final_reduce_width,
            gov.final_prefetch_depth
        );
        for a in gov.actions.iter().take(8) {
            println!("  +{:>7}us  {:<18} {} -> {}", a.t_us, a.verdict, a.knob, a.value);
        }
        if gov.actions.len() > 8 {
            println!("  ... {} more (see --report-out)", gov.actions.len() - 8);
        }
    }
    if let Some(path) = report_out {
        if let Err(e) = std::fs::write(path, summary.report.to_json().render()) {
            eprintln!("supmr: cannot write report to {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\nreport: {}", path.display());
    }
    if let Some(path) = trace_out {
        match &summary.report.trace {
            Some(trace) => match std::fs::write(path, render_trace(trace, path)) {
                Ok(()) => println!("\ntrace ({} events): {}", trace.event_count(), path.display()),
                Err(e) => {
                    eprintln!("supmr: cannot write trace to {}: {e}", path.display());
                    std::process::exit(1);
                }
            },
            // Only the kmeans driver lands here (per-iteration jobs,
            // no single job trace).
            None => eprintln!("supmr: no trace recorded for this app; nothing written"),
        }
    }
}

/// Parse `supmr serve` flags and run the daemon until SIGTERM or
/// `POST /shutdown`. Never returns on success.
fn run_serve(argv: &[String]) -> Result<(), String> {
    let mut listen = "127.0.0.1:8900".to_string();
    let mut config = supmr_serve::ServeConfig::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?.clone(),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
            }
            "--max-concurrent" => {
                config.max_concurrent = value("--max-concurrent")?
                    .parse()
                    .map_err(|_| "--max-concurrent needs a positive integer".to_string())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a positive integer".to_string())?;
            }
            "--memory-budget" => {
                config.memory_budget =
                    Some(supmr::parse_size(value("--memory-budget")?).map_err(|e| e.to_string())?);
            }
            "--job-workers" => {
                config.default_job_workers = value("--job-workers")?
                    .parse()
                    .map_err(|_| "--job-workers needs a positive integer".to_string())?;
            }
            other => return Err(format!("unknown serve flag: {other}")),
        }
    }
    let daemon = supmr_serve::Daemon::start(&listen, config)
        .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    eprintln!("supmr serve: listening on http://{}/ (POST /jobs to submit)", daemon.addr());
    daemon.run();
    eprintln!("supmr serve: drained, exiting");
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        print!("{USAGE}");
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    if argv[0] == "serve" {
        if let Err(e) = run_serve(&argv[1..]) {
            eprintln!("supmr: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
        return;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("supmr: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match execute(&args) {
        Ok(summary) => print_summary(
            &summary,
            args.trace_out.as_deref(),
            args.report_out.as_deref(),
            args.diagnose,
        ),
        Err(e) => {
            eprintln!("supmr: {e}");
            std::process::exit(1);
        }
    }
}
