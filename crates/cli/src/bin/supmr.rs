//! The `supmr` command-line tool. See crate docs / `--help` for usage.

use supmr_cli::{execute, parse_args};
use supmr_metrics::PhaseTimings;

const USAGE: &str = "\
usage: supmr <app> [--input PATH | --generate SIZE] [options]

apps: wordcount terasort grep histogram linreg kmeans

options:
  --input PATH       file (stream) or directory (file set)
  --generate SIZE    synthesize input (K/M/G suffixes)
  --chunking SPEC    none | inter:SIZE | intra:N | hybrid:SIZE | adaptive
  --merge SPEC       unsorted | pairwise | pway[:N]
  --workers N        mapper/reducer threads
  --split SIZE       input split size (default 1M)
  --prefetch N       ingest chunks buffered ahead (default 1)
  --pool MODE        wave (spawn/join per round, default) | persistent
  --throttle RATE    cap storage bandwidth (e.g. 24M = 24 MiB/s)
  --top N            results to print (default 10)
  --seed N           generator seed (default 42)
  --pattern P        grep pattern (repeatable)
  --k N --iters N    kmeans parameters

examples:
  supmr wordcount --generate 64M --chunking inter:4M --throttle 24M
  supmr terasort  --input /data/tera.dat --chunking inter:64M --merge pway:8
  supmr grep      --input logs/ --chunking intra:8 --pattern ERROR
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        print!("{USAGE}");
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("supmr: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match execute(&args) {
        Ok(summary) => {
            println!("{}", PhaseTimings::table_header());
            println!("{}", summary.timings.table_row("job"));
            println!("\n{} output pairs, {} ingest chunks\n", summary.output_pairs, summary.chunks);
            for line in &summary.lines {
                println!("{line}");
            }
        }
        Err(e) => {
            eprintln!("supmr: {e}");
            std::process::exit(1);
        }
    }
}
