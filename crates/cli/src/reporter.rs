//! Periodic ASCII metrics snapshots.
//!
//! `--metrics-interval` starts a [`SnapshotReporter`]: a background
//! thread that renders the live [`Registry`] as an aligned text table
//! every interval (to stderr in the CLI, to any writer in tests) while
//! the job runs, then emits one final snapshot when stopped. This is
//! the no-curl counterpart of the `/metrics` scrape endpoint — the same
//! registry, rendered locally.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use supmr_metrics::Registry;

/// Background thread printing registry snapshots at a fixed interval.
#[derive(Debug)]
pub struct SnapshotReporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SnapshotReporter {
    /// Start reporting `registry` every `interval` into `out`. The
    /// first snapshot prints after one full interval; [`finish`]
    /// (or drop) always prints a final one, so even a short run shows
    /// its metrics.
    ///
    /// [`finish`]: SnapshotReporter::finish
    pub fn start(
        registry: Registry,
        interval: Duration,
        mut out: impl Write + Send + 'static,
    ) -> SnapshotReporter {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("supmr-metrics-report".into())
            .spawn(move || {
                let mut tick = 0u64;
                while !sleep_unless_stopped(&stop2, interval) {
                    tick += 1;
                    write_snapshot(&mut out, &registry, &format!("tick {tick}"));
                }
                write_snapshot(&mut out, &registry, "final");
            })
            .expect("spawn metrics reporter thread");
        SnapshotReporter { stop, handle: Some(handle) }
    }

    /// Report to stderr — what the CLI wires `--metrics-interval` to.
    pub fn to_stderr(registry: Registry, interval: Duration) -> SnapshotReporter {
        SnapshotReporter::start(registry, interval, std::io::stderr())
    }

    /// Stop the reporter; prints one last snapshot before returning.
    pub fn finish(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SnapshotReporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Sleep for `interval` in short slices so a stop request interrupts
/// promptly. Returns true if stopped.
fn sleep_unless_stopped(stop: &AtomicBool, interval: Duration) -> bool {
    let slice = Duration::from_millis(20).min(interval);
    let mut slept = Duration::ZERO;
    while slept < interval {
        if stop.load(Ordering::Relaxed) {
            return true;
        }
        std::thread::sleep(slice);
        slept += slice;
    }
    stop.load(Ordering::Relaxed)
}

fn write_snapshot(out: &mut impl Write, registry: &Registry, label: &str) {
    let body = registry.snapshot().render_ascii();
    let _ = writeln!(out, "-- supmr metrics ({label}) --\n{body}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn reporter_emits_ticks_and_a_final_snapshot() {
        let registry = Registry::new();
        let jobs = registry.counter("supmr.jobs_completed", "Jobs finished.", &[]);
        jobs.inc();
        let buf = SharedBuf::default();
        let rep = SnapshotReporter::start(registry, Duration::from_millis(30), buf.clone());
        std::thread::sleep(Duration::from_millis(100));
        rep.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("tick 1"), "at least one periodic tick:\n{text}");
        assert!(text.contains("(final)"), "final snapshot on finish:\n{text}");
        assert!(text.contains("supmr.jobs_completed"), "series rendered:\n{text}");
    }

    #[test]
    fn short_run_still_prints_a_final_snapshot() {
        let registry = Registry::new();
        registry.counter("supmr.jobs_completed", "Jobs finished.", &[]);
        let buf = SharedBuf::default();
        let rep = SnapshotReporter::start(registry, Duration::from_secs(3600), buf.clone());
        rep.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(!text.contains("tick"), "no interval elapsed:\n{text}");
        assert!(text.contains("(final)"), "{text}");
    }
}
