//! Argument parsing for the `supmr` CLI.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;
use supmr_metrics::TraceLevel;

/// Which bundled application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Count words.
    WordCount,
    /// Sort gensort-style records.
    TeraSort,
    /// Count fixed-pattern occurrences.
    Grep,
    /// RGB histogram.
    Histogram,
    /// Least-squares linear regression.
    LinReg,
    /// KMeans clustering.
    KMeans,
}

impl AppKind {
    fn parse(s: &str) -> Result<AppKind, CliError> {
        Ok(match s {
            "wordcount" | "wc" => AppKind::WordCount,
            "terasort" | "sort" => AppKind::TeraSort,
            "grep" => AppKind::Grep,
            "histogram" => AppKind::Histogram,
            "linreg" => AppKind::LinReg,
            "kmeans" => AppKind::KMeans,
            other => return Err(CliError(format!("unknown app '{other}'"))),
        })
    }
}

/// Chunking strategy as given on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkingSpec {
    /// Original runtime.
    None,
    /// `inter:SIZE`.
    Inter(u64),
    /// `intra:N`.
    Intra(usize),
    /// `hybrid:SIZE`.
    Hybrid(u64),
    /// `adaptive` (default controller bounds).
    Adaptive,
}

/// Merge mode as given on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeSpec {
    /// Concatenate unsorted.
    Unsorted,
    /// Baseline iterative rounds.
    Pairwise,
    /// `pway:N`.
    PWay(usize),
}

/// Worker provisioning mode as given on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolSpec {
    /// Spawn and join a fresh wave of threads per round (baseline).
    #[default]
    Wave,
    /// One persistent worker pool for the whole job.
    Persistent,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Application to run.
    pub app: AppKind,
    /// Input path (file or directory), mutually exclusive with
    /// `generate`.
    pub input: Option<PathBuf>,
    /// Synthesize this many input bytes.
    pub generate: Option<u64>,
    /// Chunking strategy.
    pub chunking: ChunkingSpec,
    /// Merge mode; `None` means "not specified" so each app can apply
    /// its own default (terasort defaults to a p-way merge).
    pub merge: Option<MergeSpec>,
    /// Worker threads (None = auto).
    pub workers: Option<usize>,
    /// Split size, bytes.
    pub split_bytes: usize,
    /// Prefetch depth.
    pub prefetch: usize,
    /// Worker provisioning mode.
    pub pool: PoolSpec,
    /// Storage bandwidth cap, bytes/sec.
    pub throttle: Option<f64>,
    /// Intermediate-set memory budget, bytes; past it the job spills
    /// sorted runs to disk and reduces via an external merge.
    pub memory_budget: Option<u64>,
    /// Where spill runs go (`None` = a per-job temp directory).
    pub spill_dir: Option<PathBuf>,
    /// How many results to print.
    pub top: usize,
    /// Generator seed.
    pub seed: u64,
    /// Container hash seed: fixes key→partition placement across runs
    /// (`None` keeps the default random seed).
    pub hash_seed: Option<u64>,
    /// Grep patterns.
    pub patterns: Vec<String>,
    /// Run terasort as the two-stage partition→sort [`Pipeline`]
    /// instead of a single job (same output, stage-labelled metrics).
    ///
    /// [`Pipeline`]: supmr::Pipeline
    pub pipeline: bool,
    /// KMeans cluster count.
    pub k: usize,
    /// KMeans iteration cap.
    pub iters: usize,
    /// Event-trace detail level.
    pub trace: TraceLevel,
    /// Where to write the recorded trace (`.json` Chrome trace,
    /// `.jsonl` line-delimited events, `.txt` ASCII timeline).
    pub trace_out: Option<PathBuf>,
    /// Serve a live `/metrics` OpenMetrics scrape endpoint here (e.g.
    /// `127.0.0.1:9400`) while the job runs.
    pub metrics_addr: Option<String>,
    /// Print an ASCII metrics snapshot to stderr at this interval.
    pub metrics_interval: Option<Duration>,
    /// Print the bottleneck diagnosis panel (verdict, blocked-time
    /// shares, per-phase bandwidth) after the job completes.
    pub diagnose: bool,
    /// Run the feedback governor: sample the live metrics, classify the
    /// bottleneck, and retune scheduling knobs mid-job.
    pub adaptive: bool,
    /// Governor sampling interval (`None` = the runtime default).
    pub governor_interval: Option<Duration>,
    /// Write the full job report JSON here after the run.
    pub report_out: Option<PathBuf>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parse a size with optional K/M/G/T suffix ("64M" → 67108864).
/// The hardened parser itself lives in [`supmr::parse`] so the serve
/// API's JSON job specs share it; this wrapper only maps the error
/// into the CLI's error type.
pub fn parse_size(s: &str) -> Result<u64, CliError> {
    supmr::parse::parse_size(s).map_err(|e| CliError(e.0))
}

/// Parse a duration: bare numbers are seconds, `ms`/`s` suffixes are
/// explicit ("500ms", "2s", "1.5"). Delegates to [`supmr::parse`].
pub fn parse_duration(s: &str) -> Result<Duration, CliError> {
    supmr::parse::parse_duration(s).map_err(|e| CliError(e.0))
}

fn parse_chunking(s: &str) -> Result<ChunkingSpec, CliError> {
    if s == "none" {
        return Ok(ChunkingSpec::None);
    }
    if s == "adaptive" {
        return Ok(ChunkingSpec::Adaptive);
    }
    let (kind, value) = s
        .split_once(':')
        .ok_or_else(|| CliError(format!("chunking '{s}' needs kind:value (e.g. inter:64M)")))?;
    match kind {
        "inter" => Ok(ChunkingSpec::Inter(parse_size(value)?.max(1))),
        "intra" => value
            .parse::<usize>()
            .map(ChunkingSpec::Intra)
            .map_err(|_| CliError(format!("invalid file count '{value}'"))),
        "hybrid" => Ok(ChunkingSpec::Hybrid(parse_size(value)?.max(1))),
        other => Err(CliError(format!("unknown chunking '{other}'"))),
    }
}

fn parse_pool(s: &str) -> Result<PoolSpec, CliError> {
    match s {
        "wave" | "wave-per-round" => Ok(PoolSpec::Wave),
        "persistent" | "pooled" => Ok(PoolSpec::Persistent),
        other => Err(CliError(format!("unknown pool mode '{other}' (wave|persistent)"))),
    }
}

fn parse_merge(s: &str) -> Result<MergeSpec, CliError> {
    match s {
        "unsorted" => Ok(MergeSpec::Unsorted),
        "pairwise" => Ok(MergeSpec::Pairwise),
        _ => {
            if let Some(("pway", ways)) = s.split_once(':') {
                return ways
                    .parse::<usize>()
                    .map(MergeSpec::PWay)
                    .map_err(|_| CliError(format!("invalid way count '{ways}'")));
            }
            if s == "pway" {
                return Ok(MergeSpec::PWay(4));
            }
            Err(CliError(format!("unknown merge mode '{s}'")))
        }
    }
}

/// Parse a full argument list (without the program name).
pub fn parse_args(argv: &[String]) -> Result<CliArgs, CliError> {
    let mut it = argv.iter();
    let app = AppKind::parse(it.next().ok_or_else(|| CliError("missing app name".into()))?)?;
    let mut args = CliArgs {
        app,
        input: None,
        generate: None,
        chunking: ChunkingSpec::None,
        merge: None,
        workers: None,
        split_bytes: 1024 * 1024,
        prefetch: 1,
        pool: PoolSpec::Wave,
        throttle: None,
        memory_budget: None,
        spill_dir: None,
        top: 10,
        seed: 42,
        hash_seed: None,
        patterns: Vec::new(),
        pipeline: false,
        k: 4,
        iters: 20,
        trace: TraceLevel::Off,
        trace_out: None,
        metrics_addr: None,
        metrics_interval: None,
        diagnose: false,
        adaptive: false,
        governor_interval: None,
        report_out: None,
    };
    while let Some(flag) = it.next() {
        let mut value =
            || it.next().cloned().ok_or_else(|| CliError(format!("flag {flag} needs a value")));
        match flag.as_str() {
            "--input" => args.input = Some(PathBuf::from(value()?)),
            "--generate" => args.generate = Some(parse_size(&value()?)?),
            "--chunking" => args.chunking = parse_chunking(&value()?)?,
            "--merge" => args.merge = Some(parse_merge(&value()?)?),
            "--workers" => {
                args.workers =
                    Some(value()?.parse().map_err(|_| CliError("invalid worker count".into()))?)
            }
            "--split" => args.split_bytes = parse_size(&value()?)?.max(1) as usize,
            "--prefetch" => {
                args.prefetch =
                    value()?.parse().map_err(|_| CliError("invalid prefetch depth".into()))?
            }
            "--pool" => args.pool = parse_pool(&value()?)?,
            "--throttle" => args.throttle = Some(parse_size(&value()?)?.max(1) as f64),
            "--memory-budget" => {
                let budget = parse_size(&value()?)?;
                if budget == 0 {
                    return Err(CliError("--memory-budget must be positive".into()));
                }
                args.memory_budget = Some(budget);
            }
            "--spill-dir" => args.spill_dir = Some(PathBuf::from(value()?)),
            "--top" => {
                args.top = value()?.parse().map_err(|_| CliError("invalid top count".into()))?
            }
            "--seed" => {
                args.seed = value()?.parse().map_err(|_| CliError("invalid seed".into()))?
            }
            "--hash-seed" => {
                args.hash_seed =
                    Some(value()?.parse().map_err(|_| CliError("invalid hash seed".into()))?)
            }
            "--pattern" => args.patterns.push(value()?),
            "--pipeline" => args.pipeline = true,
            "--trace" => {
                let v = value()?;
                args.trace = v
                    .parse()
                    .map_err(|_| CliError(format!("unknown trace level '{v}' (off|wave|task)")))?;
            }
            "--trace-out" => args.trace_out = Some(PathBuf::from(value()?)),
            "--metrics-addr" => args.metrics_addr = Some(value()?),
            "--metrics-interval" => {
                let d = parse_duration(&value()?)?;
                if d.is_zero() {
                    return Err(CliError("--metrics-interval must be positive".into()));
                }
                args.metrics_interval = Some(d);
            }
            "--diagnose" => args.diagnose = true,
            "--adaptive" => args.adaptive = true,
            "--governor-interval" => {
                let d = parse_duration(&value()?)?;
                if d.is_zero() {
                    return Err(CliError("--governor-interval must be positive".into()));
                }
                args.governor_interval = Some(d);
            }
            "--report-out" => args.report_out = Some(PathBuf::from(value()?)),
            "--k" => args.k = value()?.parse().map_err(|_| CliError("invalid k".into()))?,
            "--iters" => {
                args.iters = value()?.parse().map_err(|_| CliError("invalid iters".into()))?
            }
            other => return Err(CliError(format!("unknown flag '{other}'"))),
        }
    }
    if args.input.is_some() && args.generate.is_some() {
        return Err(CliError("--input and --generate are mutually exclusive".into()));
    }
    if args.input.is_none() && args.generate.is_none() {
        return Err(CliError("need --input PATH or --generate SIZE".into()));
    }
    if args.app == AppKind::Grep && args.patterns.is_empty() {
        return Err(CliError("grep needs at least one --pattern".into()));
    }
    if args.pipeline && args.app != AppKind::TeraSort {
        return Err(CliError(
            "--pipeline applies to terasort only (kmeans always runs as an iterative pipeline)"
                .into(),
        ));
    }
    // `--trace-out report.json` alone is a natural ask; record at wave
    // level rather than erroring (or silently writing an empty trace).
    if args.trace_out.is_some() && !args.trace.enabled() {
        args.trace = TraceLevel::Wave;
    }
    // Same spirit: a governor interval only makes sense adaptively.
    if args.governor_interval.is_some() {
        args.adaptive = true;
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("123").unwrap(), 123);
        assert_eq!(parse_size("64K").unwrap(), 64 * 1024);
        assert_eq!(parse_size("64M").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_size("2G").unwrap(), 2 * 1024 * 1024 * 1024);
        assert_eq!(parse_size("1T").unwrap(), 1024u64.pow(4));
        assert_eq!(parse_size("1.5M").unwrap(), 3 * 512 * 1024);
        assert_eq!(parse_size(" 8k ").unwrap(), 8 * 1024, "whitespace and lowercase suffixes");
        assert!(parse_size("abc").is_err());
        assert!(parse_size("-5M").is_err());
    }

    #[test]
    fn size_whole_numbers_parse_exactly() {
        // f64 cannot represent u64::MAX; the integer path must.
        assert_eq!(parse_size("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(parse_size("9007199254740993").unwrap(), 9007199254740993);
    }

    #[test]
    fn size_overflow_is_an_error_not_a_wrap() {
        assert!(parse_size("18446744073709551616").is_err(), "u64::MAX + 1");
        assert!(parse_size("99999999999G").is_err());
        assert!(parse_size("20000000000000000000.5").is_err());
        assert!(parse_size("1e300").is_err());
    }

    #[test]
    fn size_rejects_degenerate_inputs() {
        assert!(parse_size("").is_err());
        assert!(parse_size("K").is_err(), "suffix with no magnitude");
        assert!(parse_size(" M ").is_err());
        assert!(parse_size("nan").is_err());
        assert!(parse_size("inf").is_err());
        assert!(parse_size("infG").is_err());
    }

    #[test]
    fn minimal_invocation() {
        let a = parse_args(&argv("wordcount --generate 1M")).unwrap();
        assert_eq!(a.app, AppKind::WordCount);
        assert_eq!(a.generate, Some(1024 * 1024));
        assert_eq!(a.chunking, ChunkingSpec::None);
        assert_eq!(a.merge, None);
        assert_eq!(a.prefetch, 1);
        assert_eq!(a.pool, PoolSpec::Wave);
    }

    #[test]
    fn full_invocation() {
        let a = parse_args(&argv(
            "terasort --generate 8M --chunking inter:512K --merge pway:8 \
             --workers 4 --split 128K --prefetch 2 --throttle 24M --top 5 --seed 7 \
             --hash-seed 99",
        ))
        .unwrap();
        assert_eq!(a.app, AppKind::TeraSort);
        assert_eq!(a.chunking, ChunkingSpec::Inter(512 * 1024));
        assert_eq!(a.merge, Some(MergeSpec::PWay(8)));
        assert_eq!(a.workers, Some(4));
        assert_eq!(a.split_bytes, 128 * 1024);
        assert_eq!(a.prefetch, 2);
        assert_eq!(a.throttle, Some(24.0 * 1024.0 * 1024.0));
        assert_eq!(a.top, 5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.hash_seed, Some(99));
    }

    #[test]
    fn hash_seed_defaults_to_random() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert_eq!(a.hash_seed, None);
        assert!(parse_args(&argv("wc --generate 1K --hash-seed nope")).is_err());
    }

    #[test]
    fn chunking_specs() {
        assert_eq!(
            parse_args(&argv("wc --generate 1K --chunking intra:4")).unwrap().chunking,
            ChunkingSpec::Intra(4)
        );
        assert_eq!(
            parse_args(&argv("wc --generate 1K --chunking hybrid:2M")).unwrap().chunking,
            ChunkingSpec::Hybrid(2 * 1024 * 1024)
        );
        assert_eq!(
            parse_args(&argv("wc --generate 1K --chunking adaptive")).unwrap().chunking,
            ChunkingSpec::Adaptive
        );
        assert!(parse_args(&argv("wc --generate 1K --chunking bogus:1")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --chunking inter")).is_err());
    }

    #[test]
    fn merge_specs() {
        assert_eq!(
            parse_args(&argv("wc --generate 1K --merge pairwise")).unwrap().merge,
            Some(MergeSpec::Pairwise)
        );
        assert_eq!(
            parse_args(&argv("wc --generate 1K --merge pway")).unwrap().merge,
            Some(MergeSpec::PWay(4))
        );
        assert!(parse_args(&argv("wc --generate 1K --merge sideways")).is_err());
    }

    #[test]
    fn pool_specs() {
        assert_eq!(
            parse_args(&argv("wc --generate 1K --pool persistent")).unwrap().pool,
            PoolSpec::Persistent
        );
        assert_eq!(
            parse_args(&argv("wc --generate 1K --pool pooled")).unwrap().pool,
            PoolSpec::Persistent
        );
        assert_eq!(
            parse_args(&argv("wc --generate 1K --pool wave-per-round")).unwrap().pool,
            PoolSpec::Wave
        );
        assert!(parse_args(&argv("wc --generate 1K --pool forever")).is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("unknownapp --generate 1K")).is_err());
        assert!(parse_args(&argv("wc")).is_err(), "needs input or generate");
        assert!(parse_args(&argv("wc --input a --generate 1K")).is_err());
        assert!(parse_args(&argv("grep --generate 1K")).is_err(), "grep needs patterns");
        assert!(parse_args(&argv("wc --generate")).is_err(), "missing value");
        assert!(parse_args(&argv("wc --generate 1K --bogus 3")).is_err());
    }

    #[test]
    fn trace_flags() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert_eq!(a.trace, TraceLevel::Off);
        assert_eq!(a.trace_out, None);

        let a = parse_args(&argv("wc --generate 1K --trace task")).unwrap();
        assert_eq!(a.trace, TraceLevel::Task);

        let a = parse_args(&argv("wc --generate 1K --trace wave --trace-out t.json")).unwrap();
        assert_eq!(a.trace, TraceLevel::Wave);
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));

        // --trace-out alone implies wave-level tracing.
        let a = parse_args(&argv("wc --generate 1K --trace-out t.jsonl")).unwrap();
        assert_eq!(a.trace, TraceLevel::Wave);

        // --trace off --trace-out still gets upgraded (never write empty).
        let a = parse_args(&argv("wc --generate 1K --trace off --trace-out t.txt")).unwrap();
        assert_eq!(a.trace, TraceLevel::Wave);

        assert!(parse_args(&argv("wc --generate 1K --trace verbose")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --trace")).is_err());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1.5").unwrap(), Duration::from_millis(1500));
        assert!(parse_duration("soon").is_err());
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn metrics_flags() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert_eq!(a.metrics_addr, None);
        assert_eq!(a.metrics_interval, None);

        let a = parse_args(&argv(
            "wc --generate 1K --metrics-addr 127.0.0.1:9400 --metrics-interval 250ms",
        ))
        .unwrap();
        assert_eq!(a.metrics_addr.as_deref(), Some("127.0.0.1:9400"));
        assert_eq!(a.metrics_interval, Some(Duration::from_millis(250)));

        assert!(parse_args(&argv("wc --generate 1K --metrics-interval 0")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --metrics-addr")).is_err());
    }

    #[test]
    fn diagnose_flag() {
        assert!(!parse_args(&argv("wc --generate 1K")).unwrap().diagnose);
        assert!(parse_args(&argv("wc --generate 1K --diagnose")).unwrap().diagnose);
    }

    #[test]
    fn adaptive_flags() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert!(!a.adaptive);
        assert_eq!(a.governor_interval, None);

        let a = parse_args(&argv("wc --generate 1K --adaptive")).unwrap();
        assert!(a.adaptive);
        assert_eq!(a.governor_interval, None, "runtime default interval");

        let a = parse_args(&argv("wc --generate 1K --adaptive --governor-interval 20ms")).unwrap();
        assert_eq!(a.governor_interval, Some(Duration::from_millis(20)));

        // An interval alone implies --adaptive.
        let a = parse_args(&argv("wc --generate 1K --governor-interval 20ms")).unwrap();
        assert!(a.adaptive);

        assert!(parse_args(&argv("wc --generate 1K --governor-interval 0")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --governor-interval soon")).is_err());
    }

    #[test]
    fn report_out_flag() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert_eq!(a.report_out, None);
        let a = parse_args(&argv("wc --generate 1K --report-out report.json")).unwrap();
        assert_eq!(a.report_out, Some(PathBuf::from("report.json")));
        assert!(parse_args(&argv("wc --generate 1K --report-out")).is_err());
    }

    #[test]
    fn spill_flags() {
        let a = parse_args(&argv("wc --generate 1K")).unwrap();
        assert_eq!(a.memory_budget, None);
        assert_eq!(a.spill_dir, None);

        let a = parse_args(&argv("wc --generate 1K --memory-budget 256M --spill-dir /tmp/spills"))
            .unwrap();
        assert_eq!(a.memory_budget, Some(256 * 1024 * 1024));
        assert_eq!(a.spill_dir, Some(PathBuf::from("/tmp/spills")));

        assert!(parse_args(&argv("wc --generate 1K --memory-budget 0")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --memory-budget lots")).is_err());
        assert!(parse_args(&argv("wc --generate 1K --memory-budget")).is_err());
    }

    #[test]
    fn pipeline_flag_is_terasort_only() {
        let a = parse_args(&argv("terasort --generate 1K --pipeline")).unwrap();
        assert!(a.pipeline);
        assert!(!parse_args(&argv("terasort --generate 1K")).unwrap().pipeline);
        assert!(parse_args(&argv("wc --generate 1K --pipeline")).is_err());
    }

    #[test]
    fn grep_patterns_accumulate() {
        let a = parse_args(&argv("grep --generate 1K --pattern foo --pattern bar")).unwrap();
        assert_eq!(a.patterns, vec!["foo", "bar"]);
    }
}
