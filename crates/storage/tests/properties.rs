//! Property tests for the storage substrate: split-point adjustment must
//! partition inputs without losing or duplicating bytes, boundaries must
//! be genuine record boundaries, and the token bucket must never exceed
//! its configured rate.

use proptest::collection::vec;
use proptest::prelude::*;
use supmr_storage::scan::{self, ByteClass};
use supmr_storage::throttle::BucketState;
use supmr_storage::{MemSource, RecordFormat, SourceExt};

/// Text made of small records with the given terminator.
fn text_with_terminator(term: &'static str) -> impl Strategy<Value = Vec<u8>> {
    vec(vec(b'a'..=b'z', 0..12), 0..60).prop_map(move |words| {
        let mut out = Vec::new();
        for w in words {
            out.extend_from_slice(&w);
            out.extend_from_slice(term.as_bytes());
        }
        out
    })
}

proptest! {
    #[test]
    fn newline_adjustment_lands_on_boundaries(
        data in text_with_terminator("\n"),
        want_frac in 0.0f64..=1.0,
    ) {
        let want = ((data.len() as f64) * want_frac) as usize;
        let adjusted = RecordFormat::Newline.adjust_split_point(&data, want);
        prop_assert!(adjusted >= want);
        prop_assert!(RecordFormat::Newline.is_boundary(&data, adjusted));
    }

    #[test]
    fn crlf_adjustment_lands_on_boundaries(
        data in text_with_terminator("\r\n"),
        want_frac in 0.0f64..=1.0,
    ) {
        let want = ((data.len() as f64) * want_frac) as usize;
        let adjusted = RecordFormat::CrLf.adjust_split_point(&data, want);
        prop_assert!(adjusted >= want);
        prop_assert!(RecordFormat::CrLf.is_boundary(&data, adjusted));
    }

    #[test]
    fn chunking_by_adjusted_splits_is_a_partition(
        data in text_with_terminator("\n"),
        chunk_size in 1usize..64,
    ) {
        // Walk the input in chunk_size strides with boundary adjustment;
        // the concatenation of chunks must equal the input and every cut
        // must be a boundary.
        let f = RecordFormat::Newline;
        let mut pos = 0;
        let mut rebuilt = Vec::new();
        while pos < data.len() {
            let want = (pos + chunk_size).min(data.len());
            let end = f.adjust_split_point(&data, want);
            prop_assert!(end > pos, "chunking must make progress");
            prop_assert!(f.is_boundary(&data, end));
            rebuilt.extend_from_slice(&data[pos..end]);
            pos = end;
        }
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn record_iteration_is_lossless(
        data in text_with_terminator("\n"),
    ) {
        let mut rebuilt = Vec::new();
        for rec in RecordFormat::Newline.records(&data) {
            prop_assert!(!rec.is_empty());
            rebuilt.extend_from_slice(rec);
        }
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn fixed_width_records_have_uniform_length(
        n in 0usize..500,
        w in 1usize..17,
    ) {
        let data = vec![0xABu8; n];
        let recs: Vec<&[u8]> = RecordFormat::FixedWidth(w).records(&data).collect();
        for (i, r) in recs.iter().enumerate() {
            if i + 1 < recs.len() {
                prop_assert_eq!(r.len(), w);
            } else {
                prop_assert!(r.len() <= w && !r.is_empty());
            }
        }
        prop_assert_eq!(recs.iter().map(|r| r.len()).sum::<usize>(), n);
    }

    #[test]
    fn mem_source_range_reads_agree_with_slicing(
        data in vec(any::<u8>(), 0..2000),
        start in 0u64..2500,
        len in 0usize..2500,
    ) {
        let mut src = MemSource::from(data.clone());
        let got = src.read_range(start, len).unwrap();
        let s = (start as usize).min(data.len());
        let e = (s + len).min(data.len());
        prop_assert_eq!(got, data[s..e].to_vec());
    }

    #[test]
    fn swar_find_byte_matches_scalar_search(
        data in vec(any::<u8>(), 0..300),
        needle in any::<u8>(),
    ) {
        prop_assert_eq!(
            scan::find_byte(&data, needle),
            data.iter().position(|&b| b == needle)
        );
    }

    #[test]
    fn swar_find_crlf_matches_scalar_search(
        data in vec(prop_oneof![Just(b'\r'), Just(b'\n'), Just(b'x')], 0..300),
    ) {
        prop_assert_eq!(
            scan::find_crlf(&data),
            data.windows(2).position(|w| w == b"\r\n")
        );
    }

    #[test]
    fn swar_class_scans_match_scalar_search(
        data in vec(any::<u8>(), 0..300),
        from in 0usize..320,
        word in any::<bool>(),
    ) {
        let class = if word { ByteClass::Word } else { ByteClass::Alnum };
        let from = from.min(data.len());
        let scalar_member = (from..data.len()).find(|&i| class.contains(data[i]));
        prop_assert_eq!(scan::find_member(&data, from, class), scalar_member);
        let scalar_non = (from..data.len())
            .find(|&i| !class.contains(data[i]))
            .unwrap_or(data.len());
        prop_assert_eq!(scan::find_non_member(&data, from, class), scalar_non);
    }

    #[test]
    fn swar_tokens_match_scalar_tokenizer(
        data in vec(any::<u8>(), 0..400),
        word in any::<bool>(),
    ) {
        let class = if word { ByteClass::Word } else { ByteClass::Alnum };
        // Scalar reference: maximal runs of class members, in order.
        let mut scalar: Vec<&[u8]> = Vec::new();
        let mut start = None;
        for (i, &b) in data.iter().enumerate() {
            if class.contains(b) {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                scalar.push(&data[s..i]);
            }
        }
        if let Some(s) = start {
            scalar.push(&data[s..]);
        }
        let swar: Vec<&[u8]> = scan::tokens(&data, class).collect();
        prop_assert_eq!(swar, scalar);
    }

    #[test]
    fn swar_case_fold_matches_scalar_fold(
        data in vec(any::<u8>(), 0..300),
    ) {
        let mut folded = Vec::new();
        scan::push_ascii_lower(&data, &mut folded);
        let scalar: Vec<u8> = data.iter().map(|b| b.to_ascii_lowercase()).collect();
        prop_assert_eq!(folded, scalar);
    }

    #[test]
    fn token_bucket_never_exceeds_rate_plus_burst(
        rate in 10.0f64..1e6,
        burst in 10.0f64..1e5,
        requests in vec((0u64..100_000, 0u64..1_000_000_000u64), 1..50),
    ) {
        // Feed monotone timestamps; total granted by time T must be
        // <= burst + rate * T (the token-bucket contract).
        let mut b = BucketState::new(rate, burst, 0);
        let mut t = 0u64;
        let mut granted = 0u64;
        for (want, dt) in requests {
            t += dt;
            granted += b.take(want, t);
            let elapsed_secs = t as f64 / 1e9;
            let ceiling = burst + rate * elapsed_secs + 1.0;
            prop_assert!(
                (granted as f64) <= ceiling,
                "granted {} > ceiling {} at t={}s", granted, ceiling, elapsed_secs
            );
        }
    }

    #[test]
    fn token_bucket_eventually_grants_everything(
        rate in 100.0f64..1e6,
        want in 1u64..10_000,
    ) {
        let mut b = BucketState::new(rate, rate.max(64.0), 0);
        let mut granted = 0u64;
        let mut t = 0u64;
        let mut iterations = 0;
        while granted < want {
            granted += b.take(want - granted, t);
            t += 1_000_000_000; // 1 virtual second per retry
            iterations += 1;
            prop_assert!(iterations < 100_000, "bucket starved");
        }
        prop_assert_eq!(granted, want);
    }
}
