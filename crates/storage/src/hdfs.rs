//! A simulated HDFS: many datanodes behind one rate-limited link.
//!
//! The paper's case study (§VI-C, Fig. 7) runs the scale-up computation
//! against a 32-node HDFS "connected with 1Gbit ethernet behind one link",
//! ingesting 30GB with `libhdfs`. The physics of that setup: each
//! datanode's disks are individually fast enough, but every byte crosses
//! the single shared link, so ingest bandwidth is pinned at ~125 MB/s no
//! matter how parallel the node reads are.
//!
//! [`HdfsSource`] reproduces exactly that: a logical file striped
//! block-round-robin over N datanodes, each node paced by its own disk
//! bucket, all bytes additionally paced by one shared link bucket. When
//! the link is the bottleneck (the paper's regime) the series pacing is
//! within a node-share of the true min(disk aggregate, link) rate.

use crate::source::DataSource;
use crate::throttle::TokenBucket;
use std::io;

/// Configuration of the simulated HDFS cluster.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Number of datanodes holding blocks.
    pub datanodes: usize,
    /// Per-datanode disk bandwidth in bytes/second.
    pub node_disk_rate: f64,
    /// Shared front-link bandwidth in bytes/second (1GbE ≈ 125 MB/s).
    pub link_rate: f64,
    /// HDFS block size in bytes (64MB in the paper's era).
    pub block_size: u64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            datanodes: 32,
            node_disk_rate: 100.0 * 1024.0 * 1024.0,
            link_rate: 125.0 * 1024.0 * 1024.0,
            block_size: 64 * 1024 * 1024,
        }
    }
}

impl HdfsConfig {
    fn validate(&self) {
        assert!(self.datanodes > 0, "need at least one datanode");
        assert!(self.block_size > 0, "block size must be non-zero");
        assert!(self.node_disk_rate > 0.0, "node disk rate must be positive");
        assert!(self.link_rate > 0.0, "link rate must be positive");
    }
}

/// A [`DataSource`] served by a simulated HDFS cluster. The logical
/// content comes from `backing`; the cluster adds placement and pacing.
#[derive(Debug)]
pub struct HdfsSource<S> {
    backing: S,
    config: HdfsConfig,
    node_buckets: Vec<TokenBucket>,
    link_bucket: TokenBucket,
}

impl<S: DataSource> HdfsSource<S> {
    /// Stripe `backing` across the cluster described by `config`.
    ///
    /// # Panics
    /// Panics if the config is invalid (zero nodes/rates/block size).
    pub fn new(backing: S, config: HdfsConfig) -> HdfsSource<S> {
        config.validate();
        let node_buckets =
            (0..config.datanodes).map(|_| TokenBucket::new(config.node_disk_rate)).collect();
        let link_bucket = TokenBucket::new(config.link_rate);
        HdfsSource { backing, config, node_buckets, link_bucket }
    }

    /// Which datanode serves the block containing `offset` (round-robin
    /// placement, the HDFS default for a write pipeline from one client).
    pub fn node_for_offset(&self, offset: u64) -> usize {
        ((offset / self.config.block_size) % self.config.datanodes as u64) as usize
    }

    /// The cluster configuration.
    pub fn config(&self) -> &HdfsConfig {
        &self.config
    }

    /// Effective sustained ingest bandwidth in bytes/second: the link in
    /// series with the client's share of node disks.
    pub fn effective_rate(&self) -> f64 {
        let aggregate_disks = self.config.node_disk_rate * self.config.datanodes as f64;
        1.0 / (1.0 / self.config.link_rate + 1.0 / aggregate_disks)
    }
}

impl<S: DataSource> DataSource for HdfsSource<S> {
    fn len(&self) -> u64 {
        self.backing.len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if offset >= self.len() {
            return Ok(0);
        }
        // Never read past the end of the current block: each block lives
        // on one node and is paced by that node's disk.
        let block_end = (offset / self.config.block_size + 1) * self.config.block_size;
        let max = (block_end - offset).min(buf.len() as u64) as usize;
        let n = self.backing.read_at(offset, &mut buf[..max])?;
        if n > 0 {
            let node = self.node_for_offset(offset);
            self.node_buckets[node].acquire(n as u64);
            self.link_bucket.acquire(n as u64);
        }
        Ok(n)
    }

    fn describe(&self) -> String {
        format!(
            "hdfs-sim ({} nodes, {:.0} MB/s link, {} MB blocks, {} bytes)",
            self.config.datanodes,
            self.config.link_rate / (1024.0 * 1024.0),
            self.config.block_size / (1024 * 1024),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{MemSource, SourceExt};
    use std::time::Instant;

    fn fast_config(nodes: usize, block: u64) -> HdfsConfig {
        HdfsConfig { datanodes: nodes, node_disk_rate: 1e12, link_rate: 1e12, block_size: block }
    }

    #[test]
    fn placement_is_block_round_robin() {
        let src = HdfsSource::new(MemSource::from(vec![0u8; 1000]), fast_config(4, 100));
        assert_eq!(src.node_for_offset(0), 0);
        assert_eq!(src.node_for_offset(99), 0);
        assert_eq!(src.node_for_offset(100), 1);
        assert_eq!(src.node_for_offset(399), 3);
        assert_eq!(src.node_for_offset(400), 0);
    }

    #[test]
    fn contents_survive_striping() {
        let data: Vec<u8> = (0..5_000u32).map(|x| (x % 251) as u8).collect();
        let mut src = HdfsSource::new(MemSource::from(data.clone()), fast_config(3, 64));
        assert_eq!(src.read_all().unwrap(), data);
        // Range reads crossing block boundaries.
        assert_eq!(src.read_range(60, 10).unwrap(), data[60..70].to_vec());
    }

    #[test]
    fn reads_never_cross_block_boundaries() {
        let mut src = HdfsSource::new(MemSource::from(vec![7u8; 500]), fast_config(2, 100));
        let mut buf = [0u8; 250];
        let n = src.read_at(50, &mut buf).unwrap();
        assert_eq!(n, 50, "read should stop at the block edge");
    }

    #[test]
    fn link_bottleneck_paces_ingest() {
        // Fast disks, slow link: the paper's regime.
        let config = HdfsConfig {
            datanodes: 8,
            node_disk_rate: 1e12,
            link_rate: 1_000_000.0, // 1 MB/s
            block_size: 16 * 1024,
        };
        let mut src = HdfsSource::new(MemSource::from(vec![1u8; 220_000]), config);
        let t0 = Instant::now();
        src.read_all().unwrap();
        let dt = t0.elapsed().as_secs_f64();
        // 220KB minus ~100KB of burst at 1MB/s: at least ~0.1s.
        assert!(dt >= 0.09, "ingest took {dt}s, expected link pacing");
    }

    #[test]
    fn effective_rate_is_harmonic_series() {
        let config = HdfsConfig {
            datanodes: 32,
            node_disk_rate: 100.0e6,
            link_rate: 125.0e6,
            block_size: 64 * 1024 * 1024,
        };
        let src = HdfsSource::new(MemSource::from(vec![0u8; 10]), config);
        let eff = src.effective_rate();
        assert!(eff < 125.0e6);
        assert!(eff > 119.0e6); // 1/(1/125e6 + 1/3200e6) ≈ 120.3e6
    }

    #[test]
    fn describe_mentions_cluster_shape() {
        let src = HdfsSource::new(MemSource::from(vec![0u8; 10]), HdfsConfig::default());
        let d = src.describe();
        assert!(d.contains("32 nodes"));
        assert!(d.contains("link"));
    }

    #[test]
    #[should_panic(expected = "at least one datanode")]
    fn zero_nodes_rejected() {
        HdfsSource::new(MemSource::from(vec![]), HdfsConfig { datanodes: 0, ..fast_config(1, 1) });
    }

    #[test]
    fn read_past_eof_is_empty() {
        let mut src = HdfsSource::new(MemSource::from(vec![0u8; 10]), fast_config(2, 4));
        let mut buf = [0u8; 8];
        assert_eq!(src.read_at(10, &mut buf).unwrap(), 0);
        assert_eq!(src.read_at(100, &mut buf).unwrap(), 0);
    }
}
