//! Shared immutable byte buffers.
//!
//! [`SharedBytes`] is the currency of the zero-copy ingest path: one
//! reference-counted allocation (`Arc<[u8]>`) with a window onto it.
//! The ingest thread seals a chunk's bytes into a `SharedBytes` once;
//! the chunker, the feedback path, and every map split then hold cheap
//! clones (an `Arc` bump plus two indices) of the same allocation
//! instead of copying the payload per consumer.
//!
//! Windows never re-slice the underlying storage: [`SharedBytes::slice`]
//! produces a narrower view of the *same* allocation, so a resident
//! source can hand out per-chunk views of one file-sized buffer.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, cheaply-cloneable view into a shared byte buffer.
///
/// Dereferences to `[u8]`, so all slice methods and indexing work
/// directly on it. Cloning copies two `usize`s and bumps a refcount;
/// the payload is never duplicated.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl SharedBytes {
    /// An empty buffer (no allocation is shared).
    pub fn empty() -> Self {
        SharedBytes { buf: Arc::from([]), start: 0, end: 0 }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Copy the viewed bytes into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A narrower view of the same allocation. `range` is relative to
    /// this view. No bytes are copied.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds or inverted.
    pub fn slice(&self, range: Range<usize>) -> SharedBytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds for SharedBytes of length {}",
            range.start,
            range.end,
            self.len()
        );
        SharedBytes {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Number of views (including this one) sharing the allocation.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        SharedBytes::empty()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    /// Seal an owned vector into a shared buffer (one final copy into
    /// the `Arc` allocation; every subsequent clone is free).
    fn from(v: Vec<u8>) -> Self {
        let buf: Arc<[u8]> = Arc::from(v);
        let end = buf.len();
        SharedBytes { buf, start: 0, end }
    }
}

impl From<Arc<[u8]>> for SharedBytes {
    fn from(buf: Arc<[u8]>) -> Self {
        let end = buf.len();
        SharedBytes { buf, start: 0, end }
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(s: &[u8]) -> Self {
        SharedBytes::from(s.to_vec())
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len())
            .field("data", &self.as_slice())
            .finish()
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for SharedBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for SharedBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other as &[u8]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other as &[u8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_one_allocation() {
        let whole = SharedBytes::from(b"hello world".to_vec());
        let hello = whole.slice(0..5);
        let world = whole.slice(6..11);
        assert_eq!(hello, b"hello");
        assert_eq!(world, b"world");
        // Three views, one allocation.
        assert_eq!(whole.ref_count(), 3);
    }

    #[test]
    fn nested_slices_stay_relative() {
        let whole = SharedBytes::from(b"abcdefgh".to_vec());
        let mid = whole.slice(2..6); // "cdef"
        let inner = mid.slice(1..3); // "de"
        assert_eq!(inner, b"de");
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn deref_gives_slice_methods_and_indexing() {
        let b = SharedBytes::from(b"line\n".to_vec());
        assert_eq!(b.last(), Some(&b'\n'));
        assert!(b.ends_with(b"e\n"));
        assert_eq!(&b[0..4], b"line");
        assert_eq!(b.iter().filter(|&&c| c == b'n').count(), 1);
    }

    #[test]
    fn equality_crosses_representations() {
        let b = SharedBytes::from(b"xy".to_vec());
        assert_eq!(b, b"xy".to_vec());
        assert_eq!(b, b"xy");
        assert_eq!(b, *b"xy");
        assert_eq!(b, SharedBytes::from(b"xy".to_vec()));
        assert_ne!(b, SharedBytes::from(b"xz".to_vec()));
    }

    #[test]
    fn empty_views() {
        let e = SharedBytes::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let whole = SharedBytes::from(b"ab".to_vec());
        assert!(whole.slice(1..1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        let b = SharedBytes::from(b"ab".to_vec());
        let _ = b.slice(0..3);
    }
}
