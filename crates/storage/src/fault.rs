//! Fault injection for storage paths.
//!
//! Production ingest deals with devices that fail mid-stream. These
//! decorators inject deterministic failures so the runtime's error
//! propagation (pipeline threads, buffered prefetch, partial chunks)
//! can be tested: a [`FaultySource`] fails every read at or beyond a
//! byte offset; a [`FaultyFileSet`] fails reads of a specific file.

use crate::source::{DataSource, FileSet};
use std::io;

/// A [`DataSource`] that fails all reads touching `fail_at` or beyond.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    fail_at: u64,
    kind: io::ErrorKind,
}

impl<S: DataSource> FaultySource<S> {
    /// Fail reads at or beyond byte `fail_at` with `kind`.
    pub fn new(inner: S, fail_at: u64, kind: io::ErrorKind) -> Self {
        FaultySource { inner, fail_at, kind }
    }

    fn error(&self) -> io::Error {
        io::Error::new(self.kind, format!("injected fault at byte {}", self.fail_at))
    }
}

impl<S: DataSource> DataSource for FaultySource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if offset + buf.len() as u64 > self.fail_at {
            return Err(self.error());
        }
        self.inner.read_at(offset, buf)
    }

    fn describe(&self) -> String {
        format!("{} (faulty at {})", self.inner.describe(), self.fail_at)
    }
}

/// A [`FileSet`] whose `fail_file`-th file cannot be read.
#[derive(Debug)]
pub struct FaultyFileSet<F> {
    inner: F,
    fail_file: usize,
    kind: io::ErrorKind,
}

impl<F: FileSet> FaultyFileSet<F> {
    /// Fail reads of file index `fail_file` with `kind`.
    pub fn new(inner: F, fail_file: usize, kind: io::ErrorKind) -> Self {
        FaultyFileSet { inner, fail_file, kind }
    }
}

impl<F: FileSet> FileSet for FaultyFileSet<F> {
    fn file_count(&self) -> usize {
        self.inner.file_count()
    }

    fn file_len(&self, idx: usize) -> u64 {
        self.inner.file_len(idx)
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        if idx == self.fail_file {
            return Err(io::Error::new(self.kind, format!("injected fault reading file {idx}")));
        }
        self.inner.read_file(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{MemFileSet, MemSource, SourceExt};

    #[test]
    fn reads_below_the_fault_succeed() {
        let mut s = FaultySource::new(
            MemSource::from((0u8..100).collect::<Vec<u8>>()),
            50,
            io::ErrorKind::BrokenPipe,
        );
        assert_eq!(s.read_range(0, 50).unwrap().len(), 50);
        assert_eq!(s.len(), 100);
        assert!(s.describe().contains("faulty"));
    }

    #[test]
    fn reads_across_the_fault_fail() {
        let mut s =
            FaultySource::new(MemSource::from(vec![0u8; 100]), 50, io::ErrorKind::BrokenPipe);
        let err = s.read_range(40, 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.read_all().is_err());
    }

    #[test]
    fn faulty_fileset_fails_only_the_marked_file() {
        let mut fs = FaultyFileSet::new(
            MemFileSet::new(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]),
            1,
            io::ErrorKind::PermissionDenied,
        );
        assert_eq!(fs.read_file(0).unwrap(), b"a");
        assert_eq!(fs.read_file(1).unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(fs.read_file(2).unwrap(), b"c");
        assert_eq!(fs.file_count(), 3);
        assert_eq!(fs.file_len(1), 1);
    }
}
