//! Data sources for the SupMR ingest phase.
//!
//! The paper's ingest bottleneck exists because primary storage is slower
//! than the compute fabric: a 3-disk RAID-0 topping out at 384 MB/s, or a
//! 32-node HDFS behind a single 1GbE link. This crate provides the storage
//! abstraction the runtime ingests from, plus implementations that
//! reproduce those environments on commodity hardware:
//!
//! * [`source::DataSource`] — byte-addressed sequential input (one large
//!   file — Terasort-style).
//! * [`source::FileSet`] — a collection of small files (word-count-style),
//!   the unit of intra-file chunking.
//! * [`record::RecordFormat`] — how records terminate, so inter-file
//!   chunking can adjust split points to record boundaries.
//! * [`throttle`] — a token-bucket rate limiter and throttled source
//!   wrappers that emulate a bounded-bandwidth device (the RAID-0) with
//!   real wall-clock pacing.
//! * [`hdfs`] — a simulated scale-out store: N datanodes with per-node
//!   disk bandwidth behind one shared, rate-limited link (the Fig. 7
//!   case study).
//! * [`observe`] — metered source wrappers ([`IngestMeter`]) that count
//!   bytes, reads, and time spent inside the storage layer, the
//!   ingest-side complement of the runtime's event tracer.
//! * [`spill`] — named run stores for the runtime's out-of-core spill
//!   pipeline, stackable with the same throttle/observe/fault
//!   decorators so spilled runs share the simulated device.

//! ```
//! use supmr_storage::{DataSource, MemSource, SourceExt, ThrottledSource};
//!
//! // A 1KB in-memory input served through a paced "device".
//! let mut src = ThrottledSource::new(
//!     MemSource::from(vec![7u8; 1024]),
//!     64.0 * 1024.0 * 1024.0, // 64 MiB/s
//! );
//! assert_eq!(src.len(), 1024);
//! assert_eq!(src.read_range(100, 24).unwrap(), vec![7u8; 24]);
//! ```

pub mod fault;
pub mod hdfs;
pub mod observe;
pub mod record;
pub mod scan;
pub mod shared;
pub mod source;
pub mod spill;
pub mod throttle;

pub use fault::{FaultyFileSet, FaultySource};
pub use hdfs::{HdfsConfig, HdfsSource};
pub use observe::{IngestMeter, ObservedFileSet, ObservedSource};
pub use record::RecordFormat;
pub use scan::{find_byte, find_crlf, ByteClass};
pub use shared::SharedBytes;
pub use source::{
    CachedSource, DataSource, DirFileSet, FileSet, FileSource, MemFileSet, MemSource, SourceExt,
};
pub use spill::{
    DiskRunStore, FaultyRunStore, MemRunStore, ObservedRunStore, RunGuard, RunStore,
    ThrottledRunStore,
};
pub use throttle::{ThrottledFileSet, ThrottledSource, TokenBucket};
