//! Bandwidth throttling: emulating a slow device on fast hardware.
//!
//! Real-execution experiments need to reproduce the paper's storage
//! environment — a 3-disk RAID-0 capped at 384 MB/s — on machines whose
//! page cache would otherwise serve the scaled-down inputs at tens of
//! GB/s. [`TokenBucket`] implements the standard rate limiter and
//! [`ThrottledSource`]/[`ThrottledFileSet`] wrap any source with it, so an
//! ingest of B bytes takes ≈ B/rate wall-clock seconds and genuinely
//! overlaps with computation the way a slow device does.
//!
//! The bucket's arithmetic is a pure state machine over nanosecond
//! timestamps ([`BucketState`]) so its invariants are unit- and
//! property-testable without sleeping; the blocking wrapper adds real
//! time.

use crate::source::{DataSource, FileSet};
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pure token-bucket arithmetic over a nanosecond clock.
///
/// Tokens are bytes. The bucket refills continuously at `rate` bytes/sec
/// up to `burst` bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketState {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    available: f64,
    last_refill_nanos: u64,
}

impl BucketState {
    /// New bucket, full at time `now_nanos`.
    ///
    /// # Panics
    /// Panics if `rate` or `burst` is not positive and finite.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64, now_nanos: u64) -> BucketState {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "rate must be positive"
        );
        assert!(burst_bytes.is_finite() && burst_bytes > 0.0, "burst must be positive");
        BucketState {
            rate_bytes_per_sec,
            burst_bytes,
            available: burst_bytes,
            last_refill_nanos: now_nanos,
        }
    }

    /// Refill for elapsed time. Clock must be monotone; earlier timestamps
    /// are ignored.
    pub fn refill(&mut self, now_nanos: u64) {
        if now_nanos <= self.last_refill_nanos {
            return;
        }
        let dt = (now_nanos - self.last_refill_nanos) as f64 / 1e9;
        self.available = (self.available + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        self.last_refill_nanos = now_nanos;
    }

    /// Take up to `want` tokens; returns how many were granted (possibly
    /// zero). Partial grants let large reads stream at the configured
    /// rate instead of stalling for one huge refill.
    pub fn take(&mut self, want: u64, now_nanos: u64) -> u64 {
        self.refill(now_nanos);
        let granted = (self.available.floor() as u64).min(want);
        self.available -= granted as f64;
        granted
    }

    /// Time until at least `want.min(burst)` tokens will be available.
    pub fn time_until_available(&self, want: u64) -> Duration {
        let want = (want as f64).min(self.burst_bytes);
        let deficit = want - self.available;
        if deficit <= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(deficit / self.rate_bytes_per_sec)
        }
    }

    /// Currently available tokens (whole bytes).
    pub fn available(&self) -> u64 {
        self.available.max(0.0) as u64
    }

    /// Configured rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_sec
    }
}

/// A thread-safe, blocking token bucket over the wall clock.
///
/// Cloning shares the underlying bucket, so several sources can contend
/// for the same device bandwidth (e.g. 32 HDFS datanode streams behind one
/// 1GbE link).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    state: Arc<Mutex<BucketState>>,
    epoch: Instant,
}

impl TokenBucket {
    /// A bucket that sustains `rate_bytes_per_sec` with a burst of one
    /// tenth of a second of traffic (min 64KiB) — small enough that pacing
    /// is smooth, large enough that syscall-sized reads don't thrash.
    pub fn new(rate_bytes_per_sec: f64) -> TokenBucket {
        let burst = (rate_bytes_per_sec / 10.0).max(64.0 * 1024.0);
        TokenBucket::with_burst(rate_bytes_per_sec, burst)
    }

    /// A bucket with an explicit burst size in bytes.
    pub fn with_burst(rate_bytes_per_sec: f64, burst_bytes: f64) -> TokenBucket {
        TokenBucket {
            state: Arc::new(Mutex::new(BucketState::new(rate_bytes_per_sec, burst_bytes, 0))),
            epoch: Instant::now(),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Block until `n` bytes of budget have been consumed.
    ///
    /// Sleeps for the computed refill time between grants rather than
    /// polling: a continuously-refilling bucket would otherwise hand out
    /// a few bytes every wake-up and turn "waiting for the disk" into a
    /// busy-spin — which would corrupt the CPU-utilization traces this
    /// throttle exists to make realistic.
    pub fn acquire(&self, mut n: u64) {
        while n > 0 {
            let (granted, wait) = {
                let mut st = self.state.lock();
                let got = st.take(n, self.now_nanos());
                let remaining = n - got;
                let wait =
                    if remaining > 0 { st.time_until_available(remaining) } else { Duration::ZERO };
                (got, wait)
            };
            n -= granted;
            if n > 0 {
                // Cap sleeps so wake-ups stay responsive for small
                // rates, and floor them so this never degrades into a
                // spin.
                std::thread::sleep(
                    wait.min(Duration::from_millis(50)).max(Duration::from_millis(1)),
                );
            }
        }
    }

    /// Non-blocking acquire of up to `n` bytes; returns bytes granted.
    pub fn try_acquire(&self, n: u64) -> u64 {
        self.state.lock().take(n, self.now_nanos())
    }

    /// Configured rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.state.lock().rate()
    }
}

/// A [`DataSource`] decorator that paces reads through a token bucket.
#[derive(Debug)]
pub struct ThrottledSource<S> {
    inner: S,
    bucket: TokenBucket,
}

impl<S: DataSource> ThrottledSource<S> {
    /// Pace `inner` at `rate_bytes_per_sec` with a private bucket.
    pub fn new(inner: S, rate_bytes_per_sec: f64) -> Self {
        Self::with_bucket(inner, TokenBucket::new(rate_bytes_per_sec))
    }

    /// Pace `inner` through a (possibly shared) bucket.
    pub fn with_bucket(inner: S, bucket: TokenBucket) -> Self {
        ThrottledSource { inner, bucket }
    }

    /// The shared bucket (clone to attach more sources to the same
    /// device).
    pub fn bucket(&self) -> &TokenBucket {
        &self.bucket
    }

    /// Unwrap the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: DataSource> DataSource for ThrottledSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read_at(offset, buf)?;
        self.bucket.acquire(n as u64);
        Ok(n)
    }

    fn describe(&self) -> String {
        format!("{} @ {:.1} MB/s", self.inner.describe(), self.bucket.rate() / (1024.0 * 1024.0))
    }
}

/// A [`FileSet`] decorator that paces whole-file reads through a token
/// bucket.
#[derive(Debug)]
pub struct ThrottledFileSet<F> {
    inner: F,
    bucket: TokenBucket,
}

impl<F: FileSet> ThrottledFileSet<F> {
    /// Pace `inner` at `rate_bytes_per_sec`.
    pub fn new(inner: F, rate_bytes_per_sec: f64) -> Self {
        Self::with_bucket(inner, TokenBucket::new(rate_bytes_per_sec))
    }

    /// Pace `inner` through a shared bucket.
    pub fn with_bucket(inner: F, bucket: TokenBucket) -> Self {
        ThrottledFileSet { inner, bucket }
    }
}

impl<F: FileSet> FileSet for ThrottledFileSet<F> {
    fn file_count(&self) -> usize {
        self.inner.file_count()
    }

    fn file_len(&self, idx: usize) -> u64 {
        self.inner.file_len(idx)
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        let data = self.inner.read_file(idx)?;
        self.bucket.acquire(data.len() as u64);
        Ok(data)
    }

    fn describe(&self) -> String {
        format!("{} @ {:.1} MB/s", self.inner.describe(), self.bucket.rate() / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{MemFileSet, MemSource, SourceExt};

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_state_starts_full_and_refills_to_burst() {
        let mut b = BucketState::new(1000.0, 500.0, 0);
        assert_eq!(b.available(), 500);
        assert_eq!(b.take(400, 0), 400);
        assert_eq!(b.available(), 100);
        // After 10 seconds it has refilled, but only to burst.
        b.refill(10 * SEC);
        assert_eq!(b.available(), 500);
    }

    #[test]
    fn bucket_state_grants_partially() {
        let mut b = BucketState::new(100.0, 100.0, 0);
        assert_eq!(b.take(250, 0), 100);
        assert_eq!(b.take(150, SEC), 100);
        assert_eq!(b.take(50, 2 * SEC - 1), 50); // 0.999…s refill covers it
        assert_eq!(b.available(), 49); // 99.99… − 50, floored
    }

    #[test]
    fn bucket_state_rate_is_respected_over_time() {
        // Draining continuously for 10 virtual seconds at rate R grants
        // at most burst + 10R bytes.
        let mut b = BucketState::new(1_000.0, 200.0, 0);
        let mut granted = 0;
        for t in 0..=10_000u64 {
            granted += b.take(u64::MAX, t * SEC / 1000);
        }
        assert!(granted <= 200 + 10_000 + 1, "granted {granted}");
        assert!(granted >= 10_000, "granted {granted}");
    }

    #[test]
    fn bucket_state_ignores_backwards_clock() {
        let mut b = BucketState::new(100.0, 100.0, SEC);
        b.take(100, SEC);
        b.refill(0); // earlier than last refill
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn time_until_available_caps_at_burst() {
        let b = {
            let mut b = BucketState::new(100.0, 50.0, 0);
            b.take(50, 0);
            b
        };
        // Wanting 1000 bytes > burst: wait only until burst is full.
        assert!((b.time_until_available(1000).as_secs_f64() - 0.5).abs() < 1e-6);
        assert!((b.time_until_available(10).as_secs_f64() - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        BucketState::new(0.0, 10.0, 0);
    }

    #[test]
    fn blocking_bucket_paces_wall_clock() {
        // 1 MB/s, acquire 200KB beyond the 64KiB min-burst => >=0.1s.
        let bucket = TokenBucket::with_burst(1_000_000.0, 64.0 * 1024.0);
        bucket.acquire(64 * 1024); // drain the initial burst
        let t0 = Instant::now();
        bucket.acquire(150_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.10, "took {dt}s, expected >= 0.10s");
        assert!(dt < 2.0, "took {dt}s, expected well under 2s");
    }

    #[test]
    fn try_acquire_never_blocks() {
        let bucket = TokenBucket::with_burst(10.0, 100.0);
        assert_eq!(bucket.try_acquire(40), 40);
        assert_eq!(bucket.try_acquire(100), 60);
        assert_eq!(bucket.try_acquire(100), 0);
    }

    #[test]
    fn throttled_source_reads_correctly_and_slowly() {
        let data: Vec<u8> = (0..200_000u32).map(|x| x as u8).collect();
        let rate = 1_000_000.0; // 1 MB/s
        let mut src = ThrottledSource::with_bucket(
            MemSource::from(data.clone()),
            TokenBucket::with_burst(rate, 64.0 * 1024.0),
        );
        assert_eq!(src.len(), data.len() as u64);
        let t0 = Instant::now();
        let out = src.read_all().unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out, data);
        // 200KB at 1MB/s with 64KiB initial burst: >= ~0.13s.
        assert!(dt >= 0.12, "read took {dt}s");
        assert!(src.describe().contains("MB/s"));
    }

    #[test]
    fn throttled_fileset_paces_and_preserves_contents() {
        let files = vec![vec![1u8; 50_000], vec![2u8; 50_000]];
        let mut fs = ThrottledFileSet::with_bucket(
            MemFileSet::new(files.clone()),
            TokenBucket::with_burst(1_000_000.0, 32.0 * 1024.0),
        );
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.total_len(), 100_000);
        let t0 = Instant::now();
        assert_eq!(fs.read_file(0).unwrap(), files[0]);
        assert_eq!(fs.read_file(1).unwrap(), files[1]);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.05, "reads took {dt}s");
    }

    #[test]
    fn shared_bucket_is_contended() {
        // Two sources on one bucket: total wall time reflects combined
        // bytes.
        let bucket = TokenBucket::with_burst(1_000_000.0, 32.0 * 1024.0);
        let mut a =
            ThrottledSource::with_bucket(MemSource::from(vec![0u8; 75_000]), bucket.clone());
        let mut b = ThrottledSource::with_bucket(MemSource::from(vec![0u8; 75_000]), bucket);
        let t0 = Instant::now();
        a.read_all().unwrap();
        b.read_all().unwrap();
        let dt = t0.elapsed().as_secs_f64();
        // 150KB total minus 32KiB burst at 1MB/s ≈ 0.117s minimum.
        assert!(dt >= 0.10, "combined reads took {dt}s");
    }
}
