//! Ingest-side observability: metered wrappers around sources.
//!
//! The runtime's tracer sees the pipeline's view of ingest (chunk spans,
//! stalls); [`IngestMeter`] sees the storage layer's view — how many
//! bytes crossed the [`DataSource`] / [`FileSet`] boundary, in how many
//! reads, and how long
//! those reads took inside the source. Comparing the two separates "the
//! disk was slow" from "the pipeline did not ask" when diagnosing an
//! ingest-bound run.
//!
//! Wrap any source with [`ObservedSource`] / [`ObservedFileSet`] and
//! keep a clone of the meter; the counters are shared atomics, so the
//! meter can be polled from another thread while the job runs.

use crate::shared::SharedBytes;
use crate::source::{DataSource, FileSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use supmr_metrics::{Counter, FlowLedger, FlowPhase, Histogram, Registry};

#[derive(Debug, Default)]
struct MeterInner {
    bytes: AtomicU64,
    reads: AtomicU64,
    read_nanos: AtomicU64,
    bytes_written: AtomicU64,
    writes: AtomicU64,
    write_nanos: AtomicU64,
}

/// Live registry handles a meter can additionally feed: the
/// `supmr.storage.*` families.
#[derive(Debug, Clone)]
struct MeterSink {
    bytes: Counter,
    reads: Counter,
    read_us: Histogram,
    bytes_written: Counter,
    writes: Counter,
    write_us: Histogram,
}

/// Shared read counters for one wrapped source. Cloning is cheap and
/// every clone observes the same totals.
///
/// A meter built with [`IngestMeter::with_registry`] additionally feeds
/// the `supmr.storage.bytes_read` / `supmr.storage.read_calls` counters
/// and the `supmr.storage.read_us` latency histogram of a live
/// [`Registry`], so scrapes see storage-level read behaviour while the
/// job runs.
#[derive(Debug, Clone, Default)]
pub struct IngestMeter {
    inner: Arc<MeterInner>,
    sink: Option<MeterSink>,
    flow: Option<FlowSink>,
}

/// Flow-ledger attribution for a meter: reads and writes feed two
/// (possibly different) phases of a shared [`FlowLedger`].
#[derive(Debug, Clone)]
struct FlowSink {
    ledger: Arc<FlowLedger>,
    read_phase: FlowPhase,
    write_phase: FlowPhase,
}

impl IngestMeter {
    /// A meter with all counters at zero.
    pub fn new() -> IngestMeter {
        IngestMeter::default()
    }

    /// A meter that also maintains the `supmr.storage.*` families of
    /// `registry` on every read.
    pub fn with_registry(registry: &Registry) -> IngestMeter {
        IngestMeter {
            inner: Arc::default(),
            sink: Some(MeterSink {
                bytes: registry.counter(
                    "supmr.storage.bytes_read",
                    "Bytes delivered across the storage boundary.",
                    &[],
                ),
                reads: registry.counter(
                    "supmr.storage.read_calls",
                    "Read calls against wrapped sources (a shared view counts once).",
                    &[],
                ),
                read_us: registry.histogram(
                    "supmr.storage.read_us",
                    "Latency inside wrapped sources' reads, microseconds.",
                    &[],
                ),
                bytes_written: registry.counter(
                    "supmr.storage.bytes_written",
                    "Bytes pushed across the storage boundary (spill runs).",
                    &[],
                ),
                writes: registry.counter(
                    "supmr.storage.write_calls",
                    "Write calls against wrapped sinks.",
                    &[],
                ),
                write_us: registry.histogram(
                    "supmr.storage.write_us",
                    "Latency inside wrapped sinks' writes, microseconds.",
                    &[],
                ),
            }),
            flow: None,
        }
    }

    /// Additionally attribute this meter's reads to `read_phase` and
    /// its writes to `write_phase` of `ledger`. The phases are marked
    /// external on the ledger: this meter becomes their single
    /// recording owner, and the runtime-level recorder stands down
    /// (no double counting between layers).
    pub fn with_flow(
        mut self,
        ledger: Arc<FlowLedger>,
        read_phase: FlowPhase,
        write_phase: FlowPhase,
    ) -> IngestMeter {
        ledger.mark_external(read_phase);
        ledger.mark_external(write_phase);
        self.flow = Some(FlowSink { ledger, read_phase, write_phase });
        self
    }

    /// Total bytes delivered by the wrapped source (including zero-copy
    /// [`shared`](crate::DataSource::shared) views, counted once when
    /// taken).
    pub fn bytes_read(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Number of read calls (a shared view counts as one read).
    pub fn read_calls(&self) -> u64 {
        self.inner.reads.load(Ordering::Relaxed)
    }

    /// Wall time spent inside the wrapped source's reads. For a
    /// throttled source this includes the pacing sleeps, so it is the
    /// delivered-bandwidth denominator.
    pub fn time_reading(&self) -> Duration {
        Duration::from_nanos(self.inner.read_nanos.load(Ordering::Relaxed))
    }

    /// Observed delivery rate in bytes/sec, or 0.0 before any timed read.
    pub fn throughput_bytes_per_sec(&self) -> f64 {
        let secs = self.time_reading().as_secs_f64();
        if secs > 0.0 {
            self.bytes_read() as f64 / secs
        } else {
            0.0
        }
    }

    /// Total bytes pushed through wrapped sinks (spill run writes).
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of write calls against wrapped sinks.
    pub fn write_calls(&self) -> u64 {
        self.inner.writes.load(Ordering::Relaxed)
    }

    /// Wall time spent inside wrapped sinks' writes (pacing included).
    pub fn time_writing(&self) -> Duration {
        Duration::from_nanos(self.inner.write_nanos.load(Ordering::Relaxed))
    }

    pub(crate) fn record(&self, bytes: u64, elapsed: Duration) {
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.bytes.add(bytes);
            sink.reads.inc();
            sink.read_us.record_duration_us(elapsed);
        }
        if let Some(flow) = &self.flow {
            flow.ledger.record(flow.read_phase, bytes, elapsed);
        }
    }

    pub(crate) fn record_write(&self, bytes: u64, elapsed: Duration) {
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.bytes_written.add(bytes);
            sink.writes.inc();
            sink.write_us.record_duration_us(elapsed);
        }
        if let Some(flow) = &self.flow {
            flow.ledger.record(flow.write_phase, bytes, elapsed);
        }
    }
}

/// A [`DataSource`] wrapper that meters every read through an
/// [`IngestMeter`]. Forwards [`shared`](DataSource::shared) (zero-copy
/// stays zero-copy); a taken view is counted as one read of the full
/// source length.
#[derive(Debug)]
pub struct ObservedSource<S> {
    inner: S,
    meter: IngestMeter,
}

impl<S: DataSource> ObservedSource<S> {
    /// Wrap `inner`, reporting into `meter`.
    pub fn new(inner: S, meter: IngestMeter) -> Self {
        ObservedSource { inner, meter }
    }

    /// The shared meter (clone it to keep polling after the source is
    /// moved into a job).
    pub fn meter(&self) -> &IngestMeter {
        &self.meter
    }

    /// Unwrap, discarding the meter handle.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: DataSource> DataSource for ObservedSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let start = Instant::now();
        let n = self.inner.read_at(offset, buf)?;
        self.meter.record(n as u64, start.elapsed());
        Ok(n)
    }

    fn shared(&mut self) -> Option<SharedBytes> {
        let start = Instant::now();
        let view = self.inner.shared()?;
        self.meter.record(view.len() as u64, start.elapsed());
        Some(view)
    }

    fn describe(&self) -> String {
        format!("observed {}", self.inner.describe())
    }
}

/// A [`FileSet`] wrapper that meters every file read; the [`FileSet`]
/// counterpart of [`ObservedSource`].
#[derive(Debug)]
pub struct ObservedFileSet<F> {
    inner: F,
    meter: IngestMeter,
}

impl<F: FileSet> ObservedFileSet<F> {
    /// Wrap `inner`, reporting into `meter`.
    pub fn new(inner: F, meter: IngestMeter) -> Self {
        ObservedFileSet { inner, meter }
    }

    /// The shared meter.
    pub fn meter(&self) -> &IngestMeter {
        &self.meter
    }

    /// Unwrap, discarding the meter handle.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: FileSet> FileSet for ObservedFileSet<F> {
    fn file_count(&self) -> usize {
        self.inner.file_count()
    }

    fn file_len(&self, idx: usize) -> u64 {
        self.inner.file_len(idx)
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        let start = Instant::now();
        let data = self.inner.read_file(idx)?;
        self.meter.record(data.len() as u64, start.elapsed());
        Ok(data)
    }

    fn shared_file(&mut self, idx: usize) -> Option<SharedBytes> {
        let start = Instant::now();
        let view = self.inner.shared_file(idx)?;
        self.meter.record(view.len() as u64, start.elapsed());
        Some(view)
    }

    fn describe(&self) -> String {
        format!("observed {}", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{MemFileSet, MemSource, SourceExt};
    use crate::throttle::ThrottledSource;

    #[test]
    fn meter_counts_bytes_reads_and_time() {
        let meter = IngestMeter::new();
        let mut src = ObservedSource::new(MemSource::from(vec![7u8; 1000]), meter.clone());
        let mut buf = [0u8; 256];
        let n = src.read_at(0, &mut buf).unwrap();
        assert_eq!(n, 256);
        src.read_at(256, &mut buf).unwrap();
        assert_eq!(meter.bytes_read(), 512);
        assert_eq!(meter.read_calls(), 2);
    }

    #[test]
    fn shared_view_counts_whole_source_once() {
        let meter = IngestMeter::new();
        let mut src = ObservedSource::new(MemSource::from(vec![1u8; 300]), meter.clone());
        let view = src.shared().expect("mem source is shared");
        assert_eq!(view.len(), 300);
        assert_eq!(meter.bytes_read(), 300);
        assert_eq!(meter.read_calls(), 1);
    }

    #[test]
    fn read_all_accounts_every_byte() {
        let meter = IngestMeter::new();
        let mut src = ObservedSource::new(MemSource::from(vec![2u8; 4096]), meter.clone());
        let data = src.read_all().unwrap();
        assert_eq!(data.len(), 4096);
        assert_eq!(meter.bytes_read(), 4096);
        assert_eq!(src.len(), 4096);
    }

    #[test]
    fn throttled_reads_show_up_as_time_reading() {
        let meter = IngestMeter::new();
        // 1 MiB at 16 MiB/s with a small burst: reads must take real time.
        let inner = ThrottledSource::new(MemSource::from(vec![3u8; 1 << 20]), 16.0 * 1048576.0);
        let mut src = ObservedSource::new(inner, meter.clone());
        src.read_all().unwrap();
        assert_eq!(meter.bytes_read(), 1 << 20);
        assert!(meter.time_reading() > Duration::ZERO);
        let rate = meter.throughput_bytes_per_sec();
        assert!(rate > 0.0, "rate = {rate}");
    }

    #[test]
    fn throttled_source_does_not_expose_shared_view() {
        let meter = IngestMeter::new();
        let inner = ThrottledSource::new(MemSource::from(vec![4u8; 64]), 1e9);
        let mut src = ObservedSource::new(inner, meter.clone());
        assert!(src.shared().is_none(), "pacing wrappers must not be bypassed");
        assert_eq!(meter.bytes_read(), 0, "a refused view is not a read");
    }

    #[test]
    fn registry_backed_meter_feeds_storage_families() {
        let registry = Registry::new();
        let meter = IngestMeter::with_registry(&registry);
        let mut src = ObservedSource::new(MemSource::from(vec![9u8; 768]), meter.clone());
        let mut buf = [0u8; 256];
        src.read_at(0, &mut buf).unwrap();
        src.read_at(256, &mut buf).unwrap();
        src.read_at(512, &mut buf).unwrap();
        // The local meter and the registry families agree.
        assert_eq!(meter.bytes_read(), 768);
        let snap = registry.snapshot();
        let value = |name: &str| {
            snap.entries
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} registered"))
                .value
                .clone()
        };
        assert_eq!(value("supmr.storage.bytes_read"), supmr_metrics::MetricValue::Counter(768));
        assert_eq!(value("supmr.storage.read_calls"), supmr_metrics::MetricValue::Counter(3));
        match value("supmr.storage.read_us") {
            supmr_metrics::MetricValue::Histogram(h) => assert_eq!(h.count, 3),
            other => panic!("read_us is a histogram, got {other:?}"),
        }
    }

    #[test]
    fn flow_backed_meter_owns_its_phases() {
        let ledger = Arc::new(FlowLedger::new());
        let meter =
            IngestMeter::new().with_flow(Arc::clone(&ledger), FlowPhase::Ingest, FlowPhase::Spill);
        assert!(ledger.is_external(FlowPhase::Ingest), "meter claimed the read phase");
        assert!(ledger.is_external(FlowPhase::Spill), "meter claimed the write phase");
        let mut src = ObservedSource::new(MemSource::from(vec![5u8; 512]), meter.clone());
        src.read_all().unwrap();
        meter.record_write(128, Duration::from_micros(10));
        assert_eq!(ledger.bytes(FlowPhase::Ingest), 512, "reads feed the read phase");
        assert_eq!(ledger.bytes(FlowPhase::Spill), 128, "writes feed the write phase");
        // A runtime-level record against a claimed phase is a no-op.
        ledger.record_owned(FlowPhase::Ingest, 999, Duration::ZERO);
        assert_eq!(ledger.bytes(FlowPhase::Ingest), 512);
    }

    #[test]
    fn file_set_reads_are_metered() {
        let meter = IngestMeter::new();
        let files = MemFileSet::new(vec![vec![0u8; 100], vec![0u8; 250]]);
        let mut set = ObservedFileSet::new(files, meter.clone());
        assert_eq!(set.file_count(), 2);
        assert_eq!(set.total_len(), 350);
        set.read_file(0).unwrap();
        let view = set.shared_file(1).expect("mem file set is shared");
        assert_eq!(view.len(), 250);
        assert_eq!(meter.bytes_read(), 350);
        assert_eq!(meter.read_calls(), 2);
        assert!(set.describe().starts_with("observed "));
    }
}
