//! The storage abstraction the runtime ingests from.
//!
//! Two shapes of input exist in the paper (§III-A): "Hadoop processes
//! input as either one big file (e.g., Terasort) or as many small files
//! (e.g., Word count)". [`DataSource`] is the one-big-file shape —
//! byte-addressed, sequentially ingested; [`FileSet`] is the
//! many-small-files shape — whole files are the unit of ingest and of
//! intra-file chunking.

use crate::shared::SharedBytes;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A byte-addressed input that the ingest phase reads sequentially.
///
/// Implementations must be `Send` so the ingest thread of the chunk
/// pipeline can own one while mapper threads run elsewhere.
pub trait DataSource: Send {
    /// Total input length in bytes.
    fn len(&self) -> u64;

    /// Whether the source has no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read up to `buf.len()` bytes starting at `offset`, returning the
    /// number of bytes read (0 at or past end of input).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// A zero-copy view of the *entire* source, if the bytes are already
    /// resident in shared memory. `None` (the default) means callers must
    /// fall back to [`read_at`](DataSource::read_at) copies. Pacing
    /// wrappers ([`ThrottledSource`](crate::ThrottledSource),
    /// [`FaultySource`](crate::FaultySource)) keep the default so their
    /// per-read behavior cannot be bypassed.
    fn shared(&mut self) -> Option<SharedBytes> {
        None
    }

    /// Human-readable description for logs and experiment records.
    fn describe(&self) -> String {
        format!("source ({} bytes)", self.len())
    }
}

impl<S: DataSource + ?Sized> DataSource for Box<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        (**self).read_at(offset, buf)
    }

    fn shared(&mut self) -> Option<SharedBytes> {
        (**self).shared()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Convenience helpers available on every [`DataSource`].
pub trait SourceExt: DataSource {
    /// Read the exact byte range `[offset, offset + len)`, truncated at
    /// end of input.
    fn read_range(&mut self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let available = self.len().saturating_sub(offset).min(len as u64) as usize;
        let mut buf = vec![0u8; available];
        let mut filled = 0;
        while filled < available {
            let n = self.read_at(offset + filled as u64, &mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        Ok(buf)
    }

    /// Read the entire source into memory (the original runtime's ingest
    /// phase).
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let len = self.len();
        let cap = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "source too large for memory")
        })?;
        self.read_range(0, cap)
    }
}

impl<S: DataSource + ?Sized> SourceExt for S {}

/// An in-memory source; the backing bytes are shared so cloning is cheap.
#[derive(Debug, Clone)]
pub struct MemSource {
    data: Arc<[u8]>,
}

impl MemSource {
    /// Wrap a byte buffer.
    pub fn new(data: impl Into<Arc<[u8]>>) -> MemSource {
        MemSource { data: data.into() }
    }

    /// Borrow the whole backing buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for MemSource {
    fn from(v: Vec<u8>) -> Self {
        MemSource::new(v)
    }
}

impl DataSource for MemSource {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let Ok(offset) = usize::try_from(offset) else {
            return Ok(0);
        };
        if offset >= self.data.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.data.len() - offset);
        buf[..n].copy_from_slice(&self.data[offset..offset + n]);
        Ok(n)
    }

    fn shared(&mut self) -> Option<SharedBytes> {
        Some(SharedBytes::from(Arc::clone(&self.data)))
    }

    fn describe(&self) -> String {
        format!("mem ({} bytes)", self.data.len())
    }
}

/// A source backed by one large file on disk (the Terasort input shape).
#[derive(Debug)]
pub struct FileSource {
    file: File,
    len: u64,
    path: PathBuf,
}

impl FileSource {
    /// Open a file for ingest.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileSource> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        Ok(FileSource { file, len, path })
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl DataSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if offset >= self.len {
            return Ok(0);
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read(buf)
    }

    fn describe(&self) -> String {
        format!("file {} ({} bytes)", self.path.display(), self.len)
    }
}

/// A caching decorator: materializes the inner source into memory on
/// first access and serves every later read from RAM.
///
/// This is the related-work idea the paper borrows from MixApart-style
/// systems ("SupMR adopts many of these caching techniques", §VII)
/// applied at the source layer: an *iterative* job (kmeans) that
/// re-ingests its input every pass pays the slow device exactly once.
pub struct CachedSource<S> {
    inner: S,
    cache: Option<Arc<[u8]>>,
}

impl<S: DataSource> CachedSource<S> {
    /// Wrap a source; nothing is read until the first access.
    pub fn new(inner: S) -> CachedSource<S> {
        CachedSource { inner, cache: None }
    }

    /// Whether the cache has been populated.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// A cheap handle to the cached bytes, filling the cache if needed.
    pub fn cached(&mut self) -> io::Result<Arc<[u8]>> {
        if self.cache.is_none() {
            let data = self.inner.read_all()?;
            self.cache = Some(Arc::from(data));
        }
        Ok(Arc::clone(self.cache.as_ref().expect("just filled")))
    }
}

impl<S: DataSource> DataSource for CachedSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let data = self.cached()?;
        let Ok(offset) = usize::try_from(offset) else {
            return Ok(0);
        };
        if offset >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - offset);
        buf[..n].copy_from_slice(&data[offset..offset + n]);
        Ok(n)
    }

    fn shared(&mut self) -> Option<SharedBytes> {
        // Only a *warm* cache is zero-copy; a cold one would have to pay
        // the inner device first, and errors cannot surface from here.
        self.cache.as_ref().map(|c| SharedBytes::from(Arc::clone(c)))
    }

    fn describe(&self) -> String {
        format!(
            "{} (cached: {})",
            self.inner.describe(),
            if self.is_cached() { "warm" } else { "cold" }
        )
    }
}

/// A collection of small files — the word-count input shape and the unit
/// of intra-file chunking ("multiple files combine to form a chunk").
pub trait FileSet: Send {
    /// Number of files.
    fn file_count(&self) -> usize;

    /// Size in bytes of file `idx`.
    ///
    /// # Panics
    /// May panic if `idx >= file_count()`.
    fn file_len(&self, idx: usize) -> u64;

    /// Read the whole contents of file `idx`.
    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>>;

    /// A zero-copy view of file `idx`, if its bytes are already resident
    /// in shared memory. Mirrors [`DataSource::shared`]: `None` (the
    /// default) means callers fall back to
    /// [`read_file`](FileSet::read_file) copies, and pacing/fault
    /// wrappers keep the default.
    fn shared_file(&mut self, _idx: usize) -> Option<SharedBytes> {
        None
    }

    /// Total bytes across all files.
    fn total_len(&self) -> u64 {
        (0..self.file_count()).map(|i| self.file_len(i)).sum()
    }

    /// Human-readable description.
    fn describe(&self) -> String {
        format!("fileset ({} files, {} bytes)", self.file_count(), self.total_len())
    }
}

impl<F: FileSet + ?Sized> FileSet for Box<F> {
    fn file_count(&self) -> usize {
        (**self).file_count()
    }

    fn file_len(&self, idx: usize) -> u64 {
        (**self).file_len(idx)
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        (**self).read_file(idx)
    }

    fn shared_file(&mut self, idx: usize) -> Option<SharedBytes> {
        (**self).shared_file(idx)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// An in-memory file set.
#[derive(Debug, Clone, Default)]
pub struct MemFileSet {
    files: Vec<Arc<[u8]>>,
}

impl MemFileSet {
    /// Build from a list of file contents.
    pub fn new(files: Vec<Vec<u8>>) -> MemFileSet {
        MemFileSet { files: files.into_iter().map(Arc::from).collect() }
    }

    /// Append one file.
    pub fn push(&mut self, contents: Vec<u8>) {
        self.files.push(Arc::from(contents));
    }
}

impl FileSet for MemFileSet {
    fn file_count(&self) -> usize {
        self.files.len()
    }

    fn file_len(&self, idx: usize) -> u64 {
        self.files[idx].len() as u64
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        Ok(self.files[idx].to_vec())
    }

    fn shared_file(&mut self, idx: usize) -> Option<SharedBytes> {
        Some(SharedBytes::from(Arc::clone(&self.files[idx])))
    }
}

/// A directory of real files, ordered by file name for determinism.
#[derive(Debug)]
pub struct DirFileSet {
    paths: Vec<PathBuf>,
    lens: Vec<u64>,
}

impl DirFileSet {
    /// Enumerate the regular files directly inside `dir` (sorted by name).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DirFileSet> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        let lens = paths
            .iter()
            .map(|p| p.metadata().map(|m| m.len()))
            .collect::<io::Result<Vec<u64>>>()?;
        Ok(DirFileSet { paths, lens })
    }

    /// The ordered file paths.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

impl FileSet for DirFileSet {
    fn file_count(&self) -> usize {
        self.paths.len()
    }

    fn file_len(&self, idx: usize) -> u64 {
        self.lens[idx]
    }

    fn read_file(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        std::fs::read(&self.paths[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_source_reads_ranges() {
        let mut s = MemSource::from((0u8..100).collect::<Vec<u8>>());
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.read_range(10, 5).unwrap(), vec![10, 11, 12, 13, 14]);
        // Truncated at EOF.
        assert_eq!(s.read_range(95, 10).unwrap(), vec![95, 96, 97, 98, 99]);
        // Past EOF.
        assert!(s.read_range(100, 10).unwrap().is_empty());
        assert!(s.read_range(u64::MAX, 4).unwrap().is_empty());
    }

    #[test]
    fn mem_source_read_all() {
        let data: Vec<u8> = (0..=255).collect();
        let mut s = MemSource::from(data.clone());
        assert_eq!(s.read_all().unwrap(), data);
        assert!(s.describe().contains("256"));
    }

    #[test]
    fn empty_mem_source() {
        let mut s = MemSource::from(Vec::new());
        assert!(s.is_empty());
        assert!(s.read_all().unwrap().is_empty());
    }

    #[test]
    fn file_source_round_trip() {
        let dir = std::env::temp_dir().join("supmr-storage-test-file");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input.bin");
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();

        let mut s = FileSource::open(&path).unwrap();
        assert_eq!(s.len(), data.len() as u64);
        assert_eq!(s.read_all().unwrap(), data);
        assert_eq!(s.read_range(4, 4).unwrap(), 1u32.to_le_bytes());
        assert_eq!(s.path(), path.as_path());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_source_missing_file_errors() {
        assert!(FileSource::open("/nonexistent/supmr/input").is_err());
    }

    #[test]
    fn cached_source_reads_inner_exactly_once() {
        use crate::throttle::{ThrottledSource, TokenBucket};
        use std::time::Instant;
        let data: Vec<u8> = (0..120_000u32).map(|x| x as u8).collect();
        // Cold read pays the 1 MB/s device; warm reads are instant.
        let slow = ThrottledSource::with_bucket(
            MemSource::from(data.clone()),
            TokenBucket::with_burst(1_000_000.0, 32.0 * 1024.0),
        );
        let mut cached = CachedSource::new(slow);
        assert!(!cached.is_cached());
        assert!(cached.describe().contains("cold"));

        let t0 = Instant::now();
        assert_eq!(cached.read_all().unwrap(), data);
        let cold = t0.elapsed();
        assert!(cold.as_secs_f64() > 0.05, "cold read should be paced: {cold:?}");
        assert!(cached.is_cached());

        let t1 = Instant::now();
        assert_eq!(cached.read_all().unwrap(), data);
        assert_eq!(cached.read_range(5, 10).unwrap(), data[5..15].to_vec());
        let warm = t1.elapsed();
        assert!(warm < cold / 5, "warm reads must skip the device: {warm:?}");
        assert!(cached.describe().contains("warm"));
    }

    #[test]
    fn cached_source_edge_reads() {
        let mut c = CachedSource::new(MemSource::from(vec![1u8, 2, 3]));
        let mut buf = [0u8; 8];
        assert_eq!(c.read_at(3, &mut buf).unwrap(), 0);
        assert_eq!(c.read_at(u64::MAX, &mut buf).unwrap(), 0);
        assert_eq!(c.read_at(1, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[2, 3]);
    }

    #[test]
    fn mem_fileset_accounts_lengths() {
        let mut fs = MemFileSet::new(vec![b"hello".to_vec(), b"".to_vec()]);
        fs.push(b"world!".to_vec());
        assert_eq!(fs.file_count(), 3);
        assert_eq!(fs.file_len(0), 5);
        assert_eq!(fs.file_len(1), 0);
        assert_eq!(fs.total_len(), 11);
        assert_eq!(fs.read_file(2).unwrap(), b"world!".to_vec());
        assert!(fs.describe().contains("3 files"));
    }

    #[test]
    fn mem_source_shares_without_copy() {
        let data: Vec<u8> = (0..64).collect();
        let mut s = MemSource::from(data.clone());
        let a = s.shared().expect("mem sources are always resident");
        let b = s.shared().expect("shared view is repeatable");
        assert_eq!(a, data);
        // Both views plus the source itself reference one allocation.
        assert_eq!(a.ref_count(), 3);
        drop(b);
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn cached_source_shares_only_when_warm() {
        let mut c = CachedSource::new(MemSource::from(vec![9u8; 16]));
        assert!(c.shared().is_none(), "cold cache must not claim residency");
        c.cached().unwrap();
        let view = c.shared().expect("warm cache is resident");
        assert_eq!(view, vec![9u8; 16]);
    }

    #[test]
    fn mem_fileset_shares_individual_files() {
        let mut fs = MemFileSet::new(vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(fs.shared_file(1).unwrap(), b"two");
        let boxed: &mut dyn FileSet = &mut fs;
        assert_eq!(boxed.shared_file(0).unwrap(), b"one");
    }

    #[test]
    fn dir_fileset_sorted_enumeration() {
        let dir = std::env::temp_dir().join("supmr-storage-test-dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.txt"), b"bbb").unwrap();
        std::fs::write(dir.join("a.txt"), b"aa").unwrap();
        std::fs::create_dir_all(dir.join("subdir")).unwrap(); // ignored

        let mut fs = DirFileSet::open(&dir).unwrap();
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.file_len(0), 2); // a.txt first
        assert_eq!(fs.read_file(1).unwrap(), b"bbb".to_vec());
        assert_eq!(fs.total_len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
