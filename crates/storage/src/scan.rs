//! SWAR byte scanning: word-at-a-time search and classification.
//!
//! The map side of the word-count workload is ingest/map-bound (Table
//! II), and its inner loops — record-boundary scanning and tokenization
//! — were byte-at-a-time. This module is the dependency-free
//! `memchr`-style replacement: 8 bytes per step over `u64` lanes (the
//! single-byte search runs a 16-byte double-word stride), with a scalar
//! tail for the last partial word. Everything here is safe code —
//! `u64::from_le_bytes` over array windows, no pointer casts — so the
//! same functions run under Miri unchanged.
//!
//! Two SWAR idioms are used, chosen per call site:
//!
//! * **Zero-byte trick** (`(x ^ splat(b)).wrapping_sub(LO) & !x' & HI`)
//!   for [`find_byte`]. Borrows propagate *upward* through the
//!   subtraction, so lanes above a true match can be misflagged — the
//!   trick is exact only for the **first** match, which is all a search
//!   consumes before advancing.
//! * **Carry-free 7-bit range compares** (`ge7`) for classification
//!   masks ([`ByteClass`], [`find_crlf`]), where *every* lane's verdict
//!   is inspected. Masking to the low 7 bits first keeps each lane's
//!   add below 0x100, so no carry crosses a lane boundary and the mask
//!   is exact per lane; a separate `!x & HI` term rejects non-ASCII.

/// The low bit of every lane (`0x01` splatted).
const LO: u64 = 0x0101_0101_0101_0101;
/// The high bit of every lane (`0x80` splatted).
const HI: u64 = 0x8080_8080_8080_8080;

/// Splat a byte across all eight lanes.
#[inline]
const fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// Load 8 bytes starting at `i` as a little-endian word, so lane *k*
/// holds `data[i + k]` and `trailing_zeros` finds the lowest offset.
#[inline]
fn load(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"))
}

/// Index of the lowest flagged lane in an H-bit mask.
#[inline]
fn lane(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

/// H-bit mask of lanes whose low 7 bits are `>= c`. Exact per lane for
/// `c <= 0x80`: every lane of `x7` is `<= 0x7F` and the per-lane addend
/// is `0x80 - c`, so no lane sum exceeds 0xFF and no carry escapes.
#[inline]
const fn ge7(x7: u64, c: u8) -> u64 {
    x7.wrapping_add(splat(0x80 - c)) & HI
}

/// H-bit mask of lanes whose low 7 bits fall in `[lo, hi]` (`hi < 0x7F`).
#[inline]
const fn in_range7(x7: u64, lo: u8, hi: u8) -> u64 {
    ge7(x7, lo) & !ge7(x7, hi + 1)
}

/// H-bit mask of lanes equal to the ASCII byte `c` (`c <= 0x7E`),
/// exact in every lane (carry-free compare + ASCII rejection).
#[inline]
const fn eq_ascii(x: u64, c: u8) -> u64 {
    in_range7(x & !HI, c, c) & !x & HI
}

/// Find the first occurrence of `needle` in `haystack`.
///
/// `memchr`-shaped: a 16-byte double-word stride using the classic
/// zero-byte trick, an 8-byte loop for the remainder, then a scalar
/// tail. Drop-in for `iter().position(|&b| b == needle)`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let n = splat(needle);
    let len = haystack.len();
    let mut i = 0;
    while i + 16 <= len {
        let a = load(haystack, i) ^ n;
        let b = load(haystack, i + 8) ^ n;
        let za = a.wrapping_sub(LO) & !a & HI;
        if za != 0 {
            return Some(i + lane(za));
        }
        let zb = b.wrapping_sub(LO) & !b & HI;
        if zb != 0 {
            return Some(i + 8 + lane(zb));
        }
        i += 16;
    }
    while i + 8 <= len {
        let a = load(haystack, i) ^ n;
        let za = a.wrapping_sub(LO) & !a & HI;
        if za != 0 {
            return Some(i + lane(za));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// Find the first `\r\n` pair; returns the index of the `\r`.
///
/// Replaces the byte-stepping scans in the `CrLf` record format. Both
/// the `\r` and `\n` masks are carry-free exact, so a word is scanned
/// once: pairs inside the word come from `cr & (lf >> 8)`, and a `\r`
/// in the top lane checks one byte across the word seam.
pub fn find_crlf(data: &[u8]) -> Option<usize> {
    let len = data.len();
    let mut i = 0;
    while i + 8 <= len {
        let x = load(data, i);
        let cr = eq_ascii(x, b'\r');
        if cr != 0 {
            let lf = eq_ascii(x, b'\n');
            let pair = cr & (lf >> 8);
            if pair != 0 {
                return Some(i + lane(pair));
            }
            if cr & (0x80 << 56) != 0 && data.get(i + 8) == Some(&b'\n') {
                return Some(i + 7);
            }
        }
        i += 8;
    }
    while i + 1 < len {
        if data[i] == b'\r' && data[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// A byte class the vectorized tokenizer splits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Word-count word bytes: ASCII alphanumerics, `_`, and `'`.
    Word,
    /// ASCII alphanumerics only (the inverted-index tokenizer).
    Alnum,
}

impl ByteClass {
    /// Scalar membership test — the reference the SWAR mask must agree
    /// with byte for byte (property-tested in `tests/properties.rs`).
    #[inline]
    pub fn contains(self, b: u8) -> bool {
        match self {
            ByteClass::Word => b.is_ascii_alphanumeric() || b == b'_' || b == b'\'',
            ByteClass::Alnum => b.is_ascii_alphanumeric(),
        }
    }

    /// H-bit mask of member lanes in `x`, exact in every lane. Letters
    /// fold case first (`| 0x20` maps `A-Z` onto `a-z`; the bytes that
    /// alias into that range, `[`–`_`, land on `{`–`0x7F` instead), so
    /// one range compare covers both cases.
    #[inline]
    fn mask(self, x: u64) -> u64 {
        let x7 = x & !HI;
        let letter = in_range7(x7 | splat(0x20), b'a', b'z');
        let digit = in_range7(x7, b'0', b'9');
        let mut m = letter | digit;
        if let ByteClass::Word = self {
            m |= in_range7(x7, b'_', b'_') | in_range7(x7, b'\'', b'\'');
        }
        m & !x & HI
    }
}

/// First index `>= from` whose byte is in `class`.
#[inline]
pub fn find_member(data: &[u8], from: usize, class: ByteClass) -> Option<usize> {
    let mut i = from;
    while i + 8 <= data.len() {
        let m = class.mask(load(data, i));
        if m != 0 {
            return Some(i + lane(m));
        }
        i += 8;
    }
    data[i..].iter().position(|&b| class.contains(b)).map(|p| i + p)
}

/// First index `>= from` whose byte is *not* in `class` (`data.len()`
/// when the run extends to the end).
#[inline]
pub fn find_non_member(data: &[u8], from: usize, class: ByteClass) -> usize {
    let mut i = from;
    while i + 8 <= data.len() {
        let m = !class.mask(load(data, i)) & HI;
        if m != 0 {
            return i + lane(m);
        }
        i += 8;
    }
    while i < data.len() && class.contains(data[i]) {
        i += 1;
    }
    i
}

/// Compress an H-bit lane mask to its low 8 bits (a per-byte bitmask):
/// the multiply gathers lane bits 7, 15, …, 63 into the top byte.
#[inline]
const fn movemask(m: u64) -> u64 {
    (m >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Iterate the maximal `class`-member runs of `data` — the vectorized
/// tokenizer. Tokens are borrowed subslices, so callers can probe a
/// hash table with them and defer key materialization to first insert.
pub fn tokens(data: &[u8], class: ByteClass) -> Tokens<'_> {
    Tokens { data, pos: 0, class, win: usize::MAX, bits: 0 }
}

/// Iterator over byte-class token runs. See [`tokens`].
///
/// The classifier runs once per 64-byte window, not once per token: the
/// eight lane masks of a window compress (`movemask`) into a single
/// `u64` byte-membership bitmask, and token boundaries inside the
/// window are pure `trailing_zeros` arithmetic on it. Short tokens —
/// the word-count common case — cost a couple of bit ops each; only
/// runs crossing the cached window fall back to the scanning helpers.
#[derive(Debug, Clone)]
pub struct Tokens<'d> {
    data: &'d [u8],
    pos: usize,
    class: ByteClass,
    /// Start of the cached window (`usize::MAX` = no window cached).
    win: usize,
    /// Byte-membership bitmask of `data[win..win + 64]`.
    bits: u64,
}

impl<'d> Tokens<'d> {
    /// Membership bitmask for the 64-byte window at `w` (bit `j` set iff
    /// `data[w + j]` is in the class). Requires `w + 64 <= data.len()`.
    fn window_bits(&self, w: usize) -> u64 {
        let mut bits = 0u64;
        for j in 0..8 {
            bits |= movemask(self.class.mask(load(self.data, w + j * 8))) << (8 * j);
        }
        bits
    }
}

impl<'d> Iterator for Tokens<'d> {
    type Item = &'d [u8];

    fn next(&mut self) -> Option<&'d [u8]> {
        let len = self.data.len();
        let full_end = len & !63;
        while self.pos < full_end {
            let w = self.pos & !63;
            if w != self.win {
                self.bits = self.window_bits(w);
                self.win = w;
            }
            let avail = self.bits >> (self.pos - w);
            if avail == 0 {
                self.pos = w + 64;
                continue;
            }
            let start = self.pos + avail.trailing_zeros() as usize;
            let run = !(self.bits >> (start - w));
            let in_window = run.trailing_zeros() as usize;
            let end = if (start - w) + in_window < 64 {
                start + in_window
            } else {
                // Member run reaches the window edge; finish the scan
                // with the word-at-a-time helper.
                find_non_member(self.data, w + 64, self.class)
            };
            self.pos = end;
            return Some(&self.data[start..end]);
        }
        // Scalar-assisted tail: fewer than 64 bytes remain.
        let start = find_member(self.data, self.pos, self.class)?;
        let end = find_non_member(self.data, start, self.class);
        self.pos = end;
        Some(&self.data[start..end])
    }
}

/// Append `src` to `out` with ASCII uppercase folded to lowercase,
/// eight bytes per step: the `A-Z` lane mask's H bit shifts down to the
/// `0x20` case bit. Non-ASCII bytes pass through untouched, matching
/// `u8::to_ascii_lowercase`.
pub fn push_ascii_lower(src: &[u8], out: &mut Vec<u8>) {
    out.reserve(src.len());
    let mut i = 0;
    while i + 8 <= src.len() {
        let x = load(src, i);
        let upper = in_range7(x & !HI, b'A', b'Z') & !x & HI;
        out.extend_from_slice(&(x | (upper >> 2)).to_le_bytes());
        i += 8;
    }
    out.extend(src[i..].iter().map(u8::to_ascii_lowercase));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_crlf(d: &[u8]) -> Option<usize> {
        d.windows(2).position(|w| w == b"\r\n")
    }

    #[test]
    fn find_byte_every_offset_and_length() {
        // A needle planted at every position of every length up to two
        // full 16-byte strides, so every lane and every tail size runs.
        for len in 0..40 {
            for at in 0..len {
                let mut d = vec![b'x'; len];
                d[at] = b'\n';
                assert_eq!(find_byte(&d, b'\n'), Some(at), "len {len} at {at}");
                assert_eq!(find_byte(&d, b'q'), None);
            }
        }
        assert_eq!(find_byte(b"", b'a'), None);
    }

    #[test]
    fn find_byte_first_of_many_and_high_bytes() {
        let d = b"a\nb\nc\n";
        assert_eq!(find_byte(d, b'\n'), Some(1));
        // 0x8A must not alias 0x0A, in any lane.
        for at in 0..24 {
            let mut d = vec![0x8Au8; 24];
            d[at] = 0x0A;
            assert_eq!(find_byte(&d, 0x0A), Some(at));
        }
        // Searching *for* a high byte works too (the subtract trick is
        // not ASCII-limited).
        let mut d = vec![0x0Au8; 24];
        d[17] = 0x8A;
        assert_eq!(find_byte(&d, 0x8A), Some(17));
    }

    #[test]
    fn crlf_every_offset() {
        for len in 2..40 {
            for at in 0..len - 1 {
                let mut d = vec![b'x'; len];
                d[at] = b'\r';
                d[at + 1] = b'\n';
                assert_eq!(find_crlf(&d), Some(at), "len {len} at {at}");
            }
        }
    }

    #[test]
    fn crlf_matches_scalar_on_tricky_shapes() {
        let cases: Vec<&[u8]> = vec![
            b"",
            b"\r",
            b"\n",
            b"\n\r",
            b"\r\r\r\r\r\r\r\r\r\n",
            b"xxxxxxx\r\nyyy",    // pair straddles the first 8-byte lane
            b"xxxxxxxx\r\nyyy",   // pair starts exactly at lane 8
            b"\x8d\x8a\r\n",      // high bytes must not alias \r \n
            b"abc\rdef\nghi\r\n", // bare \r and bare \n are data
            b"\r\n",
            b"a\r\n",
        ];
        for d in cases {
            assert_eq!(find_crlf(d), scalar_crlf(d), "{d:?}");
        }
    }

    #[test]
    fn class_masks_agree_with_scalar_for_all_bytes() {
        // Every byte value through every lane of the SWAR mask.
        for class in [ByteClass::Word, ByteClass::Alnum] {
            for b in 0..=255u8 {
                for lane_idx in 0..8 {
                    let mut d = [b'-'; 8];
                    d[lane_idx] = b;
                    let m = class.mask(u64::from_le_bytes(d));
                    let flagged = m & (0x80u64 << (8 * lane_idx)) != 0;
                    assert_eq!(flagged, class.contains(b), "{class:?} byte {b:#x} lane {lane_idx}");
                    // No other lane may be flagged ('-' is a non-member).
                    assert_eq!(m & !(0x80u64 << (8 * lane_idx)), 0);
                }
            }
        }
    }

    #[test]
    fn tokens_split_like_the_scalar_tokenizer() {
        let text = b"it's a test--really, a_test! over_9000 unicode\xc3\xa9mixed";
        let got: Vec<&[u8]> = tokens(text, ByteClass::Word).collect();
        let expect: Vec<&[u8]> =
            text.split(|&b| !ByteClass::Word.contains(b)).filter(|t| !t.is_empty()).collect();
        assert_eq!(got, expect);
        assert_eq!(tokens(b"", ByteClass::Word).count(), 0);
        assert_eq!(tokens(b"---- .. !", ByteClass::Word).count(), 0);
        let all: Vec<&[u8]> = tokens(b"abcdefgh", ByteClass::Word).collect();
        assert_eq!(all, vec![&b"abcdefgh"[..]]);
    }

    #[test]
    fn token_runs_straddle_lane_boundaries() {
        // A 15-byte word crosses the 8-byte lane; a 17-byte word
        // crosses the 16-byte double stride.
        for word_len in [1, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
            let word = vec![b'a'; word_len];
            let mut d = b"  ".to_vec();
            d.extend_from_slice(&word);
            d.push(b' ');
            d.extend_from_slice(&word);
            let toks: Vec<&[u8]> = tokens(&d, ByteClass::Word).collect();
            assert_eq!(toks, vec![&word[..], &word[..]], "word_len {word_len}");
        }
    }

    #[test]
    fn case_folding_matches_scalar_for_all_bytes() {
        let src: Vec<u8> = (0..=255u8).cycle().take(512 + 3).collect();
        let mut swar = Vec::new();
        push_ascii_lower(&src, &mut swar);
        let scalar: Vec<u8> = src.iter().map(|b| b.to_ascii_lowercase()).collect();
        assert_eq!(swar, scalar);
    }

    #[test]
    fn find_member_and_non_member_bounds() {
        let d = b"...word...";
        assert_eq!(find_member(d, 0, ByteClass::Word), Some(3));
        assert_eq!(find_non_member(d, 3, ByteClass::Word), 7);
        assert_eq!(find_member(d, 7, ByteClass::Word), None);
        assert_eq!(find_non_member(b"abc", 0, ByteClass::Word), 3);
        assert_eq!(find_member(b"", 0, ByteClass::Word), None);
    }
}
