//! Spill-run storage: where out-of-core intermediate runs live.
//!
//! The runtime's spill pipeline (`supmr::spill`) writes sorted runs when
//! the memory accountant trips and streams them back for the external
//! reduce merge. This module owns the *where*: a [`RunStore`] names runs
//! and hands out byte sinks/sources, so the same decorator stack that
//! shapes ingest applies to spill traffic — [`ThrottledRunStore`] paces
//! runs through a [`TokenBucket`] (the `--throttle` device simulation
//! charges spill I/O too), [`ObservedRunStore`] feeds the
//! `supmr.storage.*` families of an [`IngestMeter`], and
//! [`FaultyRunStore`] injects deterministic failures for error-path
//! tests. [`RunGuard`] is the RAII cleanup: a run file a panic leaves
//! behind is deleted when its guard unwinds.

use crate::observe::IngestMeter;
use crate::throttle::TokenBucket;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Named byte blobs for spill runs.
///
/// Implementations must be safe to use from several reduce workers at
/// once (distinct names; concurrent opens of the same finished run are
/// also fine).
pub trait RunStore: Send + Sync {
    /// Create (or truncate) the run called `name` and return its sink.
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>>;

    /// Open a finished run for streaming reads.
    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>>;

    /// Delete the run. Missing runs are not an error.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Human-readable description for reports and errors.
    fn describe(&self) -> String {
        "run store".to_string()
    }
}

/// Run files in a directory on disk (the production store).
#[derive(Debug)]
pub struct DiskRunStore {
    dir: PathBuf,
}

impl DiskRunStore {
    /// Use (and create) `dir` as the spill directory.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<DiskRunStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskRunStore { dir })
    }

    /// The spill directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl RunStore for DiskRunStore {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(BufWriter::new(File::create(self.path(name))?)))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(BufReader::new(File::open(self.path(name))?)))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn describe(&self) -> String {
        format!("disk runs at {}", self.dir.display())
    }
}

type MemRuns = Arc<Mutex<HashMap<String, Vec<u8>>>>;

/// In-memory run store for tests and simulations.
#[derive(Debug, Clone, Default)]
pub struct MemRunStore {
    runs: MemRuns,
}

impl MemRunStore {
    /// An empty store.
    pub fn new() -> MemRunStore {
        MemRunStore::default()
    }

    /// Names of the runs currently stored.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.runs.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of runs currently stored.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// Whether no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }
}

/// Sink that publishes its buffer into the shared map on flush/drop.
struct MemRunWriter {
    runs: MemRuns,
    name: String,
    buf: Vec<u8>,
}

impl Write for MemRunWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.runs.lock().insert(self.name.clone(), self.buf.clone());
        Ok(())
    }
}

impl Drop for MemRunWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl RunStore for MemRunStore {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(MemRunWriter {
            runs: Arc::clone(&self.runs),
            name: name.to_string(),
            buf: Vec::new(),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        let runs = self.runs.lock();
        let data = runs
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no run {name}")))?;
        Ok(Box::new(io::Cursor::new(data)))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.runs.lock().remove(name);
        Ok(())
    }

    fn describe(&self) -> String {
        format!("mem runs ({} stored)", self.len())
    }
}

/// Paces spill reads and writes through a (possibly shared) token
/// bucket — share the ingest bucket and spill traffic competes with
/// ingest for the same simulated device, exactly like a real disk.
pub struct ThrottledRunStore {
    inner: Arc<dyn RunStore>,
    bucket: TokenBucket,
}

impl ThrottledRunStore {
    /// Pace `inner` through `bucket`.
    pub fn new(inner: Arc<dyn RunStore>, bucket: TokenBucket) -> ThrottledRunStore {
        ThrottledRunStore { inner, bucket }
    }
}

struct ThrottledWriter {
    inner: Box<dyn Write + Send>,
    bucket: TokenBucket,
}

impl Write for ThrottledWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bucket.acquire(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct ThrottledReader {
    inner: Box<dyn Read + Send>,
    bucket: TokenBucket,
}

impl Read for ThrottledReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bucket.acquire(n as u64);
        Ok(n)
    }
}

impl RunStore for ThrottledRunStore {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(ThrottledWriter {
            inner: self.inner.create(name)?,
            bucket: self.bucket.clone(),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(ThrottledReader { inner: self.inner.open(name)?, bucket: self.bucket.clone() }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn describe(&self) -> String {
        format!("{} @ {:.1} MB/s", self.inner.describe(), self.bucket.rate() / (1024.0 * 1024.0))
    }
}

/// Meters spill I/O through an [`IngestMeter`]: reads feed the
/// `supmr.storage.bytes_read` family, writes the
/// `supmr.storage.bytes_written` family.
pub struct ObservedRunStore {
    inner: Arc<dyn RunStore>,
    meter: IngestMeter,
}

impl ObservedRunStore {
    /// Wrap `inner`, reporting into `meter`.
    pub fn new(inner: Arc<dyn RunStore>, meter: IngestMeter) -> ObservedRunStore {
        ObservedRunStore { inner, meter }
    }
}

struct ObservedWriter {
    inner: Box<dyn Write + Send>,
    meter: IngestMeter,
}

impl Write for ObservedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = Instant::now();
        let n = self.inner.write(buf)?;
        self.meter.record_write(n as u64, start.elapsed());
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct ObservedReader {
    inner: Box<dyn Read + Send>,
    meter: IngestMeter,
}

impl Read for ObservedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let start = Instant::now();
        let n = self.inner.read(buf)?;
        self.meter.record(n as u64, start.elapsed());
        Ok(n)
    }
}

impl RunStore for ObservedRunStore {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(ObservedWriter { inner: self.inner.create(name)?, meter: self.meter.clone() }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(ObservedReader { inner: self.inner.open(name)?, meter: self.meter.clone() }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn describe(&self) -> String {
        format!("observed {}", self.inner.describe())
    }
}

#[derive(Debug)]
struct FaultyState {
    read_fail_at: Option<u64>,
    write_fail_at: Option<u64>,
    kind: io::ErrorKind,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
}

impl FaultyState {
    fn check(&self, ctr: &AtomicU64, limit: Option<u64>, n: u64, dir: &str) -> io::Result<()> {
        let Some(limit) = limit else { return Ok(()) };
        if ctr.fetch_add(n, Ordering::Relaxed) + n > limit {
            return Err(io::Error::new(
                self.kind,
                format!("injected spill {dir} fault at byte {limit}"),
            ));
        }
        Ok(())
    }
}

/// Injects deterministic failures into spill I/O, the run-store
/// counterpart of [`FaultySource`](crate::FaultySource): reads (or
/// writes) fail once the cumulative bytes across all streams pass a
/// threshold.
pub struct FaultyRunStore {
    inner: Arc<dyn RunStore>,
    state: Arc<FaultyState>,
}

impl FaultyRunStore {
    /// Fail all reads after `fail_at` cumulative bytes with `kind`.
    pub fn fail_reads_after(
        inner: Arc<dyn RunStore>,
        fail_at: u64,
        kind: io::ErrorKind,
    ) -> FaultyRunStore {
        FaultyRunStore {
            inner,
            state: Arc::new(FaultyState {
                read_fail_at: Some(fail_at),
                write_fail_at: None,
                kind,
                read_bytes: AtomicU64::new(0),
                write_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Fail all writes after `fail_at` cumulative bytes with `kind`.
    pub fn fail_writes_after(
        inner: Arc<dyn RunStore>,
        fail_at: u64,
        kind: io::ErrorKind,
    ) -> FaultyRunStore {
        FaultyRunStore {
            inner,
            state: Arc::new(FaultyState {
                read_fail_at: None,
                write_fail_at: Some(fail_at),
                kind,
                read_bytes: AtomicU64::new(0),
                write_bytes: AtomicU64::new(0),
            }),
        }
    }
}

struct FaultyWriter {
    inner: Box<dyn Write + Send>,
    state: Arc<FaultyState>,
}

impl Write for FaultyWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.state.check(
            &self.state.write_bytes,
            self.state.write_fail_at,
            buf.len() as u64,
            "write",
        )?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct FaultyReader {
    inner: Box<dyn Read + Send>,
    state: Arc<FaultyState>,
}

impl Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.state.check(
            &self.state.read_bytes,
            self.state.read_fail_at,
            buf.len() as u64,
            "read",
        )?;
        self.inner.read(buf)
    }
}

impl RunStore for FaultyRunStore {
    fn create(&self, name: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(FaultyWriter {
            inner: self.inner.create(name)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(FaultyReader { inner: self.inner.open(name)?, state: Arc::clone(&self.state) }))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn describe(&self) -> String {
        format!("{} (faulty)", self.inner.describe())
    }
}

/// Deletes a named run on drop unless [`keep`](RunGuard::keep) was
/// called: a panic that unwinds through the spill pipeline removes its
/// run files instead of leaking them into the spill directory.
pub struct RunGuard {
    store: Arc<dyn RunStore>,
    name: String,
    kept: bool,
}

impl RunGuard {
    /// Guard the run called `name` in `store`.
    pub fn new(store: Arc<dyn RunStore>, name: impl Into<String>) -> RunGuard {
        RunGuard { store, name: name.into(), kept: false }
    }

    /// The guarded run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Keep the run on drop (it still gets deleted when the job's spill
    /// state is torn down via [`RunGuard::release`]).
    pub fn keep(&mut self) {
        self.kept = true;
    }

    /// Un-keep: the next drop deletes the run.
    pub fn release(&mut self) {
        self.kept = false;
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        if !self.kept {
            let _ = self.store.remove(&self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (DiskRunStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("supmr-spill-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        (DiskRunStore::create(&dir).unwrap(), dir)
    }

    fn write_run(store: &dyn RunStore, name: &str, data: &[u8]) {
        let mut w = store.create(name).unwrap();
        w.write_all(data).unwrap();
        w.flush().unwrap();
    }

    fn read_run(store: &dyn RunStore, name: &str) -> Vec<u8> {
        let mut buf = Vec::new();
        store.open(name).unwrap().read_to_end(&mut buf).unwrap();
        buf
    }

    #[test]
    fn disk_store_round_trip_and_remove() {
        let (store, dir) = temp_store("disk");
        write_run(&store, "p0-run0.dat", b"hello runs");
        assert_eq!(read_run(&store, "p0-run0.dat"), b"hello runs");
        store.remove("p0-run0.dat").unwrap();
        assert!(store.open("p0-run0.dat").is_err());
        // Removing a missing run is not an error.
        store.remove("p0-run0.dat").unwrap();
        assert!(store.describe().contains("disk runs"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_round_trip() {
        let store = MemRunStore::new();
        write_run(&store, "a", b"alpha");
        write_run(&store, "b", b"beta");
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(read_run(&store, "a"), b"alpha");
        store.remove("a").unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.open("a").is_err());
    }

    #[test]
    fn guard_deletes_on_drop_unless_kept() {
        let store = Arc::new(MemRunStore::new());
        write_run(store.as_ref(), "dropme", b"x");
        write_run(store.as_ref(), "keepme", b"y");
        {
            let _g = RunGuard::new(store.clone() as Arc<dyn RunStore>, "dropme");
            let mut k = RunGuard::new(store.clone() as Arc<dyn RunStore>, "keepme");
            k.keep();
        }
        assert_eq!(store.names(), vec!["keepme".to_string()]);
    }

    #[test]
    fn guard_cleans_up_across_a_panic() {
        let store = Arc::new(MemRunStore::new());
        write_run(store.as_ref(), "leaky", b"z");
        let store2 = store.clone();
        let result = std::panic::catch_unwind(move || {
            let _g = RunGuard::new(store2 as Arc<dyn RunStore>, "leaky");
            panic!("mid-spill failure");
        });
        assert!(result.is_err());
        assert!(store.is_empty(), "panic must not leak run files");
    }

    #[test]
    fn throttled_store_paces_writes() {
        let store = Arc::new(MemRunStore::new());
        let bucket = TokenBucket::with_burst(1_000_000.0, 32.0 * 1024.0);
        let throttled = ThrottledRunStore::new(store.clone(), bucket);
        let t0 = Instant::now();
        // 150KB at 1MB/s minus the 32KiB burst: >= ~0.11s.
        write_run(&throttled, "slow", &vec![7u8; 150_000]);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.10, "throttled write took {dt}s");
        assert_eq!(read_run(&throttled, "slow").len(), 150_000);
    }

    #[test]
    fn observed_store_feeds_both_directions() {
        let store = Arc::new(MemRunStore::new());
        let meter = IngestMeter::new();
        let observed = ObservedRunStore::new(store, meter.clone());
        write_run(&observed, "m", &vec![1u8; 4096]);
        assert_eq!(meter.bytes_written(), 4096);
        assert!(meter.write_calls() >= 1);
        let back = read_run(&observed, "m");
        assert_eq!(back.len(), 4096);
        assert_eq!(meter.bytes_read(), 4096);
    }

    #[test]
    fn faulty_store_fails_reads_past_the_threshold() {
        let store = Arc::new(MemRunStore::new());
        write_run(store.as_ref(), "r", &vec![2u8; 8192]);
        let faulty = FaultyRunStore::fail_reads_after(store, 1024, io::ErrorKind::BrokenPipe);
        let mut rd = faulty.open("r").unwrap();
        let mut buf = vec![0u8; 512];
        rd.read_exact(&mut buf).unwrap();
        let err = loop {
            if let Err(e) = rd.read_exact(&mut buf) {
                break e;
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn faulty_store_fails_writes_past_the_threshold() {
        let store = Arc::new(MemRunStore::new());
        let faulty = FaultyRunStore::fail_writes_after(store, 1024, io::ErrorKind::StorageFull);
        let mut w = faulty.create("w").unwrap();
        w.write_all(&vec![3u8; 512]).unwrap();
        let err = w.write_all(&vec![3u8; 1024]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn disk_store_survives_concurrent_runs() {
        let (store, dir) = temp_store("concurrent");
        let store = Arc::new(store);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = store.clone();
                std::thread::spawn(move || {
                    let name = format!("t{i}.dat");
                    write_run(s.as_ref(), &name, &vec![i as u8; 10_000]);
                    read_run(s.as_ref(), &name)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), vec![i as u8; 10_000]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
