//! Record formats and split-point adjustment.
//!
//! Inter-file chunking must not separate a key or value across two ingest
//! chunks, so the runtime "seeks to the user-defined chunk size, checks to
//! see if it is in the middle of a key or value, and then continually
//! increases the split point until reaching the end of the value" (§III-A).
//! For Terasort the terminator is `\r\n`; for text workloads it is `\n`;
//! fixed-width binary records round up to a record multiple.
//!
//! Terminator searches go through the SWAR scanners in [`crate::scan`]
//! (8 bytes per step instead of byte-at-a-time); the `CrLf` paths in
//! particular used to re-scan with a byte-stepping loop.

use crate::scan::{find_byte, find_crlf};

/// How records are delimited in the input byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFormat {
    /// Records end with a single `\n` (word-count text corpora).
    Newline,
    /// Records end with `\r\n` (the Terasort input format).
    CrLf,
    /// Fixed-width binary records of the given size in bytes.
    ///
    /// The width must be non-zero; constructors in this crate enforce it.
    FixedWidth(usize),
    /// The input is an opaque byte blob; any split point is valid.
    None,
}

impl RecordFormat {
    /// Adjust a desired split point `want` (an offset into `data`) forward
    /// to the first position that does not divide a record: the index just
    /// past the terminator of the record containing `want`.
    ///
    /// Returns `data.len()` if no terminator follows (the paper's chunker
    /// does the same — the final partial record travels with the last
    /// chunk).
    ///
    /// # Panics
    /// Panics if `want > data.len()` or a fixed width is zero.
    pub fn adjust_split_point(&self, data: &[u8], want: usize) -> usize {
        assert!(want <= data.len(), "split point beyond data");
        if want == 0 || want == data.len() {
            return want;
        }
        match *self {
            RecordFormat::None => want,
            RecordFormat::FixedWidth(w) => {
                assert!(w > 0, "record width must be non-zero");
                want.div_ceil(w).saturating_mul(w).min(data.len())
            }
            RecordFormat::Newline => match find_byte(&data[want..], b'\n') {
                Some(i) => want + i + 1,
                None => data.len(),
            },
            RecordFormat::CrLf => {
                // A split landing exactly between \r and \n is inside the
                // terminator; step back one so the scan finds that pair.
                let start =
                    if data[want - 1] == b'\r' && data[want] == b'\n' { want - 1 } else { want };
                match find_crlf(&data[start..]) {
                    Some(i) => start + i + 2,
                    None => data.len(),
                }
            }
        }
    }

    /// Whether `pos` is a valid record boundary in `data` (0 and EOF are
    /// always boundaries).
    pub fn is_boundary(&self, data: &[u8], pos: usize) -> bool {
        if pos == 0 || pos == data.len() {
            return true;
        }
        if pos > data.len() {
            return false;
        }
        match *self {
            RecordFormat::None => true,
            RecordFormat::FixedWidth(w) => w > 0 && pos.is_multiple_of(w),
            RecordFormat::Newline => data[pos - 1] == b'\n',
            RecordFormat::CrLf => pos >= 2 && data[pos - 2] == b'\r' && data[pos - 1] == b'\n',
        }
    }

    /// Iterate over the record slices of `data` (terminators included).
    /// The final record may lack a terminator.
    pub fn records<'d>(&self, data: &'d [u8]) -> RecordIter<'d> {
        RecordIter { format: *self, data, pos: 0 }
    }
}

/// Iterator over the records of a byte slice. See [`RecordFormat::records`].
#[derive(Debug)]
pub struct RecordIter<'d> {
    format: RecordFormat,
    data: &'d [u8],
    pos: usize,
}

impl<'d> Iterator for RecordIter<'d> {
    type Item = &'d [u8];

    fn next(&mut self) -> Option<&'d [u8]> {
        let (data, pos) = (self.data, self.pos);
        if pos >= data.len() {
            return None;
        }
        let end = match self.format {
            RecordFormat::None => data.len(),
            RecordFormat::FixedWidth(w) => {
                assert!(w > 0, "record width must be non-zero");
                (pos + w).min(data.len())
            }
            RecordFormat::Newline => match find_byte(&data[pos..], b'\n') {
                Some(i) => pos + i + 1,
                None => data.len(),
            },
            RecordFormat::CrLf => match find_crlf(&data[pos..]) {
                Some(i) => pos + i + 2,
                None => data.len(),
            },
        };
        let rec = &data[pos..end];
        self.pos = end;
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newline_split_moves_past_terminator() {
        let data = b"alpha\nbeta\ngamma\n";
        let f = RecordFormat::Newline;
        // Splitting mid-"beta" lands after beta's newline (index 11).
        assert_eq!(f.adjust_split_point(data, 7), 11);
        // Splitting exactly on a boundary... index 6 is 'b', the record
        // containing it ends at 11.
        assert_eq!(f.adjust_split_point(data, 6), 11);
        assert_eq!(f.adjust_split_point(data, 0), 0);
        assert_eq!(f.adjust_split_point(data, data.len()), data.len());
    }

    #[test]
    fn newline_without_trailing_terminator_goes_to_eof() {
        let data = b"alpha\nbeta";
        assert_eq!(RecordFormat::Newline.adjust_split_point(data, 8), data.len());
    }

    #[test]
    fn crlf_split_never_divides_the_pair() {
        let data = b"key1-val1\r\nkey2-val2\r\n";
        let f = RecordFormat::CrLf;
        // Mid-record.
        assert_eq!(f.adjust_split_point(data, 4), 11);
        // Exactly between \r (index 9) and \n (index 10).
        assert_eq!(f.adjust_split_point(data, 10), 11);
        // Right after a terminator is already a boundary-ish point; the
        // record containing index 11 is the second one, ending at 22.
        assert_eq!(f.adjust_split_point(data, 12), 22);
    }

    #[test]
    fn crlf_straddle_step_back_survives_the_swar_rewrite() {
        // Dedicated coverage for the \r|\n straddle fix: a split landing
        // between the pair must step back so the scan still finds it —
        // at every alignment relative to the SWAR lanes, including the
        // pair itself straddling an 8-byte word seam.
        for pad in 0..20 {
            let mut data = vec![b'x'; pad];
            data.extend_from_slice(b"\r\ntail\r\n");
            let f = RecordFormat::CrLf;
            // want = pad + 1 sits exactly between \r and \n.
            assert_eq!(f.adjust_split_point(&data, pad + 1), pad + 2, "pad {pad}");
            // And a mid-record split still finds the next pair.
            if pad > 0 {
                assert_eq!(f.adjust_split_point(&data, pad / 2 + 1).max(pad + 2), pad + 2);
            }
        }
    }

    #[test]
    fn crlf_ignores_bare_cr_and_bare_lf() {
        let data = b"a\rb\nc\r\nrest";
        // Bare \r and bare \n are data, not terminators.
        assert_eq!(RecordFormat::CrLf.adjust_split_point(data, 1), 7);
    }

    #[test]
    fn fixed_width_rounds_up() {
        let data = [0u8; 100];
        let f = RecordFormat::FixedWidth(8);
        assert_eq!(f.adjust_split_point(&data, 1), 8);
        assert_eq!(f.adjust_split_point(&data, 8), 8);
        assert_eq!(f.adjust_split_point(&data, 9), 16);
        // Rounds past EOF clamp to EOF (trailing partial record).
        assert_eq!(f.adjust_split_point(&data, 97), 100);
    }

    #[test]
    fn none_format_accepts_any_split() {
        let data = [1u8; 10];
        assert_eq!(RecordFormat::None.adjust_split_point(&data, 3), 3);
        assert!(RecordFormat::None.is_boundary(&data, 7));
    }

    #[test]
    #[should_panic(expected = "beyond data")]
    fn split_past_eof_panics() {
        RecordFormat::Newline.adjust_split_point(b"abc", 4);
    }

    #[test]
    fn boundary_checks() {
        let data = b"aa\nbb\n";
        let f = RecordFormat::Newline;
        assert!(f.is_boundary(data, 0));
        assert!(f.is_boundary(data, 3));
        assert!(!f.is_boundary(data, 2));
        assert!(f.is_boundary(data, 6));
        assert!(!f.is_boundary(data, 7)); // past EOF

        let g = RecordFormat::CrLf;
        let d2 = b"xy\r\nzw\r\n";
        assert!(g.is_boundary(d2, 4));
        assert!(!g.is_boundary(d2, 3));

        let h = RecordFormat::FixedWidth(4);
        assert!(h.is_boundary(&[0; 12], 8));
        assert!(!h.is_boundary(&[0; 12], 9));
    }

    #[test]
    fn record_iteration_newline() {
        let data = b"a\nbb\nccc";
        let recs: Vec<&[u8]> = RecordFormat::Newline.records(data).collect();
        assert_eq!(recs, vec![b"a\n".as_slice(), b"bb\n".as_slice(), b"ccc".as_slice()]);
    }

    #[test]
    fn record_iteration_crlf_and_fixed() {
        let data = b"k1\r\nk2\r\n";
        let recs: Vec<&[u8]> = RecordFormat::CrLf.records(data).collect();
        assert_eq!(recs, vec![b"k1\r\n".as_slice(), b"k2\r\n".as_slice()]);

        let data = [1u8, 2, 3, 4, 5];
        let recs: Vec<&[u8]> = RecordFormat::FixedWidth(2).records(&data).collect();
        assert_eq!(recs, vec![&[1u8, 2][..], &[3u8, 4][..], &[5u8][..]]);
    }

    #[test]
    fn record_iteration_empty_and_blob() {
        assert_eq!(RecordFormat::Newline.records(b"").count(), 0);
        let recs: Vec<&[u8]> = RecordFormat::None.records(b"blob").collect();
        assert_eq!(recs, vec![b"blob".as_slice()]);
    }

    #[test]
    fn record_iteration_handles_empty_records() {
        let recs: Vec<&[u8]> = RecordFormat::Newline.records(b"\nx\n\n").collect();
        assert_eq!(recs, vec![b"\n".as_slice(), b"x\n".as_slice(), b"\n".as_slice()]);
        let recs: Vec<&[u8]> = RecordFormat::CrLf.records(b"\r\na\r\n").collect();
        assert_eq!(recs, vec![b"\r\n".as_slice(), b"a\r\n".as_slice()]);
    }

    #[test]
    fn records_reassemble_to_input() {
        let data = b"one\ntwo\nthree\nfour";
        let mut rebuilt = Vec::new();
        for r in RecordFormat::Newline.records(data) {
            rebuilt.extend_from_slice(r);
        }
        assert_eq!(rebuilt, data);
    }
}
