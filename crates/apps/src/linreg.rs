//! Linear regression — partial sums into a five-slot array container.
//!
//! The Phoenix linear-regression application: the input is a stream of
//! `x y\n` samples, the map phase accumulates the five sufficient
//! statistics (n, Σx, Σy, Σx², Σxy) and the fit is computed from the
//! five reduced values. The intermediate set is five keys regardless of
//! input size — the extreme end of the combining spectrum.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::ArrayContainer;

/// Statistic slot indices.
pub const N: usize = 0;
/// Σx slot.
pub const SUM_X: usize = 1;
/// Σy slot.
pub const SUM_Y: usize = 2;
/// Σx² slot.
pub const SUM_XX: usize = 3;
/// Σxy slot.
pub const SUM_XY: usize = 4;
const SLOTS: usize = 5;

/// Least-squares linear regression over `x y` text lines.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression;

impl LinearRegression {
    /// A new regression job.
    pub fn new() -> LinearRegression {
        LinearRegression
    }
}

/// An ordered-by-bits wrapper so `f64` sums can live in the `Ord`-keyed
/// runtime plumbing. Not NaN-safe by design: regression sums of finite
/// inputs stay finite.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat(pub f64);

impl std::ops::AddAssign for Stat {
    fn add_assign(&mut self, rhs: Stat) {
        self.0 += rhs.0;
    }
}

impl MapReduce for LinearRegression {
    type Key = usize;
    type Value = Stat;
    type Combiner = Sum;
    type Output = Stat;
    type Container = ArrayContainer<Stat, Sum>;

    fn make_container(&self) -> Self::Container {
        ArrayContainer::new(SLOTS)
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<usize, Stat>) {
        for line in split.split(|&b| b == b'\n') {
            let mut fields = line
                .split(|b| b.is_ascii_whitespace())
                .filter(|f| !f.is_empty())
                .filter_map(|f| std::str::from_utf8(f).ok())
                .filter_map(|f| f.parse::<f64>().ok());
            let (Some(x), Some(y)) = (fields.next(), fields.next()) else {
                continue; // malformed lines are skipped, not fatal
            };
            emit.emit(N, Stat(1.0));
            emit.emit(SUM_X, Stat(x));
            emit.emit(SUM_Y, Stat(y));
            emit.emit(SUM_XX, Stat(x * x));
            emit.emit(SUM_XY, Stat(x * y));
        }
    }

    fn reduce(&self, _key: &usize, acc: Stat) -> Stat {
        acc
    }
}

/// The fitted line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope of the least-squares line.
    pub slope: f64,
    /// Intercept of the least-squares line.
    pub intercept: f64,
    /// Number of samples.
    pub n: u64,
}

/// Compute the fit from a finished job's output pairs.
/// Returns `None` for degenerate inputs (fewer than 2 samples or zero
/// x-variance).
pub fn fit(pairs: &[(usize, Stat)]) -> Option<Fit> {
    let mut stats = [0.0f64; SLOTS];
    for (k, Stat(v)) in pairs {
        if *k < SLOTS {
            stats[*k] += v;
        }
    }
    let n = stats[N];
    if n < 2.0 {
        return None;
    }
    let denom = n * stats[SUM_XX] - stats[SUM_X] * stats[SUM_X];
    if denom.abs() < f64::EPSILON * n {
        return None;
    }
    let slope = (n * stats[SUM_XY] - stats[SUM_X] * stats[SUM_Y]) / denom;
    let intercept = (stats[SUM_Y] - slope * stats[SUM_X]) / n;
    Some(Fit { slope, intercept, n: n as u64 })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::runtime::{Input, Job, JobConfig};
    use supmr::Chunking;
    use supmr_storage::MemSource;

    fn samples(slope: f64, intercept: f64, n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            let x = i as f64 / 10.0;
            let y = slope * x + intercept;
            out.extend_from_slice(format!("{x} {y}\n").as_bytes());
        }
        out
    }

    #[test]
    fn recovers_exact_line() {
        let data = samples(2.5, -1.0, 1000);
        let r =
            Job::new(LinearRegression::new()).run(Input::stream(MemSource::from(data))).unwrap();
        let f = fit(&r.pairs).unwrap();
        assert_eq!(f.n, 1000);
        assert!((f.slope - 2.5).abs() < 1e-9, "slope = {}", f.slope);
        assert!((f.intercept + 1.0).abs() < 1e-9, "intercept = {}", f.intercept);
    }

    #[test]
    fn chunked_pipeline_gives_same_fit() {
        let data = samples(0.5, 3.0, 2000);
        let mut config = JobConfig::default();
        config.chunking = Chunking::Inter { chunk_bytes: 512 };
        let r = Job::new(LinearRegression::new())
            .config(config)
            .run(Input::stream(MemSource::from(data)))
            .unwrap();
        let f = fit(&r.pairs).unwrap();
        assert!((f.slope - 0.5).abs() < 1e-9);
        assert!((f.intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let data = b"1 2\nnot numbers\n3\n2 4\n".to_vec();
        let r =
            Job::new(LinearRegression::new()).run(Input::stream(MemSource::from(data))).unwrap();
        let f = fit(&r.pairs).unwrap();
        assert_eq!(f.n, 2);
        assert!((f.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_have_no_fit() {
        assert!(fit(&[]).is_none());
        // One sample.
        assert!(fit(&[(N, Stat(1.0)), (SUM_X, Stat(1.0))]).is_none());
        // Zero x-variance: all x equal.
        let r = Job::new(LinearRegression::new())
            .run(Input::stream(MemSource::from(b"1 2\n1 3\n1 4\n".to_vec())))
            .unwrap();
        assert!(fit(&r.pairs).is_none());
    }
}
