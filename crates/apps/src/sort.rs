//! TeraSort — the paper's merge-bound benchmark (60GB input).
//!
//! Every `\r\n`-terminated 100-byte record becomes one `(key, record)`
//! pair where the key is the record's first 10 bytes. Keys are
//! (effectively) unique, so the application uses the unlocked container
//! — "each mapper outputs to its key range in the array and each reducer
//! operates only on its key range" — and all the interesting work is in
//! the merge phase: the baseline's iterative 2-way rounds vs SupMR's
//! p-way merge.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Identity;
use supmr::container::UnlockedContainer;
use supmr::runtime::{FrameIter, Input, JobConfig, MergeMode, Pipeline, PipelineResult, Stage};
use supmr::PairCodec;
use supmr_storage::RecordFormat;
use supmr_workloads::TERA_KEY_LEN;

// The `&Vec` parameters are forced by `PairCodec<Vec<u8>, Vec<u8>>`'s
// fn-pointer signature.
#[allow(clippy::ptr_arg)]
fn encode_pair(key: &Vec<u8>, record: &Vec<u8>, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(record);
}

fn decode_pair(rec: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
    let key = rec.get(4..4 + klen)?.to_vec();
    let record = rec.get(4 + klen..)?.to_vec();
    Some((key, record))
}

#[allow(clippy::ptr_arg)]
fn pair_size_hint(key: &Vec<u8>, record: &Vec<u8>) -> usize {
    // Two Vec headers plus both heap allocations.
    2 * std::mem::size_of::<Vec<u8>>() + key.len() + record.len()
}

/// How a `(key, record)` sort pair crosses process boundaries — spill
/// runs and stage hand-offs alike: `u32 LE` key length, key bytes,
/// record bytes.
pub const TERA_PAIRS: PairCodec<Vec<u8>, Vec<u8>> =
    PairCodec { encode: encode_pair, decode: decode_pair, size_hint: pair_size_hint };

/// The Terasort application.
#[derive(Debug, Clone, Default)]
pub struct TeraSort;

impl TeraSort {
    /// A sorter for gensort-style CRLF records.
    pub fn new() -> TeraSort {
        TeraSort
    }

    /// The record format this application expects
    /// ([`RecordFormat::CrLf`]); pass it to `JobConfig.record_format`.
    pub fn record_format() -> RecordFormat {
        RecordFormat::CrLf
    }
}

impl MapReduce for TeraSort {
    type Key = Vec<u8>;
    type Value = Vec<u8>;
    type Combiner = Identity;
    type Output = Vec<u8>;
    type Container = UnlockedContainer<Vec<u8>, Vec<u8>>;

    fn make_container(&self) -> Self::Container {
        UnlockedContainer::new()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<Vec<u8>, Vec<u8>>) {
        for rec in RecordFormat::CrLf.records(split) {
            // Short trailing fragments (no full key) are kept with an
            // as-is key so no input byte is ever dropped.
            let key_len = rec.len().min(TERA_KEY_LEN);
            emit.emit(rec[..key_len].to_vec(), rec.to_vec());
        }
    }

    fn reduce(&self, _key: &Vec<u8>, record: Vec<u8>) -> Vec<u8> {
        record
    }

    /// Spill format: [`TERA_PAIRS`].
    fn spill_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }

    /// Hand-off format: [`TERA_PAIRS`], so a sort job can feed a
    /// downstream pipeline stage.
    fn handoff_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }
}

/// Stage 1 of the two-stage sort pipeline ([`terasort_pipeline`]): keys
/// every record like [`TeraSort`] but leaves its output *unsorted*, so
/// the reduce workers stream keyed records straight into hand-off
/// frames — the "sample"/partition pass of a sample→sort job.
#[derive(Debug, Clone, Default)]
pub struct TeraPartition;

impl MapReduce for TeraPartition {
    type Key = Vec<u8>;
    type Value = Vec<u8>;
    type Combiner = Identity;
    type Output = Vec<u8>;
    type Container = UnlockedContainer<Vec<u8>, Vec<u8>>;

    fn make_container(&self) -> Self::Container {
        UnlockedContainer::new()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<Vec<u8>, Vec<u8>>) {
        TeraSort.map(split, emit);
    }

    fn reduce(&self, _key: &Vec<u8>, record: Vec<u8>) -> Vec<u8> {
        record
    }

    fn spill_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }

    fn handoff_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }
}

/// Stage 2 of the two-stage sort pipeline: maps over the
/// [`TeraPartition`] hand-off frames (decoding each with
/// [`TERA_PAIRS`]) and lets its merge phase produce the globally
/// sorted order.
#[derive(Debug, Clone, Default)]
pub struct TeraMerge;

impl MapReduce for TeraMerge {
    type Key = Vec<u8>;
    type Value = Vec<u8>;
    type Combiner = Identity;
    type Output = Vec<u8>;
    type Container = UnlockedContainer<Vec<u8>, Vec<u8>>;

    fn make_container(&self) -> Self::Container {
        UnlockedContainer::new()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<Vec<u8>, Vec<u8>>) {
        for (key, record) in FrameIter::new(split, TERA_PAIRS) {
            emit.emit(key, record);
        }
    }

    fn reduce(&self, _key: &Vec<u8>, record: Vec<u8>) -> Vec<u8> {
        record
    }

    fn spill_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }

    fn handoff_codec(&self) -> Option<PairCodec<Vec<u8>, Vec<u8>>> {
        Some(TERA_PAIRS)
    }
}

/// Sort teragen-format `input` through the two-stage pipeline:
/// [`TeraPartition`] keys the records and streams them downstream as
/// hand-off frames (no intermediate pair vector), then [`TeraMerge`]
/// sorts them under `config.merge`. `config` also supplies the worker
/// counts, chunking, and memory budget for both stages; stage 1's
/// record format and merge mode are forced to CRLF and unsorted.
///
/// The output is byte-identical to a hand-wired single-stage
/// [`TeraSort`] job with the same merge mode.
///
/// # Errors
/// Whatever [`Pipeline::run`] surfaces for either stage.
pub fn terasort_pipeline(
    input: Input,
    config: JobConfig,
) -> supmr::Result<PipelineResult<Vec<u8>, Vec<u8>>> {
    let mut partition_config = config.clone();
    partition_config.record_format = TeraSort::record_format();
    partition_config.merge = MergeMode::Unsorted;
    let mut p: Pipeline<Vec<u8>, Vec<u8>> = Pipeline::new();
    let keyed =
        p.stage(Stage::new("partition", TeraPartition).input(input).config(partition_config));
    p.stage(Stage::new("sort", TeraMerge).reads(keyed));
    p.config(config).run()
}

/// Check that a job's output is sorted by key and contains exactly the
/// records of `gen` (used by tests and the benchmark harness).
pub fn validate_sorted_output(
    pairs: &[(Vec<u8>, Vec<u8>)],
    expected_records: u64,
) -> Result<(), String> {
    if pairs.len() as u64 != expected_records {
        return Err(format!("expected {expected_records} records, got {}", pairs.len()));
    }
    for w in pairs.windows(2) {
        if w[0].0 > w[1].0 {
            return Err(format!("output not sorted: {:?} > {:?}", w[0].0, w[1].0));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::api::VecEmit;
    use supmr::runtime::{Input, Job, JobConfig, MergeMode};
    use supmr::Chunking;
    use supmr_storage::MemSource;
    use supmr_workloads::TeraGen;

    #[test]
    fn map_extracts_ten_byte_keys() {
        let gen = TeraGen::new(1, 3);
        let data = gen.generate_all();
        let mut sink = VecEmit::default();
        TeraSort::new().map(&data, &mut sink);
        assert_eq!(sink.pairs.len(), 3);
        for (i, (key, rec)) in sink.pairs.iter().enumerate() {
            assert_eq!(key.len(), TERA_KEY_LEN);
            assert_eq!(rec.len(), 100);
            assert_eq!(key.as_slice(), &gen.record(i as u64)[..TERA_KEY_LEN]);
        }
    }

    #[test]
    fn trailing_fragment_is_not_dropped() {
        let mut sink = VecEmit::default();
        TeraSort::new().map(b"short", &mut sink);
        assert_eq!(sink.pairs.len(), 1);
        assert_eq!(sink.pairs[0].1, b"short".to_vec());
    }

    #[test]
    fn end_to_end_sorts_teragen_data() {
        let gen = TeraGen::new(33, 500);
        let mut config = JobConfig::default();
        config.record_format = TeraSort::record_format();
        config.chunking = Chunking::Inter { chunk_bytes: 8_000 };
        config.merge = MergeMode::PWay { ways: 4 };
        let r = Job::new(TeraSort::new())
            .config(config)
            .run(Input::stream(MemSource::from(gen.generate_all())))
            .unwrap();
        validate_sorted_output(&r.pairs, 500).unwrap();
        // Keys really are the sorted multiset of generated keys.
        let mut expected: Vec<Vec<u8>> = (0..500).map(|i| gen.key(i).to_vec()).collect();
        expected.sort();
        let got: Vec<Vec<u8>> = r.pairs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn two_stage_pipeline_matches_the_single_job() {
        let gen = TeraGen::new(7, 400);
        let mut config = JobConfig::default();
        config.record_format = TeraSort::record_format();
        config.chunking = Chunking::Inter { chunk_bytes: 8_000 };
        config.merge = MergeMode::PWay { ways: 4 };
        let single = Job::new(TeraSort::new())
            .config(config.clone())
            .run(Input::stream(MemSource::from(gen.generate_all())))
            .unwrap();
        let piped =
            terasort_pipeline(Input::stream(MemSource::from(gen.generate_all())), config).unwrap();
        assert_eq!(piped.pairs, single.pairs, "pipeline output must match the single job");
        let handoff = piped.report.stages[0].handoff.expect("partition stage hands off");
        assert_eq!(handoff.pairs, 400);
        assert_eq!(handoff.materialized_pairs, 0, "unsorted hand-off must stream");
    }

    #[test]
    fn validator_catches_problems() {
        let good = vec![(b"a".to_vec(), vec![]), (b"b".to_vec(), vec![])];
        assert!(validate_sorted_output(&good, 2).is_ok());
        assert!(validate_sorted_output(&good, 3).is_err());
        let bad = vec![(b"b".to_vec(), vec![]), (b"a".to_vec(), vec![])];
        assert!(validate_sorted_output(&bad, 2).is_err());
    }
}
