//! Grep / string match: count occurrences of fixed patterns.
//!
//! The Phoenix string-match family: the map function scans its split for
//! a set of fixed byte patterns and emits `(pattern, 1)` per hit; the
//! output is one count per pattern. Map-heavy with a tiny intermediate
//! set — the opposite end of the spectrum from sort.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::CompactKey;
use supmr_storage::scan::find_byte;

/// Count occurrences of fixed byte patterns.
#[derive(Debug, Clone)]
pub struct Grep {
    patterns: Vec<Vec<u8>>,
}

impl Grep {
    /// A matcher for the given patterns. Empty patterns are ignored.
    pub fn new<P: Into<Vec<u8>>>(patterns: Vec<P>) -> Grep {
        Grep {
            patterns: patterns
                .into_iter()
                .map(Into::into)
                .filter(|p: &Vec<u8>| !p.is_empty())
                .collect(),
        }
    }

    /// The configured patterns.
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }
}

/// Count non-overlapping occurrences of `needle` in `haystack`.
///
/// The word-at-a-time [`find_byte`] scanner skips to each candidate
/// first byte; only candidates pay the full slice comparison, so the
/// common no-match stretches run at SWAR speed instead of byte-at-a-time.
fn count_occurrences(haystack: &[u8], needle: &[u8]) -> u64 {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    let (&first, rest) = needle.split_first().expect("needle checked non-empty");
    let last_start = haystack.len() - needle.len();
    let mut count = 0;
    let mut i = 0;
    while i <= last_start {
        let Some(j) = find_byte(&haystack[i..], first) else { break };
        let start = i + j;
        if start > last_start {
            break;
        }
        if &haystack[start + 1..start + needle.len()] == rest {
            count += 1;
            i = start + needle.len();
        } else {
            i = start + 1;
        }
    }
    count
}

impl MapReduce for Grep {
    type Key = CompactKey;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<CompactKey, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<CompactKey, u64>) {
        for pattern in &self.patterns {
            let hits = count_occurrences(split, pattern);
            if hits > 0 {
                emit.emit_bytes(pattern, hits);
            }
        }
    }

    fn reduce(&self, _key: &CompactKey, count: u64) -> u64 {
        count
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::api::VecEmit;
    use supmr::runtime::{Input, Job, JobConfig};
    use supmr::Chunking;
    use supmr_storage::MemSource;

    #[test]
    fn counts_non_overlapping_occurrences() {
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 2);
        assert_eq!(count_occurrences(b"abcabcab", b"abc"), 2);
        assert_eq!(count_occurrences(b"xyz", b"q"), 0);
        assert_eq!(count_occurrences(b"", b"a"), 0);
        assert_eq!(count_occurrences(b"a", b""), 0);
        // First-byte candidate too close to the end to fit the needle.
        assert_eq!(count_occurrences(b"xxa", b"ab"), 0);
        assert_eq!(count_occurrences(b"aab", b"ab"), 1);
    }

    #[test]
    fn map_emits_only_matching_patterns() {
        let grep = Grep::new(vec![&b"cat"[..], &b"dog"[..], &b""[..]]);
        assert_eq!(grep.patterns().len(), 2, "empty pattern dropped");
        let mut sink = VecEmit::default();
        grep.map(b"cat catalog dogcat", &mut sink);
        let get = |p: &[u8]| sink.pairs.iter().find(|(k, _)| k.as_bytes() == p).map(|(_, c)| *c);
        assert_eq!(get(b"cat"), Some(3));
        assert_eq!(get(b"dog"), Some(1));
    }

    #[test]
    fn end_to_end_matches_on_chunked_input() {
        // Lines keep patterns intact across chunk boundaries.
        let mut text = Vec::new();
        for i in 0..200 {
            text.extend_from_slice(
                format!("line {i} with needle inside and more text\n").as_bytes(),
            );
        }
        let mut config = JobConfig::default();
        config.chunking = Chunking::Inter { chunk_bytes: 512 };
        config.split_bytes = 128;
        let r = Job::new(Grep::new(vec![b"needle".to_vec(), b"missing".to_vec()]))
            .config(config)
            .run(Input::stream(MemSource::from(text)))
            .unwrap();
        assert_eq!(r.pairs.len(), 1);
        assert_eq!(r.pairs[0], (CompactKey::from("needle"), 200));
    }
}
