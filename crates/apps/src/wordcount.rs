//! Word count — the paper's ingest-bound benchmark (155GB input).
//!
//! Maps text splits into `(word, 1)` pairs; the hash container's sum
//! combiner collapses them at insert time, so the 155GB input shrinks to
//! a vocabulary-sized intermediate set and the reduce/merge phases are
//! nearly free (Table II: 0.03s / 0.01s). What remains is ingest — which
//! is exactly why the ingest chunk pipeline helps this application most.
//!
//! The map path is the SWAR/zero-copy fast path end to end: the
//! tokenizer walks word-class runs eight bytes at a time
//! ([`scan::tokens`]), every token is emitted as a *borrowed* slice of
//! the ingest chunk ([`Emit::emit_bytes`]), and [`CompactKey`] keeps
//! vocabulary words ≤ 22 bytes inline — so a hot word costs zero
//! allocations after its first appearance.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::{CompactKey, PairCodec};
use supmr_storage::scan::{self, ByteClass};

/// The word count application.
#[derive(Debug, Clone, Default)]
pub struct WordCount {
    /// Fold words to ASCII lowercase before counting.
    pub case_insensitive: bool,
}

impl WordCount {
    /// Case-sensitive word count.
    pub fn new() -> WordCount {
        WordCount::default()
    }

    /// Case-insensitive word count.
    pub fn case_insensitive() -> WordCount {
        WordCount { case_insensitive: true }
    }
}

impl MapReduce for WordCount {
    type Key = CompactKey;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<CompactKey, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<CompactKey, u64>) {
        if self.case_insensitive {
            // Fold case during tokenization, on the borrowed slice, into
            // one reusable scratch buffer — the container still probes
            // with borrowed bytes, so a token allocates at most once (on
            // its first container insert), never per emission.
            let mut folded = Vec::with_capacity(CompactKey::INLINE_CAP);
            for word in scan::tokens(split, ByteClass::Word) {
                folded.clear();
                scan::push_ascii_lower(word, &mut folded);
                emit.emit_bytes(&folded, 1);
            }
        } else {
            for word in scan::tokens(split, ByteClass::Word) {
                emit.emit_bytes(word, 1);
            }
        }
    }

    fn reduce(&self, _key: &CompactKey, count: u64) -> u64 {
        count
    }

    /// Spill format: `u32 LE` word length, word bytes, `u64 LE` count —
    /// byte-identical to the `String`-keyed codec it replaced.
    fn spill_codec(&self) -> Option<PairCodec<CompactKey, u64>> {
        fn encode(key: &CompactKey, count: &u64, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        fn decode(rec: &[u8]) -> Option<(CompactKey, u64)> {
            let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
            let key = CompactKey::from_bytes(rec.get(4..4 + klen)?);
            let count = u64::from_le_bytes(rec.get(4 + klen..4 + klen + 8)?.try_into().ok()?);
            (rec.len() == 4 + klen + 8).then_some((key, count))
        }
        fn size_hint(key: &CompactKey, _count: &u64) -> usize {
            // Inline cell + any heap spill + the u64 accumulator.
            std::mem::size_of::<CompactKey>() + key.heap_bytes() + std::mem::size_of::<u64>()
        }
        Some(PairCodec { encode, decode, size_hint })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::api::VecEmit;
    use supmr::runtime::{Input, Job, JobConfig, MergeMode};
    use supmr_storage::MemSource;

    #[test]
    fn tokenizes_on_non_word_bytes() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"it's a test--really, a_test!", &mut sink);
        let words: Vec<String> = sink.pairs.iter().map(|(w, _)| w.to_string()).collect();
        assert_eq!(words, vec!["it's", "a", "test", "really", "a_test"]);
    }

    #[test]
    fn case_folding() {
        let mut sink = VecEmit::default();
        WordCount::case_insensitive().map(b"The THE the", &mut sink);
        assert!(!sink.pairs.is_empty());
        assert!(sink.pairs.iter().all(|(w, _)| w.as_bytes() == b"the"));
    }

    #[test]
    fn word_at_split_edges_counted_once() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"edge", &mut sink);
        assert_eq!(sink.pairs, vec![(CompactKey::from("edge"), 1)]);
    }

    #[test]
    fn empty_and_punctuation_only_splits() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"", &mut sink);
        WordCount::new().map(b"--- ... !!!", &mut sink);
        assert!(sink.pairs.is_empty());
    }

    #[test]
    fn end_to_end_counts_match_reference() {
        let text = b"the quick the lazy the dog dog".to_vec();
        let mut config = JobConfig::default();
        config.merge = MergeMode::PWay { ways: 2 };
        let r = Job::new(WordCount::new())
            .config(config)
            .run(Input::stream(MemSource::from(text)))
            .unwrap();
        assert_eq!(
            r.pairs,
            vec![
                (CompactKey::from("dog"), 2),
                (CompactKey::from("lazy"), 1),
                (CompactKey::from("quick"), 1),
                (CompactKey::from("the"), 3),
            ]
        );
    }
}
