//! Word count — the paper's ingest-bound benchmark (155GB input).
//!
//! Maps text splits into `(word, 1)` pairs; the hash container's sum
//! combiner collapses them at insert time, so the 155GB input shrinks to
//! a vocabulary-sized intermediate set and the reduce/merge phases are
//! nearly free (Table II: 0.03s / 0.01s). What remains is ingest — which
//! is exactly why the ingest chunk pipeline helps this application most.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::HashContainer;
use supmr::PairCodec;

/// The word count application.
#[derive(Debug, Clone, Default)]
pub struct WordCount {
    /// Fold words to ASCII lowercase before counting.
    pub case_insensitive: bool,
}

impl WordCount {
    /// Case-sensitive word count.
    pub fn new() -> WordCount {
        WordCount::default()
    }

    /// Case-insensitive word count.
    pub fn case_insensitive() -> WordCount {
        WordCount { case_insensitive: true }
    }
}

/// Is `b` part of a word?
#[inline]
fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'\''
}

impl MapReduce for WordCount {
    type Key = String;
    type Value = u64;
    type Combiner = Sum;
    type Output = u64;
    type Container = HashContainer<String, u64, Sum>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<String, u64>) {
        let mut start = None;
        for (i, &b) in split.iter().enumerate() {
            if is_word_byte(b) {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                self.emit_word(&split[s..i], emit);
            }
        }
        if let Some(s) = start {
            self.emit_word(&split[s..], emit);
        }
    }

    fn reduce(&self, _key: &String, count: u64) -> u64 {
        count
    }

    /// Spill format: `u32 LE` word length, word bytes, `u64 LE` count.
    fn spill_codec(&self) -> Option<PairCodec<String, u64>> {
        fn encode(key: &String, count: &u64, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        fn decode(rec: &[u8]) -> Option<(String, u64)> {
            let klen = u32::from_le_bytes(rec.get(..4)?.try_into().ok()?) as usize;
            let key = String::from_utf8(rec.get(4..4 + klen)?.to_vec()).ok()?;
            let count = u64::from_le_bytes(rec.get(4 + klen..4 + klen + 8)?.try_into().ok()?);
            (rec.len() == 4 + klen + 8).then_some((key, count))
        }
        fn size_hint(key: &String, _count: &u64) -> usize {
            // String header + heap bytes + the u64 accumulator.
            std::mem::size_of::<String>() + key.len() + std::mem::size_of::<u64>()
        }
        Some(PairCodec { encode, decode, size_hint })
    }
}

impl WordCount {
    fn emit_word(&self, word: &[u8], emit: &mut dyn Emit<String, u64>) {
        let mut w = String::from_utf8_lossy(word).into_owned();
        if self.case_insensitive {
            w.make_ascii_lowercase();
        }
        emit.emit(w, 1);
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::api::VecEmit;
    use supmr::runtime::{run_job, Input, JobConfig, MergeMode};
    use supmr_storage::MemSource;

    #[test]
    fn tokenizes_on_non_word_bytes() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"it's a test--really, a_test!", &mut sink);
        let words: Vec<&str> = sink.pairs.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["it's", "a", "test", "really", "a_test"]);
    }

    #[test]
    fn case_folding() {
        let mut sink = VecEmit::default();
        WordCount::case_insensitive().map(b"The THE the", &mut sink);
        assert!(sink.pairs.iter().all(|(w, _)| w == "the"));
    }

    #[test]
    fn word_at_split_edges_counted_once() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"edge", &mut sink);
        assert_eq!(sink.pairs, vec![("edge".to_string(), 1)]);
    }

    #[test]
    fn empty_and_punctuation_only_splits() {
        let mut sink = VecEmit::default();
        WordCount::new().map(b"", &mut sink);
        WordCount::new().map(b"--- ... !!!", &mut sink);
        assert!(sink.pairs.is_empty());
    }

    #[test]
    fn end_to_end_counts_match_reference() {
        let text = b"the quick the lazy the dog dog".to_vec();
        let mut config = JobConfig::default();
        config.merge = MergeMode::PWay { ways: 2 };
        let r = run_job(WordCount::new(), Input::stream(MemSource::from(text)), config).unwrap();
        assert_eq!(
            r.pairs,
            vec![
                ("dog".to_string(), 2),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 1),
                ("the".to_string(), 3),
            ]
        );
    }
}
