//! KMeans — iterative MapReduce on the scale-up runtime.
//!
//! The related-work section's iterative frameworks (Twister, HaLoop)
//! exist because MapReduce jobs like kmeans run the same map/reduce
//! pair many times; SupMR borrows their persistent-container idea for
//! its multi-round map phase. This application closes the loop the
//! other way: the kmeans *driver* launches one SupMR job per iteration
//! — re-ingesting through the chunk pipeline each time — so the ingest
//! optimization compounds once per iteration, which is exactly the
//! scenario where a pipeline's per-pass savings multiply.
//!
//! Each map task assigns its points to the nearest current centroid
//! and emits partial sums `(cluster, (Σx, Σy, n))` into a dense array
//! container; the driver recomputes centroids from the k reduced
//! values and iterates to convergence.

use std::io;
use std::sync::{Arc, Mutex};
use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::ArrayContainer;
use supmr::runtime::{Input, JobConfig, JobReport, Pipeline, Stage};
use supmr::SupmrError;

/// Partial sums for one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterSum {
    /// Σx of assigned points.
    pub sum_x: f64,
    /// Σy of assigned points.
    pub sum_y: f64,
    /// Number of assigned points.
    pub n: u64,
}

impl std::ops::AddAssign for ClusterSum {
    fn add_assign(&mut self, rhs: ClusterSum) {
        self.sum_x += rhs.sum_x;
        self.sum_y += rhs.sum_y;
        self.n += rhs.n;
    }
}

/// One kmeans assignment pass as a MapReduce job.
#[derive(Debug, Clone)]
pub struct KMeansStep {
    centroids: Vec<(f64, f64)>,
}

impl KMeansStep {
    /// A step assigning to the given centroids.
    ///
    /// # Panics
    /// Panics if `centroids` is empty.
    pub fn new(centroids: Vec<(f64, f64)>) -> KMeansStep {
        assert!(!centroids.is_empty(), "kmeans needs at least one centroid");
        KMeansStep { centroids }
    }

    fn nearest(&self, x: f64, y: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &(cx, cy)) in self.centroids.iter().enumerate() {
            let d = (x - cx).powi(2) + (y - cy).powi(2);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl MapReduce for KMeansStep {
    type Key = usize;
    type Value = ClusterSum;
    type Combiner = Sum;
    type Output = ClusterSum;
    type Container = ArrayContainer<ClusterSum, Sum>;

    fn make_container(&self) -> Self::Container {
        ArrayContainer::new(self.centroids.len())
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<usize, ClusterSum>) {
        for line in split.split(|&b| b == b'\n') {
            let mut fields = line
                .split(|b| b.is_ascii_whitespace())
                .filter(|f| !f.is_empty())
                .filter_map(|f| std::str::from_utf8(f).ok())
                .filter_map(|f| f.parse::<f64>().ok());
            let (Some(x), Some(y)) = (fields.next(), fields.next()) else {
                continue;
            };
            emit.emit(self.nearest(x, y), ClusterSum { sum_x: x, sum_y: y, n: 1 });
        }
    }

    fn reduce(&self, _key: &usize, acc: ClusterSum) -> ClusterSum {
        acc
    }
}

/// Result of a full kmeans run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids.
    pub centroids: Vec<(f64, f64)>,
    /// Iterations executed (≤ the configured maximum).
    pub iterations: usize,
    /// Whether the final iteration moved every centroid less than the
    /// tolerance.
    pub converged: bool,
    /// Total points assigned in the final iteration.
    pub points: u64,
    /// The pipeline's aggregated report: totals across all iterations,
    /// with [`JobReport::stages`] carrying one entry per pass.
    pub report: JobReport,
}

/// Driver state shared between the per-iteration step factory and the
/// convergence predicate of the iterative pipeline.
#[derive(Debug)]
struct KMeansState {
    centroids: Vec<(f64, f64)>,
    converged: bool,
    points: u64,
}

/// Run kmeans to convergence as an iterative single-stage
/// [`Pipeline`]: [`Stage::from_factory`] re-parameterizes the
/// assignment step with the current centroids each pass,
/// [`Stage::input_with`] re-opens the point corpus through `make_input`
/// (the driver re-ingests each pass, as a real out-of-core job would),
/// and [`Pipeline::until`] recomputes centroids from the reduced
/// cluster sums and stops once every centroid moves less than
/// `tolerance`.
///
/// # Errors
/// Propagates [`supmr::SupmrError`]s from each iteration's job, plus
/// failures to rebuild the input between iterations (as ingest errors).
pub fn run_kmeans(
    mut make_input: impl FnMut() -> io::Result<Input> + Send + 'static,
    initial_centroids: Vec<(f64, f64)>,
    config: &JobConfig,
    max_iterations: usize,
    tolerance: f64,
) -> supmr::Result<KMeansResult> {
    assert!(!initial_centroids.is_empty(), "kmeans needs at least one centroid");
    if max_iterations == 0 {
        return Ok(KMeansResult {
            centroids: initial_centroids,
            iterations: 0,
            converged: false,
            points: 0,
            report: JobReport::default(),
        });
    }
    let state = Arc::new(Mutex::new(KMeansState {
        centroids: initial_centroids,
        converged: false,
        points: 0,
    }));

    let step_state = Arc::clone(&state);
    let mut p: Pipeline<usize, ClusterSum> = Pipeline::new();
    p.stage(
        Stage::from_factory("assign", move |_| {
            KMeansStep::new(step_state.lock().unwrap().centroids.clone())
        })
        .input_with(move |_| make_input().map_err(SupmrError::from)),
    );

    let pred_state = Arc::clone(&state);
    let result =
        p.config(config.clone())
            .until(move |report| {
                let mut st = pred_state.lock().unwrap();
                st.points = report.pairs.iter().map(|(_, s)| s.n).sum();
                let mut next = st.centroids.clone();
                for (cluster, sum) in report.pairs {
                    if sum.n > 0 {
                        next[*cluster] = (sum.sum_x / sum.n as f64, sum.sum_y / sum.n as f64);
                    }
                    // Empty clusters keep their previous centroid.
                }
                st.converged =
                    st.centroids.iter().zip(&next).all(|(a, b)| {
                        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt() < tolerance
                    });
                st.centroids = next;
                st.converged
            })
            .max_iterations(max_iterations as u64)
            .run()?;

    let st = state.lock().unwrap();
    Ok(KMeansResult {
        centroids: st.centroids.clone(),
        iterations: result.iterations as usize,
        converged: st.converged,
        points: st.points,
        report: result.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr::Chunking;
    use supmr_storage::MemSource;
    use supmr_workloads::points::{clustered_points, true_centers, PointsConfig};

    fn config() -> JobConfig {
        JobConfig { map_workers: 3, reduce_workers: 2, split_bytes: 8192, ..JobConfig::default() }
    }

    fn match_centers(found: &[(f64, f64)], truth: &[(f64, f64)], tol: f64) {
        for &(tx, ty) in truth {
            let nearest = found
                .iter()
                .map(|&(x, y)| ((x - tx).powi(2) + (y - ty).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < tol, "no centroid near ({tx},{ty}), best {nearest}");
        }
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pc = PointsConfig { clusters: 3, points_per_cluster: 300, ..Default::default() };
        let data = clustered_points(11, &pc);
        let truth = true_centers(&pc);
        // Start centroids near (but not at) the truth so label
        // correspondence is deterministic.
        let init: Vec<(f64, f64)> = truth.iter().map(|&(x, y)| (x + 1.0, y - 1.0)).collect();
        let result = run_kmeans(
            move || Ok(Input::stream(MemSource::from(data.clone()))),
            init,
            &config(),
            30,
            1e-6,
        )
        .unwrap();
        assert!(result.converged, "did not converge in {} iterations", result.iterations);
        assert_eq!(result.points, 900);
        match_centers(&result.centroids, &truth, 0.2);
        assert_eq!(
            result.report.stages.len(),
            result.iterations,
            "the pipeline reports one stage execution per pass"
        );
        assert!(result.report.stats.map_tasks > 0, "aggregated counters are populated");
    }

    #[test]
    fn chunked_iterations_give_same_centroids() {
        let pc = PointsConfig { clusters: 2, points_per_cluster: 200, ..Default::default() };
        let data = clustered_points(5, &pc);
        let init = vec![(1.0, 0.0), (-1.0, 0.0)];
        let base_data = data.clone();
        let base = run_kmeans(
            move || Ok(Input::stream(MemSource::from(base_data.clone()))),
            init.clone(),
            &config(),
            20,
            1e-9,
        )
        .unwrap();
        let mut chunked_config = config();
        chunked_config.chunking = Chunking::Inter { chunk_bytes: 4096 };
        let chunked = run_kmeans(
            move || Ok(Input::stream(MemSource::from(data.clone()))),
            init,
            &chunked_config,
            20,
            1e-9,
        )
        .unwrap();
        assert_eq!(base.iterations, chunked.iterations);
        for (a, b) in base.centroids.iter().zip(&chunked.centroids) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_cluster_keeps_its_centroid() {
        // Two points, three centroids: one centroid never gets points.
        let data = b"0 0\n0.5 0\n".to_vec();
        let init = vec![(0.0, 0.0), (100.0, 100.0), (0.6, 0.0)];
        let result = run_kmeans(
            move || Ok(Input::stream(MemSource::from(data.clone()))),
            init,
            &config(),
            5,
            1e-9,
        )
        .unwrap();
        assert_eq!(result.centroids[1], (100.0, 100.0), "empty cluster must not move");
        assert_eq!(result.points, 2);
    }

    #[test]
    fn single_iteration_cap_is_respected() {
        let data = b"0 0\n10 10\n".to_vec();
        let result = run_kmeans(
            move || Ok(Input::stream(MemSource::from(data.clone()))),
            vec![(5.0, 5.0)],
            &config(),
            1,
            1e-12,
        )
        .unwrap();
        assert_eq!(result.iterations, 1);
        assert!((result.centroids[0].0 - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn empty_centroids_rejected() {
        KMeansStep::new(vec![]);
    }
}
