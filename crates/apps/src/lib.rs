//! MapReduce applications for the SupMR runtime.
//!
//! The paper evaluates two applications chosen "because these
//! applications represent different spectrums of the application space"
//! (§VI): word count (ingest-bound, hash container, near-free reduce and
//! merge) and sort (merge-bound, unlocked container, unique keys). This
//! crate implements both plus the rest of the Phoenix++ application
//! families so every container variant has a real user:
//!
//! | app | container | combiner | stresses |
//! |---|---|---|---|
//! | [`wordcount::WordCount`] | hash | sum | ingest phase, combining |
//! | [`sort::TeraSort`] | unlocked | identity | merge phase |
//! | [`grep::Grep`] | hash | sum | map-side filtering |
//! | [`histogram::Histogram`] | array | count | dense integer keys |
//! | [`linreg::LinearRegression`] | array | sum | tiny key universe |
//! | [`inverted_index::InvertedIndex`] | hash | buffer | value buffering |
//! | [`kmeans::KMeansStep`] | array | sum | iterative jobs (re-ingest per pass) |

pub mod grep;
pub mod histogram;
pub mod inverted_index;
pub mod kmeans;
pub mod linreg;
pub mod sort;
pub mod wordcount;

pub use grep::Grep;
pub use histogram::Histogram;
pub use inverted_index::InvertedIndex;
pub use kmeans::{run_kmeans, KMeansStep};
pub use linreg::LinearRegression;
pub use sort::{terasort_pipeline, TeraMerge, TeraPartition, TeraSort};
pub use wordcount::WordCount;
