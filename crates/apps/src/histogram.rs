//! Histogram — dense integer keys into the array container.
//!
//! The Phoenix histogram application buckets RGB pixel values: the input
//! is a stream of 3-byte pixels and the output is 768 counters (256 per
//! channel). Keys form a small dense universe known up front, which is
//! exactly what [`supmr::container::ArrayContainer`] exists for.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Count;
use supmr::container::ArrayContainer;
use supmr_storage::RecordFormat;

/// Number of buckets per channel.
pub const BUCKETS_PER_CHANNEL: usize = 256;
/// Total key universe (R, G, B planes concatenated).
pub const TOTAL_BUCKETS: usize = 3 * BUCKETS_PER_CHANNEL;

/// RGB histogram over 3-byte pixels.
#[derive(Debug, Clone, Default)]
pub struct Histogram;

impl Histogram {
    /// A new histogram job.
    pub fn new() -> Histogram {
        Histogram
    }

    /// The record format (3-byte fixed-width pixels); pass to
    /// `JobConfig.record_format` so splits never tear a pixel.
    pub fn record_format() -> RecordFormat {
        RecordFormat::FixedWidth(3)
    }

    /// Bucket index for channel `c` (0 = R, 1 = G, 2 = B) and value `v`.
    pub fn bucket(c: usize, v: u8) -> usize {
        c * BUCKETS_PER_CHANNEL + v as usize
    }
}

impl MapReduce for Histogram {
    type Key = usize;
    type Value = u8;
    type Combiner = Count;
    type Output = u64;
    type Container = ArrayContainer<u8, Count>;

    fn make_container(&self) -> Self::Container {
        ArrayContainer::new(TOTAL_BUCKETS)
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<usize, u8>) {
        for pixel in split.chunks_exact(3) {
            emit.emit(Self::bucket(0, pixel[0]), pixel[0]);
            emit.emit(Self::bucket(1, pixel[1]), pixel[1]);
            emit.emit(Self::bucket(2, pixel[2]), pixel[2]);
        }
    }

    fn reduce(&self, _key: &usize, count: u64) -> u64 {
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr::runtime::{Input, Job, JobConfig, MergeMode};
    use supmr::Chunking;
    use supmr_storage::MemSource;

    fn pixels(n: usize, seed: u8) -> Vec<u8> {
        (0..3 * n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket(0, 0), 0);
        assert_eq!(Histogram::bucket(1, 0), 256);
        assert_eq!(Histogram::bucket(2, 255), 767);
    }

    #[test]
    fn counts_channels_independently() {
        let data = vec![10u8, 20, 30, 10, 20, 30, 99, 20, 30];
        let r = Job::new(Histogram::new())
            .config(JobConfig { record_format: Histogram::record_format(), ..JobConfig::default() })
            .run(Input::stream(MemSource::from(data)))
            .unwrap();
        let lookup = |b: usize| r.pairs.iter().find(|(k, _)| *k == b).map(|(_, c)| *c).unwrap_or(0);
        assert_eq!(lookup(Histogram::bucket(0, 10)), 2);
        assert_eq!(lookup(Histogram::bucket(0, 99)), 1);
        assert_eq!(lookup(Histogram::bucket(1, 20)), 3);
        assert_eq!(lookup(Histogram::bucket(2, 30)), 3);
        let total: u64 = r.pairs.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn chunked_equals_unchunked() {
        let data = pixels(5_000, 7);
        let base = Job::new(Histogram::new())
            .config(JobConfig { record_format: Histogram::record_format(), ..JobConfig::default() })
            .run(Input::stream(MemSource::from(data.clone())))
            .unwrap();
        let piped = Job::new(Histogram::new())
            .config(JobConfig {
                record_format: Histogram::record_format(),
                chunking: Chunking::Inter { chunk_bytes: 1000 },
                merge: MergeMode::PWay { ways: 3 },
                ..JobConfig::default()
            })
            .run(Input::stream(MemSource::from(data)))
            .unwrap();
        assert_eq!(base.sorted_pairs(), piped.sorted_pairs());
    }

    #[test]
    fn array_container_output_is_key_ordered_even_unsorted_mode() {
        // The array container's partitions are index-ordered by
        // construction, a property histogram consumers rely on.
        let data = pixels(100, 3);
        let r = Job::new(Histogram::new())
            .config(JobConfig { record_format: Histogram::record_format(), ..JobConfig::default() })
            .run(Input::stream(MemSource::from(data)))
            .unwrap();
        assert!(r.pairs.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
