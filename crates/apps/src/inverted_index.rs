//! Inverted index — word → sorted list of documents containing it.
//!
//! The Phoenix reverse-index family: the input is a corpus of
//! self-describing lines (`docid<TAB>text…`), map emits `(word, docid)`
//! and the buffer combiner keeps every posting; reduce sorts and
//! deduplicates each posting list. Unlike word count, the intermediate
//! set does *not* collapse — this is the hash-container workload with
//! real value buffering.

use supmr::api::{Emit, MapReduce};
use supmr::combiner::Buffer;
use supmr::container::HashContainer;
use supmr::CompactKey;
use supmr_storage::scan::{self, find_byte, ByteClass};

/// Build an inverted index over `docid<TAB>text` lines.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex;

impl InvertedIndex {
    /// A new indexing job.
    pub fn new() -> InvertedIndex {
        InvertedIndex
    }

    /// Render a document as an input line.
    pub fn format_doc(doc_id: u32, text: &str) -> String {
        format!("{doc_id}\t{text}\n")
    }
}

impl MapReduce for InvertedIndex {
    type Key = CompactKey;
    type Value = u32;
    type Combiner = Buffer;
    type Output = Vec<u32>;
    type Container = HashContainer<CompactKey, u32, Buffer>;

    fn make_container(&self) -> Self::Container {
        HashContainer::default()
    }

    fn map(&self, split: &[u8], emit: &mut dyn Emit<CompactKey, u32>) {
        // Line and tab scans are word-at-a-time ([`find_byte`]); terms
        // are alphanumeric runs from the SWAR tokenizer, emitted as
        // borrowed slices so repeated terms never re-allocate.
        let mut pos = 0;
        while pos < split.len() {
            let end = match find_byte(&split[pos..], b'\n') {
                Some(i) => pos + i,
                None => split.len(),
            };
            let line = &split[pos..end];
            pos = end + 1;
            let Some(tab) = find_byte(line, b'\t') else {
                continue;
            };
            let Ok(doc_id) = std::str::from_utf8(&line[..tab]).unwrap_or("").trim().parse::<u32>()
            else {
                continue;
            };
            for word in scan::tokens(&line[tab + 1..], ByteClass::Alnum) {
                emit.emit_bytes(word, doc_id);
            }
        }
    }

    /// Sort and deduplicate the posting list.
    fn reduce(&self, _key: &CompactKey, mut postings: Vec<u32>) -> Vec<u32> {
        postings.sort_unstable();
        postings.dedup();
        postings
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are clearer mutated stepwise
mod tests {
    use super::*;
    use supmr::runtime::{Input, Job, JobConfig, MergeMode};
    use supmr::Chunking;
    use supmr_storage::{MemFileSet, MemSource};

    fn corpus() -> Vec<u8> {
        let mut c = String::new();
        c.push_str(&InvertedIndex::format_doc(1, "rust memory safety"));
        c.push_str(&InvertedIndex::format_doc(2, "rust speed"));
        c.push_str(&InvertedIndex::format_doc(3, "memory speed rust rust"));
        c.into_bytes()
    }

    #[test]
    fn builds_sorted_deduplicated_postings() {
        let mut config = JobConfig::default();
        config.merge = MergeMode::PWay { ways: 2 };
        let r = Job::new(InvertedIndex::new())
            .config(config)
            .run(Input::stream(MemSource::from(corpus())))
            .unwrap();
        let index: std::collections::HashMap<String, Vec<u32>> =
            r.pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(index["rust"], vec![1, 2, 3]); // deduped despite doc 3 repeats
        assert_eq!(index["memory"], vec![1, 3]);
        assert_eq!(index["speed"], vec![2, 3]);
        assert_eq!(index["safety"], vec![1]);
    }

    #[test]
    fn lines_without_tab_or_bad_ids_are_skipped() {
        let data = b"no tab here\nxyz\tbad id words\n7\tgood words\n".to_vec();
        let r = Job::new(InvertedIndex::new()).run(Input::stream(MemSource::from(data))).unwrap();
        let index: std::collections::HashMap<String, Vec<u32>> =
            r.pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(index.len(), 2);
        assert_eq!(index["good"], vec![7]);
        assert_eq!(index["words"], vec![7]);
    }

    #[test]
    fn intra_file_chunking_over_document_files() {
        // One file per group of documents; the index must be identical
        // however files group into chunks.
        let files: Vec<Vec<u8>> = (0..9)
            .map(|f| {
                let mut s = String::new();
                for d in 0..5u32 {
                    let id = f as u32 * 5 + d;
                    s.push_str(&InvertedIndex::format_doc(id, &format!("term{} shared", id % 3)));
                }
                s.into_bytes()
            })
            .collect();
        let base = Job::new(InvertedIndex::new())
            .run(Input::files(MemFileSet::new(files.clone())))
            .unwrap();
        let mut config = JobConfig::default();
        config.chunking = Chunking::Intra { files_per_chunk: 4 };
        let piped = Job::new(InvertedIndex::new())
            .config(config)
            .run(Input::files(MemFileSet::new(files)))
            .unwrap();
        assert_eq!(base.sorted_pairs(), piped.sorted_pairs());
        let index: std::collections::HashMap<String, Vec<u32>> =
            base.pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(index["shared"].len(), 45);
    }
}
