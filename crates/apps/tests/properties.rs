//! Property tests for the application library: the word-count map's
//! SWAR tokenizer must emit exactly what a scalar byte-at-a-time
//! tokenizer produces, and the spill codec must frame `CompactKey`
//! pairs byte-identically to the `String` framing it replaced — spill
//! files written before and after the key-type switch stay
//! interchangeable.

use proptest::collection::vec;
use proptest::prelude::*;
use supmr::api::{MapReduce, VecEmit};
use supmr::CompactKey;
use supmr_apps::WordCount;

/// The spill framing as the `String`-keyed codec wrote it: u32 LE key
/// length, key bytes, u64 LE count.
fn string_reference_encoding(key: &[u8], count: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(&count.to_le_bytes());
    buf
}

proptest! {
    #[test]
    fn spill_codec_is_byte_identical_to_string_framing(
        key in vec(any::<u8>(), 0..48),
        count in any::<u64>(),
    ) {
        let codec = WordCount::new().spill_codec().expect("word count spills");
        let mut buf = Vec::new();
        (codec.encode)(&CompactKey::from_bytes(&key), &count, &mut buf);
        prop_assert_eq!(&buf, &string_reference_encoding(&key, count));
        let (k, c) = (codec.decode)(&buf).expect("well-formed record decodes");
        prop_assert_eq!(k.as_bytes(), &key[..]);
        prop_assert_eq!(c, count);
    }

    #[test]
    fn wordcount_map_tokens_match_scalar_tokenizer(
        data in vec(any::<u8>(), 0..400),
        ci in any::<bool>(),
    ) {
        let job = if ci { WordCount::case_insensitive() } else { WordCount::new() };
        let mut emit = VecEmit::default();
        job.map(&data, &mut emit);
        // Scalar reference: maximal runs of word bytes, in order,
        // case-folded when the job is.
        let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'\'';
        let mut expect: Vec<Vec<u8>> = Vec::new();
        let mut start = None;
        for (i, &b) in data.iter().enumerate() {
            if is_word(b) {
                start.get_or_insert(i);
            } else if let Some(s) = start.take() {
                expect.push(data[s..i].to_vec());
            }
        }
        if let Some(s) = start {
            expect.push(data[s..].to_vec());
        }
        if ci {
            for w in &mut expect {
                w.make_ascii_lowercase();
            }
        }
        let got: Vec<Vec<u8>> =
            emit.pairs.iter().map(|(k, _)| k.as_bytes().to_vec()).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(emit.pairs.iter().all(|(_, v)| *v == 1));
    }
}
