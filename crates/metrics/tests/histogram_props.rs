//! Property tests for histogram snapshots (proptest).
//!
//! Two invariants the registry's correctness rests on:
//!
//! 1. **Merging is exact**: combining per-shard / per-run snapshots
//!    loses no observations — total count and sum are preserved, and
//!    the merged distribution answers quantiles as if every value had
//!    been recorded into one histogram.
//! 2. **Quantiles are error-bounded**: any reported quantile is ≥ the
//!    true order statistic and within the bucket layout's relative
//!    error (1/32 above the linear range, exact below it).

use proptest::collection::vec;
use proptest::prelude::*;
use supmr_metrics::{Histogram, HistogramSnapshot};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The true (exact) quantile: the smallest value with rank ≥ ⌈q·n⌉.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Allowed overshoot for a reported quantile: exact below the linear
/// range, 1/32 relative above it (plus 1 for bound rounding).
fn error_bound(truth: u64) -> u64 {
    if truth < 32 {
        truth
    } else {
        truth + truth / 32 + 1
    }
}

fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: sub-linear-range, mid, and large values, so both
    // the exact and the log-bucketed paths are exercised.
    vec(prop_oneof![0u64..32, 32u64..4096, 4096u64..10_000_000, Just(u64::MAX >> 20)], 1..200)
}

proptest! {
    #[test]
    fn merged_snapshots_preserve_count_sum_and_max(
        a in values_strategy(),
        b in values_strategy(),
        c in values_strategy(),
    ) {
        let mut merged = HistogramSnapshot::empty();
        for part in [&a, &b, &c] {
            merged.merge(&snapshot_of(part));
        }
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = snapshot_of(&all);
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.sum, whole.sum);
        prop_assert_eq!(merged.max, whole.max);
        // Bucket-wise equality: merging is lossless, so the merged
        // snapshot IS the whole-distribution snapshot.
        prop_assert_eq!(&merged, &whole);
    }

    #[test]
    fn merged_quantiles_stay_error_bounded(
        a in values_strategy(),
        b in values_strategy(),
        q in 0.0f64..=1.0,
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        let truth = exact_quantile(&all, q);
        let est = merged.quantile(q);
        prop_assert!(est >= truth, "quantile underestimates: est {est} < true {truth}");
        prop_assert!(
            est <= error_bound(truth),
            "quantile overshoots: est {est}, true {truth}, bound {}",
            error_bound(truth)
        );
    }

    #[test]
    fn single_histogram_quantiles_stay_error_bounded(
        values in values_strategy(),
        q in 0.0f64..=1.0,
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = exact_quantile(&sorted, q);
        let est = snap.quantile(q);
        prop_assert!(est >= truth, "est {est} < true {truth}");
        prop_assert!(est <= error_bound(truth), "est {est}, true {truth}");
    }
}
