//! Concurrent-scrape stress: many client threads hammer every debug
//! endpoint while a writer thread mutates the registry and trace ring
//! underneath them, the way a live job does. Every response must be a
//! complete, well-formed HTTP message — truncated bodies, RSTs, or
//! mixed-up routes here mean the accept loop corrupts state under load.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use supmr_metrics::events::{EventKind, TraceLevel, TraceRing, Tracer};
use supmr_metrics::{DebugState, MetricsServer, Registry};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 40;

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: stress\r\n\r\n").as_bytes())
        .expect("write request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// A response is complete when the body length matches its declared
/// `Content-Length` — a torn write under concurrency fails this first.
fn assert_complete(resp: &str, path: &str) {
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{path}: {resp}");
    let (head, body) = resp
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("{path}: no header terminator in {resp:?}"));
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{path}: missing Content-Length in {head:?}"));
    assert_eq!(body.len(), declared, "{path}: truncated body");
}

#[test]
fn concurrent_scrapes_stay_well_formed_mid_job() {
    let registry = Registry::new();
    let ring = TraceRing::new(512);
    let tracer = Tracer::new(TraceLevel::Wave, Some(ring.callback()));
    let state = DebugState::new(registry.clone()).with_ring(Arc::clone(&ring));
    let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // The "job": keeps counters, histograms and the trace ring hot
        // while the scrapers read, so every snapshot races a writer.
        let writer_stop = Arc::clone(&stop);
        let writer_registry = registry.clone();
        s.spawn(move || {
            let mut chunk = 0u32;
            while !writer_stop.load(Ordering::Relaxed) {
                writer_registry.counter("supmr.flow.bytes", "", &[("phase", "ingest")]).add(4096);
                writer_registry.histogram("supmr.absorb.wait_us", "", &[]).record(chunk as u64);
                tracer.emit(EventKind::ChunkIngestStart { chunk });
                chunk = chunk.wrapping_add(1);
                std::thread::yield_now();
            }
        });

        let paths = ["/metrics", "/debug/diag", "/debug/trace?tail=16", "/healthz"];
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let completed = Arc::clone(&completed);
                s.spawn(move || {
                    for i in 0..REQUESTS_PER_CLIENT {
                        let path = paths[(client + i) % paths.len()];
                        assert_complete(&get(addr, path), path);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread must not panic");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(completed.load(Ordering::Relaxed), CLIENTS * REQUESTS_PER_CLIENT);
    // The surface stayed coherent: a final scrape still renders cleanly.
    let last = get(addr, "/metrics");
    assert!(last.contains("supmr_flow_bytes_total"), "{last}");
    assert!(last.contains("# EOF"), "{last}");
    server.shutdown();
}
