//! Golden and structural tests for the OpenMetrics text exposition.
//!
//! The golden test pins the exact byte output for a deterministic
//! registry — a scraping stack is a parser pipeline, so the format is
//! API. The structural tests re-parse rendered histograms and check the
//! spec invariants a pinned string cannot: cumulative buckets are
//! monotone and close at `_count`, and `_sum`/`_count` agree with the
//! recorded data.

use supmr_metrics::Registry;

fn deterministic_registry() -> Registry {
    let r = Registry::new();
    r.counter("supmr.ingest.bytes", "Bytes ingested.", &[("runtime", "pipeline")]).add(4096);
    r.counter("supmr.ingest.bytes", "Bytes ingested.", &[("runtime", "original")]).add(512);
    r.gauge("supmr.pool.queue_depth", "Tasks enqueued, not yet started.", &[]).set(3);
    let h = r.histogram("supmr.map.task_us", "Map task latency.", &[]);
    for v in [1u64, 2, 3, 100, 1000] {
        h.record(v);
    }
    r
}

#[test]
fn golden_exposition() {
    let text = deterministic_registry().render_openmetrics();
    let expected = "\
# HELP supmr_ingest_bytes Bytes ingested.
# TYPE supmr_ingest_bytes counter
supmr_ingest_bytes_total{runtime=\"pipeline\"} 4096
supmr_ingest_bytes_total{runtime=\"original\"} 512
# HELP supmr_pool_queue_depth Tasks enqueued, not yet started.
# TYPE supmr_pool_queue_depth gauge
supmr_pool_queue_depth 3
# HELP supmr_map_task_us Map task latency.
# TYPE supmr_map_task_us histogram
supmr_map_task_us_bucket{le=\"1\"} 1
supmr_map_task_us_bucket{le=\"2\"} 2
supmr_map_task_us_bucket{le=\"4\"} 3
supmr_map_task_us_bucket{le=\"8\"} 3
supmr_map_task_us_bucket{le=\"16\"} 3
supmr_map_task_us_bucket{le=\"32\"} 3
supmr_map_task_us_bucket{le=\"64\"} 3
supmr_map_task_us_bucket{le=\"128\"} 4
supmr_map_task_us_bucket{le=\"256\"} 4
supmr_map_task_us_bucket{le=\"512\"} 4
supmr_map_task_us_bucket{le=\"1024\"} 5
supmr_map_task_us_bucket{le=\"+Inf\"} 5
supmr_map_task_us_sum 1106
supmr_map_task_us_count 5
# EOF
";
    assert_eq!(text, expected, "exposition drifted:\n{text}");
}

#[test]
fn label_values_are_escaped_in_exposition() {
    let r = Registry::new();
    r.counter("supmr.test", "", &[("path", "a\\b\"c\nd")]).inc();
    let text = r.render_openmetrics();
    assert!(text.contains(r#"supmr_test_total{path="a\\b\"c\nd"} 1"#), "{text}");
}

#[test]
fn golden_exposition_with_hostile_job_name() {
    // A job service lets clients pick their own job names, which land
    // verbatim in label values. Pin the exact bytes for a name carrying
    // every character the OpenMetrics escape set covers — a hostile
    // name must never break the exposition into extra lines or quotes.
    let r = Registry::new();
    let hostile = "evil\\job\"name\nwith newline";
    r.counter("supmr.jobs.completed", "Jobs finished.", &[("job_id", hostile)]).add(2);
    r.gauge("supmr.jobs.running", "Jobs in flight.", &[("job_id", hostile)]).set(1);
    let text = r.render_openmetrics();
    let expected = "\
# HELP supmr_jobs_completed Jobs finished.
# TYPE supmr_jobs_completed counter
supmr_jobs_completed_total{job_id=\"evil\\\\job\\\"name\\nwith newline\"} 2
# HELP supmr_jobs_running Jobs in flight.
# TYPE supmr_jobs_running gauge
supmr_jobs_running{job_id=\"evil\\\\job\\\"name\\nwith newline\"} 1
# EOF
";
    assert_eq!(text, expected, "hostile-name exposition drifted:\n{text}");
    // The raw newline never survives into the text: every sample stays
    // on one physical line.
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "broken sample line from unescaped newline: {line:?}"
        );
    }
}

/// Pull every `<family>_bucket{...le="..."}` sample out of an exposition.
fn bucket_samples(text: &str, family: &str) -> Vec<(String, u64)> {
    let prefix = format!("{family}_bucket{{");
    text.lines()
        .filter(|l| l.starts_with(&prefix))
        .map(|l| {
            let le_start = l.find("le=\"").expect("le label") + 4;
            let le_end = le_start + l[le_start..].find('"').expect("closing quote");
            let value = l.rsplit(' ').next().expect("sample value");
            (l[le_start..le_end].to_string(), value.parse().expect("integer sample"))
        })
        .collect()
}

fn sample_value(text: &str, series: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(series) && !l.starts_with(&format!("{series}_")))
        .unwrap_or_else(|| panic!("series {series} present"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("integer sample")
}

#[test]
fn histogram_buckets_are_cumulative_monotone_and_close_at_count() {
    let r = Registry::new();
    let h = r.histogram("supmr.map.task_us", "Map task latency.", &[]);
    // A spread with repeats, a zero, and a large outlier.
    for v in [0u64, 1, 1, 7, 40, 40, 41, 999, 70_000, 70_000, 1_000_000] {
        h.record(v);
    }
    let text = r.render_openmetrics();
    let buckets = bucket_samples(&text, "supmr_map_task_us");
    assert!(buckets.len() >= 3, "power-of-two ladder rendered: {text}");
    for pair in buckets.windows(2) {
        assert!(pair[0].1 <= pair[1].1, "cumulative counts must not decrease: {buckets:?}");
    }
    let (last_le, last_cum) = buckets.last().unwrap().clone();
    assert_eq!(last_le, "+Inf", "ladder ends at +Inf");
    let count = sample_value(&text, "supmr_map_task_us_count");
    let sum = sample_value(&text, "supmr_map_task_us_sum");
    assert_eq!(last_cum, count, "+Inf bucket equals _count");
    assert_eq!(count, 11);
    assert_eq!(sum, 1 + 1 + 7 + 40 + 40 + 41 + 999 + 70_000 + 70_000 + 1_000_000);
}

#[test]
fn scrape_endpoint_serves_the_same_exposition() {
    use std::io::{Read, Write};
    let registry = deterministic_registry();
    let server =
        supmr_metrics::MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("application/openmetrics-text"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(body, registry.render_openmetrics(), "scrape equals local render");
    server.shutdown();
}
