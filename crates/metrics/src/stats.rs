//! Small summary statistics.
//!
//! The paper runs each experiment three times and reports the average;
//! [`Summary`] provides that plus the dispersion measures a careful
//! reproduction should report alongside it.

/// Summary statistics over a set of f64 observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    min: f64,
    max: f64,
    stdev: f64,
    median: f64,
}

impl Summary {
    /// Compute a summary. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary { n, mean, min: sorted[0], max: sorted[n - 1], stdev: var.sqrt(), median })
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }
    /// Arithmetic mean — what the paper reports.
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }
    /// Sample standard deviation (0 for a single observation).
    pub fn stdev(&self) -> f64 {
        self.stdev
    }
    /// Median observation.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// `mean ± stdev` rendering used in experiment reports.
    pub fn display(&self) -> String {
        format!("{:.2} ± {:.2} (n={})", self.mean, self.stdev, self.n)
    }
}

/// Linear-interpolated percentile of a sample set (`q` in `[0, 100]`).
/// Returns `None` for empty input or out-of-range `q`.
///
/// ```
/// use supmr_metrics::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Geometric mean of a slice of positive ratios (used to aggregate
/// speedups). Returns `None` if the slice is empty or has a non-positive
/// entry.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() || ratios.iter().any(|&r| r <= 0.0) {
        return None;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    Some((log_sum / ratios.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_summary() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stdev(), 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.n(), 1);
    }

    #[test]
    fn three_run_average_like_the_paper() {
        let s = Summary::of(&[470.0, 472.0, 473.25]).unwrap();
        assert!((s.mean() - 471.75).abs() < 1e-9);
        assert_eq!(s.min(), 470.0);
        assert_eq!(s.max(), 473.25);
        assert_eq!(s.median(), 472.0);
        assert!(s.stdev() > 0.0);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn display_contains_mean_and_n() {
        let s = Summary::of(&[2.0, 4.0]).unwrap();
        let d = s.display();
        assert!(d.contains("3.00"));
        assert!(d.contains("n=2"));
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn percentile_edges_and_interpolation() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 50.0), Some(20.0));
        assert_eq!(percentile(&xs, 75.0), Some(25.0));
        assert_eq!(percentile(&xs, 100.0), Some(30.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(percentile(&xs, -0.1), None);
    }

    #[test]
    fn stdev_matches_known_value() {
        // Sample stdev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.stdev() - 2.13809).abs() < 1e-4);
    }
}
