//! Terminal rendering of utilization traces.
//!
//! Every figure in the paper is a CPU-utilization-vs-time area chart. The
//! benchmark binaries print the regenerated figures with [`render_trace`];
//! the same data is also emitted as CSV for external plotting.

use crate::events::{JobTrace, SpanKey};
use crate::trace::UtilTrace;
use std::fmt::Write as _;

/// Options for [`render_trace`].
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Chart width in columns (time axis).
    pub width: usize,
    /// Chart height in rows (0–100% axis).
    pub height: usize,
    /// Title printed above the chart.
    pub title: String,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions { width: 78, height: 16, title: String::new() }
    }
}

/// Render a trace as an ASCII area chart: `#` for CPU-busy (user+sys) and
/// `.` for the additional IO-wait component stacked on top, matching the
/// paper's stacked utilization plots.
pub fn render_trace(trace: &UtilTrace, opts: &ChartOptions) -> String {
    let mut out = String::new();
    if !opts.title.is_empty() {
        let _ = writeln!(out, "{}", opts.title);
    }
    let samples = trace.samples();
    if samples.is_empty() || opts.width == 0 || opts.height == 0 {
        let _ = writeln!(out, "(empty trace)");
        return out;
    }
    let t_start = samples[0].t;
    let t_end = trace.duration().max(t_start + f64::EPSILON);
    let span = t_end - t_start;

    // Column aggregation: average busy and total utilization of samples
    // falling in each column's time window (sample-and-hold between
    // samples so sparse traces still render).
    let mut busy_cols = vec![0.0f64; opts.width];
    let mut total_cols = vec![0.0f64; opts.width];
    for col in 0..opts.width {
        let t0 = t_start + span * col as f64 / opts.width as f64;
        let t1 = t_start + span * (col + 1) as f64 / opts.width as f64;
        let window: Vec<_> = samples.iter().filter(|s| s.t >= t0 && s.t < t1).collect();
        if window.is_empty() {
            // Hold most recent sample at or before t0.
            let held = samples.iter().rev().find(|s| s.t <= t0).or(samples.first());
            if let Some(s) = held {
                busy_cols[col] = s.busy();
                total_cols[col] = s.total();
            }
        } else {
            busy_cols[col] = window.iter().map(|s| s.busy()).sum::<f64>() / window.len() as f64;
            total_cols[col] = window.iter().map(|s| s.total()).sum::<f64>() / window.len() as f64;
        }
    }

    for row in 0..opts.height {
        // Row thresholds from top (100%) to bottom (>0%).
        let level = 100.0 * (opts.height - row) as f64 / opts.height as f64;
        let axis = if row == 0 {
            "100%|"
        } else if row == opts.height - 1 {
            "  0%|"
        } else if opts.height >= 4 && row == opts.height / 2 {
            " 50%|"
        } else {
            "    |"
        };
        let _ = write!(out, "{axis}");
        for col in 0..opts.width {
            let ch = if busy_cols[col] >= level - 1e-9 {
                '#'
            } else if total_cols[col] >= level - 1e-9 {
                '.'
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "    +{}", "-".repeat(opts.width));
    let _ = writeln!(
        out,
        "     0s{:>width$}",
        format!("{:.0}s", t_end),
        width = opts.width.saturating_sub(2)
    );
    // Phase marks as a footnote line.
    for m in trace.marks() {
        let _ = writeln!(out, "     @{:.1}s {}", m.t, m.label);
    }
    let _ = writeln!(out, "     # = cpu busy (user+sys)   . = io wait");
    out
}

fn timeline_glyph(key: SpanKey) -> char {
    match key {
        SpanKey::Ingest(_) => 'I',
        SpanKey::MapWave(_) | SpanKey::MapTask(..) => 'M',
        SpanKey::ReduceWave | SpanKey::Reduce(_) => 'R',
        SpanKey::Drain(_) => 'D',
        SpanKey::Merge(_) => 'G',
        SpanKey::SpillRun(_) => 'S',
        SpanKey::ExternalMerge(_) => 'X',
        SpanKey::Stage(_) => 'P',
    }
}

/// Render a [`JobTrace`] as an ASCII Gantt timeline: one row per thread,
/// phase spans drawn with per-phase glyphs (`I` ingest, `M` map, `R`
/// reduce, `G` merge, `S` spill run, `X` external merge) and stalls
/// drawn as `.` — the textual analogue of the paper's Fig. 2 pipeline
/// diagram.
pub fn render_timeline(trace: &JobTrace, opts: &ChartOptions) -> String {
    let mut out = String::new();
    if !opts.title.is_empty() {
        let _ = writeln!(out, "{}", opts.title);
    }
    let spans = trace.spans();
    if spans.is_empty() || opts.width == 0 {
        let _ = writeln!(out, "(empty trace)");
        return out;
    }
    let t_end = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .chain(trace.threads.iter().flat_map(|t| t.events.iter().map(|e| e.t_us)))
        .max()
        .unwrap_or(1)
        .max(1);
    let col_of = |t_us: u64| ((t_us as u128 * opts.width as u128) / (t_end as u128 + 1)) as usize;

    let name_w = trace.threads.iter().map(|t| t.name.len()).max().unwrap_or(0).min(18);
    for (tid, thread) in trace.threads.iter().enumerate() {
        let mut row = vec![' '; opts.width];
        // Wider (outer) spans first so nested/task spans overwrite them.
        let mut mine: Vec<_> = spans.iter().filter(|s| s.thread == tid).collect();
        mine.sort_by_key(|s| std::cmp::Reverse(s.dur_us));
        for span in mine {
            let glyph = timeline_glyph(span.key);
            let (c0, c1) = (col_of(span.start_us), col_of(span.start_us + span.dur_us));
            for cell in &mut row[c0..=c1.min(opts.width - 1)] {
                *cell = glyph;
            }
        }
        // Stalls overwrite everything: idle time is the headline.
        for event in &thread.events {
            if let Some((_, wait_us)) = event.kind.stall_us() {
                let (c0, c1) = (col_of(event.t_us.saturating_sub(wait_us)), col_of(event.t_us));
                for cell in &mut row[c0..=c1.min(opts.width - 1)] {
                    *cell = '.';
                }
            }
        }
        let name: String = thread.name.chars().take(name_w).collect();
        let _ = writeln!(out, "{name:>name_w$}|{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(name_w), "-".repeat(opts.width));
    let _ = writeln!(
        out,
        "{} 0s{:>width$}",
        " ".repeat(name_w),
        format!("{:.2}s", t_end as f64 / 1e6),
        width = opts.width.saturating_sub(2)
    );
    let _ = writeln!(
        out,
        "{} I = ingest  M = map  R = reduce  G = merge  . = stall",
        " ".repeat(name_w)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, ThreadTrace, TraceEvent};
    use crate::trace::UtilSample;

    fn trace_step() -> UtilTrace {
        UtilTrace::from_samples(vec![
            UtilSample { t: 0.0, user: 10.0, sys: 0.0, iowait: 80.0 },
            UtilSample { t: 5.0, user: 10.0, sys: 0.0, iowait: 80.0 },
            UtilSample { t: 5.0, user: 95.0, sys: 5.0, iowait: 0.0 },
            UtilSample { t: 10.0, user: 95.0, sys: 5.0, iowait: 0.0 },
        ])
    }

    #[test]
    fn renders_full_height_column_for_full_utilization() {
        let chart =
            render_trace(&trace_step(), &ChartOptions { width: 10, height: 4, title: "t".into() });
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "t");
        // Top row: only the 100%-busy second half reaches it. The column
        // containing the step transition averages the two edge samples, so
        // expect the four columns strictly after the transition.
        assert!(lines[1].starts_with("100%|"));
        assert!(lines[1].ends_with("####"));
        assert_eq!(lines[1].matches('#').count(), 4);
        assert!(!lines[1].contains('.'));
        // Bottom row: first half busy=10% renders '#', iowait stacks '.'.
        let bottom = lines[4];
        assert!(bottom.contains('#'));
    }

    #[test]
    fn iowait_renders_as_dots_above_busy() {
        let chart =
            render_trace(&trace_step(), &ChartOptions { width: 10, height: 10, title: "".into() });
        // 90% total (10 busy + 80 iowait) in first half -> dots high up.
        let second_row = chart.lines().nth(1).unwrap();
        assert!(second_row.contains('.'), "expected iowait dots: {second_row:?}");
    }

    #[test]
    fn empty_trace_is_handled() {
        let chart = render_trace(&UtilTrace::new(), &ChartOptions::default());
        assert!(chart.contains("(empty trace)"));
    }

    #[test]
    fn marks_are_listed() {
        let mut t = trace_step();
        t.mark(5.0, "merge begins");
        let chart = render_trace(&t, &ChartOptions::default());
        assert!(chart.contains("@5.0s merge begins"));
    }

    #[test]
    fn legend_and_axis_present() {
        let chart = render_trace(&trace_step(), &ChartOptions::default());
        assert!(chart.contains("# = cpu busy"));
        assert!(chart.contains("100%|"));
        assert!(chart.contains("  0%|"));
    }

    fn gantt_trace() -> JobTrace {
        let main = ThreadTrace {
            name: "main".into(),
            events: vec![
                TraceEvent {
                    seq: 0,
                    t_us: 0,
                    kind: EventKind::MapWaveStart { round: 0, tasks: 2 },
                },
                TraceEvent { seq: 2, t_us: 500_000, kind: EventKind::MapWaveEnd { round: 0 } },
                TraceEvent {
                    seq: 4,
                    t_us: 800_000,
                    kind: EventKind::MapWaitingForChunk { round: 0, wait_us: 300_000 },
                },
            ],
        };
        let ingest = ThreadTrace {
            name: "ingest".into(),
            events: vec![
                TraceEvent { seq: 1, t_us: 0, kind: EventKind::ChunkIngestStart { chunk: 1 } },
                TraceEvent {
                    seq: 3,
                    t_us: 800_000,
                    kind: EventKind::ChunkIngestEnd { chunk: 1, bytes: 1 << 20 },
                },
            ],
        };
        JobTrace { threads: vec![main, ingest] }
    }

    #[test]
    fn timeline_draws_one_row_per_thread_with_glyphs() {
        let chart = render_timeline(
            &gantt_trace(),
            &ChartOptions { width: 40, height: 0, title: "fig2".into() },
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "fig2");
        let main_row = lines.iter().find(|l| l.contains("main|")).unwrap();
        assert!(main_row.contains('M'), "map span drawn: {main_row:?}");
        assert!(main_row.contains('.'), "stall drawn: {main_row:?}");
        let ingest_row = lines.iter().find(|l| l.contains("ingest|")).unwrap();
        assert!(ingest_row.contains('I'), "ingest span drawn: {ingest_row:?}");
        assert!(chart.contains(". = stall"));
    }

    #[test]
    fn timeline_handles_empty_trace() {
        let chart = render_timeline(&JobTrace::default(), &ChartOptions::default());
        assert!(chart.contains("(empty trace)"));
    }
}
