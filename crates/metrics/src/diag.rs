//! Bandwidth attribution and bottleneck diagnosis (`supmr.diag`).
//!
//! The paper's analysis attributes wall-clock to the saturated resource
//! by hand (Fig. 7): a run is ingest-bound when the disk is pegged,
//! memory-bound when the intermediate set thrashes. This module closes
//! that loop inside the runtime:
//!
//! * [`FlowLedger`] — per-phase byte/busy-time accounting threaded
//!   through every byte-moving layer (chunk ingest, map scans, stage
//!   hand-offs, spill runs, the external merge), yielding achieved MB/s
//!   per phase alongside the existing [`PhaseTimings`](crate::phase).
//!   Each phase has exactly one recording owner; a storage-level meter
//!   can claim a phase with [`FlowLedger::mark_external`], which tells
//!   the runtime-level recorder to stand down (no double counting).
//! * [`DiagInputs`] + [`BottleneckReport`] — the classifier. It folds
//!   flow rates, stall sums (`MapWaitingForChunk` /
//!   `IngestWaitingForContainer`), absorb-wait histograms, and
//!   memory-budget pressure into blocked-time shares, names the
//!   bottleneck, and estimates the speedup from removing it (Amdahl).
//!   Serialized as the stable `supmr.diag.v1` JSON schema and rendered
//!   as an ASCII panel for the CLI's `--diagnose` flag.
//!
//! [`DiagInputs::from_snapshot`] rebuilds the inputs from a live
//! [`MetricsSnapshot`], which is how the `/debug/diag` endpoint
//! classifies a job mid-flight. The decision rules are documented in
//! DESIGN.md §3j.

use crate::json::Json;
use crate::registry::{Counter, MetricValue, MetricsSnapshot, Registry};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The byte-moving phases the ledger attributes bandwidth to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// Reads from primary storage into ingest chunks.
    Ingest,
    /// Map-task scans over chunk splits.
    Map,
    /// Bytes crossing a stage boundary through the hand-off framing.
    Shuffle,
    /// Framed bytes written into spill run files.
    Spill,
    /// Spilled-run bytes read back by the external merge.
    Merge,
}

impl FlowPhase {
    /// Every phase, in display order.
    pub const ALL: [FlowPhase; 5] =
        [FlowPhase::Ingest, FlowPhase::Map, FlowPhase::Shuffle, FlowPhase::Spill, FlowPhase::Merge];

    /// The phase's stable label (used as the `phase` metric label and
    /// in the `supmr.diag.v1` schema).
    pub fn label(self) -> &'static str {
        match self {
            FlowPhase::Ingest => "ingest",
            FlowPhase::Map => "map",
            FlowPhase::Shuffle => "shuffle",
            FlowPhase::Spill => "spill",
            FlowPhase::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    /// Parse a phase label back (the inverse of [`FlowPhase::label`]).
    pub fn from_label(label: &str) -> Option<FlowPhase> {
        FlowPhase::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// Registry handles mirroring the ledger (`supmr.flow.*`).
struct FlowCounters {
    bytes: [Counter; 5],
    busy_us: [Counter; 5],
}

/// A lock-free per-phase byte/busy-time ledger.
///
/// `record` is a pair of relaxed atomic adds (plus striped counter adds
/// when a registry is attached), cheap enough to sit on every map task
/// and every spilled run; the diagnosis itself runs once, at report
/// time or per `/debug/diag` request.
#[derive(Default)]
pub struct FlowLedger {
    bytes: [AtomicU64; 5],
    busy_ns: [AtomicU64; 5],
    /// Phases claimed by an external (storage-level) meter; the
    /// runtime-level recorder skips a claimed phase.
    external: [AtomicBool; 5],
    counters: OnceLock<FlowCounters>,
}

impl std::fmt::Debug for FlowLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowLedger").field("snapshot", &self.snapshot()).finish()
    }
}

impl FlowLedger {
    /// An empty ledger.
    pub fn new() -> FlowLedger {
        FlowLedger::default()
    }

    /// Mirror every phase into `supmr.flow.bytes{phase=…}` and
    /// `supmr.flow.busy_us{phase=…}` counter families in `registry`, so
    /// live scrapes (and `/debug/diag`) see the flows. First attachment
    /// wins; later calls are no-ops.
    pub fn attach_registry(&self, registry: &Registry) {
        self.counters.get_or_init(|| {
            let per_phase = |family: &str, help: &str| {
                FlowPhase::ALL.map(|p| registry.counter(family, help, &[("phase", p.label())]))
            };
            FlowCounters {
                bytes: per_phase(
                    "supmr.flow.bytes",
                    "Bytes moved, attributed to the owning phase.",
                ),
                busy_us: per_phase(
                    "supmr.flow.busy_us",
                    "Time spent moving those bytes, microseconds.",
                ),
            }
        });
    }

    /// Claim `phase` for an external (storage-level) meter. The
    /// runtime-level recorder checks [`FlowLedger::is_external`] and
    /// stands down, so each phase has one owner.
    pub fn mark_external(&self, phase: FlowPhase) {
        self.external[phase.index()].store(true, Ordering::Relaxed);
    }

    /// Whether `phase` is owned by an external meter.
    pub fn is_external(&self, phase: FlowPhase) -> bool {
        self.external[phase.index()].load(Ordering::Relaxed)
    }

    /// Record `bytes` moved in `phase` over `busy` of active time.
    pub fn record(&self, phase: FlowPhase, bytes: u64, busy: Duration) {
        let i = phase.index();
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
        let ns = busy.as_nanos().min(u64::MAX as u128) as u64;
        self.busy_ns[i].fetch_add(ns, Ordering::Relaxed);
        if let Some(c) = self.counters.get() {
            c.bytes[i].add(bytes);
            c.busy_us[i].add(ns / 1_000);
        }
    }

    /// Record from the runtime-level owner: a no-op when an external
    /// meter has claimed the phase.
    pub fn record_owned(&self, phase: FlowPhase, bytes: u64, busy: Duration) {
        if !self.is_external(phase) {
            self.record(phase, bytes, busy);
        }
    }

    /// Bytes recorded for `phase`.
    pub fn bytes(&self, phase: FlowPhase) -> u64 {
        self.bytes[phase.index()].load(Ordering::Relaxed)
    }

    /// Busy time recorded for `phase`.
    pub fn busy(&self, phase: FlowPhase) -> Duration {
        Duration::from_nanos(self.busy_ns[phase.index()].load(Ordering::Relaxed))
    }

    /// A point-in-time copy of every phase's flow.
    pub fn snapshot(&self) -> FlowSnapshot {
        FlowSnapshot {
            flows: FlowPhase::ALL.map(|p| PhaseFlow {
                phase: p,
                bytes: self.bytes(p),
                busy_us: self.busy(p).as_micros() as u64,
            }),
        }
    }
}

/// One phase's achieved flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseFlow {
    /// The owning phase.
    pub phase: FlowPhase,
    /// Bytes moved.
    pub bytes: u64,
    /// Active time spent moving them, microseconds.
    pub busy_us: u64,
}

impl PhaseFlow {
    /// Achieved throughput while the phase was actually moving bytes.
    /// Zero when no time was recorded (no flow, no rate).
    pub fn mb_per_sec(&self) -> f64 {
        if self.busy_us == 0 {
            0.0
        } else {
            // bytes per microsecond == MB per second.
            self.bytes as f64 / self.busy_us as f64
        }
    }
}

/// A point-in-time copy of a [`FlowLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSnapshot {
    /// One entry per [`FlowPhase`], in [`FlowPhase::ALL`] order.
    pub flows: [PhaseFlow; 5],
}

impl Default for FlowSnapshot {
    fn default() -> Self {
        FlowSnapshot {
            flows: FlowPhase::ALL.map(|phase| PhaseFlow { phase, bytes: 0, busy_us: 0 }),
        }
    }
}

impl FlowSnapshot {
    /// The flow recorded for `phase`.
    pub fn get(&self, phase: FlowPhase) -> PhaseFlow {
        self.flows[phase.index()]
    }
}

/// The classifier's verdict: which resource bounds the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The job waits on primary-storage reads (the paper's Fig. 1).
    IngestBound,
    /// Map compute dominates; ingest waits on the mappers.
    MapBound,
    /// Absorbing map output into the shared container dominates.
    ShuffleBound,
    /// The memory budget forces spilling; the job pays disk twice.
    MemoryBudgetBound,
    /// The final reduce/merge tail dominates.
    ReduceMergeBound,
    /// No single resource crosses the attribution thresholds.
    Balanced,
}

impl Bottleneck {
    /// The stable verdict string used in `supmr.diag.v1`.
    pub fn as_str(self) -> &'static str {
        match self {
            Bottleneck::IngestBound => "ingest-bound",
            Bottleneck::MapBound => "map-bound",
            Bottleneck::ShuffleBound => "shuffle-bound",
            Bottleneck::MemoryBudgetBound => "memory-budget-bound",
            Bottleneck::ReduceMergeBound => "reduce/merge-bound",
            Bottleneck::Balanced => "balanced",
        }
    }
}

/// Everything the classifier consumes, flattened to plain numbers so
/// it can be built from a finished job report or from a live
/// [`MetricsSnapshot`] alike.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagInputs {
    /// Job wall-clock so far, microseconds.
    pub wall_us: u64,
    /// Serial (unfused) ingest-phase time. Zero for pipelined runs,
    /// where the stall counters carry the ingest-pressure signal.
    pub ingest_us: u64,
    /// Map-phase time (the fused ingest+map span for pipelined runs).
    pub map_us: u64,
    /// Merge-phase time.
    pub merge_us: u64,
    /// Total `MapWaitingForChunk` — map sat idle waiting on ingest.
    pub map_stall_us: u64,
    /// Total `IngestWaitingForContainer` — ingest waited on the maps.
    pub ingest_stall_us: u64,
    /// Summed container absorb-wait (contention on the shared
    /// container; across workers, normalized by `map_workers`).
    pub absorb_wait_us: u64,
    /// Map workers, for normalizing cross-thread sums. At least 1.
    pub map_workers: u64,
    /// Configured memory budget (0 = unbounded).
    pub budget_bytes: u64,
    /// Intermediate bytes currently resident against the budget.
    pub resident_bytes: u64,
    /// Spill runs written.
    pub spill_runs: u64,
    /// Framed bytes spilled.
    pub spill_bytes: u64,
    /// Time spent spilling plus externally merging runs back.
    pub spill_busy_us: u64,
    /// Per-phase achieved flows.
    pub flows: FlowSnapshot,
}

/// Attribution thresholds (DESIGN.md §3j). A share below the floor is
/// noise; spilling is categorical evidence the budget binds even at a
/// small share.
const PRIMARY_SHARE_MIN: f64 = 0.25;
const MEMORY_SHARE_MIN: f64 = 0.05;
const MAP_PHASE_MIN: f64 = 0.40;

impl DiagInputs {
    /// Rebuild the inputs from a live registry snapshot — the
    /// `/debug/diag` path. `wall_us` is the job's elapsed wall-clock,
    /// which the registry does not carry.
    pub fn from_snapshot(snap: &MetricsSnapshot, wall_us: u64) -> DiagInputs {
        let counter = |name: &str| counter_sum(snap, name);
        let hist = |name: &str| hist_sum(snap, name);
        let gauge = |name: &str| gauge_max(snap, name);
        let mut flows = FlowSnapshot::default();
        for entry in &snap.entries {
            let phase = entry
                .labels
                .iter()
                .find(|(k, _)| k == "phase")
                .and_then(|(_, v)| FlowPhase::from_label(v));
            let (Some(phase), MetricValue::Counter(v)) = (phase, &entry.value) else { continue };
            let slot = &mut flows.flows[phase.index()];
            match entry.name.as_str() {
                "supmr.flow.bytes" => slot.bytes += v,
                "supmr.flow.busy_us" => slot.busy_us += v,
                _ => {}
            }
        }
        DiagInputs {
            wall_us,
            ingest_us: flows.get(FlowPhase::Ingest).busy_us.min(wall_us),
            map_us: flows.get(FlowPhase::Map).busy_us.min(wall_us),
            merge_us: hist("supmr.merge.round_us").min(wall_us),
            map_stall_us: counter("supmr.stall.map_us"),
            ingest_stall_us: counter("supmr.stall.ingest_us"),
            absorb_wait_us: hist("supmr.container.absorb_wait_us"),
            map_workers: 1,
            budget_bytes: gauge("supmr.spill.budget_bytes"),
            resident_bytes: gauge("supmr.spill.resident_bytes"),
            spill_runs: counter("supmr.spill.runs"),
            spill_bytes: counter("supmr.spill.bytes"),
            spill_busy_us: hist("supmr.spill.drain_us") + hist("supmr.spill.merge_us"),
            flows,
        }
    }
}

/// One governor tick's view of the job: the classifier's report plus
/// the raw pressure signals the actuators key on — the sampling half of
/// the feedback loop (the actuation half lives in
/// `supmr::runtime::governor`).
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorSample {
    /// The classifier's report for this tick.
    pub report: BottleneckReport,
    /// p99 of the container absorb-wait histogram, microseconds — the
    /// shard-contention signal (a rising p99 means workers convoy on
    /// shard locks even when the summed wait share stays small).
    pub absorb_wait_p99_us: u64,
    /// Intermediate bytes currently resident against the budget.
    pub resident_bytes: u64,
    /// Configured memory budget (0 = unbounded).
    pub budget_bytes: u64,
}

impl GovernorSample {
    /// Classify a live registry snapshot for one governor tick.
    /// `wall_us` is the job's elapsed wall-clock and `map_workers` the
    /// configured map parallelism — the snapshot carries neither (the
    /// `/debug/diag` path conservatively assumes one worker; the
    /// governor knows the real width and must normalize with it).
    pub fn from_snapshot(snap: &MetricsSnapshot, wall_us: u64, map_workers: u64) -> GovernorSample {
        let mut inputs = DiagInputs::from_snapshot(snap, wall_us);
        inputs.map_workers = map_workers.max(1);
        let absorb_wait_p99_us = snap
            .entries
            .iter()
            .filter(|e| e.name == "supmr.container.absorb_wait_us")
            .filter_map(|e| match &e.value {
                MetricValue::Histogram(h) => Some(h.p99()),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let resident_bytes = inputs.resident_bytes;
        let budget_bytes = inputs.budget_bytes;
        GovernorSample {
            report: BottleneckReport::from_inputs(inputs),
            absorb_wait_p99_us,
            resident_bytes,
            budget_bytes,
        }
    }
}

fn counter_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.entries
        .iter()
        .filter(|e| e.name == name)
        .filter_map(|e| match &e.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        })
        .sum()
}

fn hist_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.entries
        .iter()
        .filter(|e| e.name == name)
        .filter_map(|e| match &e.value {
            MetricValue::Histogram(h) => Some(h.sum),
            _ => None,
        })
        .sum()
}

fn gauge_max(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.entries
        .iter()
        .filter(|e| e.name == name)
        .filter_map(|e| match &e.value {
            MetricValue::Gauge(v) => Some((*v).max(0) as u64),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Per-resource blocked-time shares of wall-clock, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockedShares {
    /// Waiting on primary-storage reads (stalls + serial ingest).
    pub ingest: f64,
    /// Ingest waiting on map compute.
    pub map: f64,
    /// Contention absorbing map output into the container.
    pub shuffle: f64,
    /// Spilling and externally re-merging under the memory budget.
    pub memory: f64,
    /// The final merge tail.
    pub merge: f64,
}

/// The diagnosis: verdict, shares, and the evidence behind them.
/// Serialized as the stable `supmr.diag.v1` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Which resource bounds the job.
    pub verdict: Bottleneck,
    /// Per-resource blocked-time shares.
    pub shares: BlockedShares,
    /// Amdahl estimate: wall-clock speedup if the bounding resource's
    /// blocked time went to zero. `1.0` when balanced.
    pub speedup_if_removed: f64,
    /// The inputs the verdict was derived from.
    pub inputs: DiagInputs,
}

impl BottleneckReport {
    /// Classify `inputs` (DESIGN.md §3j):
    ///
    /// 1. A budgeted job that actually spilled is memory-budget-bound
    ///    once spill work clears a small floor or residency presses the
    ///    high watermark — spilling is categorical evidence.
    /// 2. Otherwise the largest blocked-time share wins if it clears
    ///    a 0.25 share floor: ingest (map stalls + serial ingest
    ///    phase), shuffle (absorb waits over workers), merge (merge
    ///    phase), or map (ingest stalls).
    /// 3. Otherwise a dominant map phase is map-bound; else balanced.
    pub fn from_inputs(inputs: DiagInputs) -> BottleneckReport {
        let wall = inputs.wall_us.max(1) as f64;
        let workers = inputs.map_workers.max(1) as f64;
        let share = |us: u64| (us as f64 / wall).min(1.0);
        let shares = BlockedShares {
            ingest: share(inputs.map_stall_us + inputs.ingest_us),
            map: share(inputs.ingest_stall_us),
            shuffle: (inputs.absorb_wait_us as f64 / (wall * workers)).min(1.0),
            memory: share(inputs.spill_busy_us),
            merge: share(inputs.merge_us),
        };
        let spilled = inputs.budget_bytes > 0 && inputs.spill_runs > 0;
        let pressured = inputs.resident_bytes * 10 >= inputs.budget_bytes * 8;
        let (verdict, winning) = if spilled && (shares.memory >= MEMORY_SHARE_MIN || pressured) {
            (Bottleneck::MemoryBudgetBound, shares.memory.max(MEMORY_SHARE_MIN))
        } else {
            let candidates = [
                (Bottleneck::IngestBound, shares.ingest),
                (Bottleneck::ShuffleBound, shares.shuffle),
                (Bottleneck::ReduceMergeBound, shares.merge),
                (Bottleneck::MapBound, shares.map),
            ];
            let (v, s) = candidates
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty candidates");
            if s >= PRIMARY_SHARE_MIN {
                (v, s)
            } else if share(inputs.map_us) >= MAP_PHASE_MIN {
                (Bottleneck::MapBound, share(inputs.map_us))
            } else {
                (Bottleneck::Balanced, 0.0)
            }
        };
        let speedup_if_removed = match verdict {
            Bottleneck::Balanced => 1.0,
            _ => 1.0 / (1.0 - winning.min(0.9)),
        };
        BottleneckReport { verdict, shares, speedup_if_removed, inputs }
    }

    /// The report as stable `supmr.diag.v1` JSON.
    pub fn to_json(&self) -> Json {
        let i = &self.inputs;
        let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
        let shares = Json::obj(vec![
            ("ingest", Json::Num(round3(self.shares.ingest))),
            ("map", Json::Num(round3(self.shares.map))),
            ("shuffle", Json::Num(round3(self.shares.shuffle))),
            ("memory", Json::Num(round3(self.shares.memory))),
            ("merge", Json::Num(round3(self.shares.merge))),
        ]);
        let stalls = Json::obj(vec![
            ("map_wait_us", Json::from(i.map_stall_us)),
            ("ingest_wait_us", Json::from(i.ingest_stall_us)),
            ("absorb_wait_us", Json::from(i.absorb_wait_us)),
        ]);
        let memory = Json::obj(vec![
            ("budget_bytes", Json::from(i.budget_bytes)),
            ("resident_bytes", Json::from(i.resident_bytes)),
            ("spill_runs", Json::from(i.spill_runs)),
            ("spill_bytes", Json::from(i.spill_bytes)),
            ("spill_busy_us", Json::from(i.spill_busy_us)),
        ]);
        let flows = Json::Arr(
            i.flows
                .flows
                .iter()
                .map(|f| {
                    Json::obj(vec![
                        ("phase", Json::str(f.phase.label())),
                        ("bytes", Json::from(f.bytes)),
                        ("busy_us", Json::from(f.busy_us)),
                        ("mb_per_sec", Json::Num(round3(f.mb_per_sec()))),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::str("supmr.diag.v1")),
            ("verdict", Json::str(self.verdict.as_str())),
            ("speedup_if_removed", Json::Num(round3(self.speedup_if_removed))),
            ("wall_us", Json::from(i.wall_us)),
            ("shares", shares),
            ("stalls", stalls),
            ("memory", memory),
            ("flows", flows),
        ])
    }

    /// Render as the `--diagnose` terminal panel.
    pub fn render_ascii(&self) -> String {
        const BAR: usize = 36;
        let mut out = String::new();
        let rule = format!("+{}+\n", "-".repeat(68));
        out.push_str(&rule);
        let _ = writeln!(
            out,
            "| supmr.diag  verdict: {:<24} speedup if removed: {:.2}x",
            self.verdict.as_str(),
            self.speedup_if_removed
        );
        out.push_str(&rule);
        let _ = writeln!(
            out,
            "| blocked-time shares (of {:.2}s wall)",
            self.inputs.wall_us as f64 / 1e6
        );
        let rows = [
            ("ingest", self.shares.ingest),
            ("map", self.shares.map),
            ("shuffle", self.shares.shuffle),
            ("memory", self.shares.memory),
            ("merge", self.shares.merge),
        ];
        for (label, s) in rows {
            let filled = ((s * BAR as f64).round() as usize).min(BAR);
            let _ = writeln!(
                out,
                "|   {label:<8}|{}{}| {:>5.1}%",
                "#".repeat(filled),
                " ".repeat(BAR - filled),
                s * 100.0
            );
        }
        out.push_str(&rule);
        let _ = writeln!(out, "| achieved flow");
        for f in &self.inputs.flows.flows {
            let _ = writeln!(
                out,
                "|   {:<8}{:>10.1} MB/s  ({:.1} MB over {:.2}s busy)",
                f.phase.label(),
                f.mb_per_sec(),
                f.bytes as f64 / 1e6,
                f.busy_us as f64 / 1e6
            );
        }
        if self.inputs.budget_bytes > 0 {
            let _ = writeln!(
                out,
                "| memory budget: {} bytes, resident {}, {} spill runs ({} bytes)",
                self.inputs.budget_bytes,
                self.inputs.resident_bytes,
                self.inputs.spill_runs,
                self.inputs.spill_bytes
            );
        }
        out.push_str(&rule);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DiagInputs {
        DiagInputs { wall_us: 10_000_000, map_workers: 4, ..DiagInputs::default() }
    }

    #[test]
    fn ledger_records_and_snapshots() {
        let ledger = FlowLedger::new();
        ledger.record(FlowPhase::Ingest, 2_000_000, Duration::from_millis(500));
        ledger.record(FlowPhase::Ingest, 2_000_000, Duration::from_millis(500));
        assert_eq!(ledger.bytes(FlowPhase::Ingest), 4_000_000);
        let snap = ledger.snapshot();
        let f = snap.get(FlowPhase::Ingest);
        assert_eq!(f.busy_us, 1_000_000);
        assert!((f.mb_per_sec() - 4.0).abs() < 1e-9, "4 MB over 1s = 4 MB/s");
        assert_eq!(snap.get(FlowPhase::Merge).bytes, 0);
    }

    #[test]
    fn external_claims_silence_owned_records() {
        let ledger = FlowLedger::new();
        ledger.mark_external(FlowPhase::Ingest);
        ledger.record_owned(FlowPhase::Ingest, 100, Duration::from_micros(10));
        assert_eq!(ledger.bytes(FlowPhase::Ingest), 0, "runtime recorder stood down");
        ledger.record(FlowPhase::Ingest, 100, Duration::from_micros(10));
        assert_eq!(ledger.bytes(FlowPhase::Ingest), 100, "the external owner still records");
        ledger.record_owned(FlowPhase::Spill, 7, Duration::ZERO);
        assert_eq!(ledger.bytes(FlowPhase::Spill), 7, "unclaimed phases record normally");
    }

    #[test]
    fn ledger_mirrors_registry_counters() {
        let registry = Registry::new();
        let ledger = FlowLedger::new();
        ledger.attach_registry(&registry);
        ledger.record(FlowPhase::Spill, 1024, Duration::from_micros(300));
        let snap = registry.snapshot();
        let spill_bytes = snap
            .entries
            .iter()
            .find(|e| {
                e.name == "supmr.flow.bytes"
                    && e.labels.iter().any(|(k, v)| k == "phase" && v == "spill")
            })
            .expect("flow family registered");
        assert_eq!(spill_bytes.value, MetricValue::Counter(1024));
    }

    #[test]
    fn throttled_ingest_classifies_ingest_bound() {
        let report = BottleneckReport::from_inputs(DiagInputs {
            map_stall_us: 6_000_000,
            map_us: 3_000_000,
            ..base()
        });
        assert_eq!(report.verdict, Bottleneck::IngestBound);
        assert!(report.shares.ingest >= 0.6);
        assert!(report.speedup_if_removed > 2.0, "{}", report.speedup_if_removed);
    }

    #[test]
    fn serial_ingest_phase_alone_is_ingest_bound() {
        // The original runtime has no stalls; the serial ingest phase
        // carries the whole signal.
        let report = BottleneckReport::from_inputs(DiagInputs { ingest_us: 7_000_000, ..base() });
        assert_eq!(report.verdict, Bottleneck::IngestBound);
    }

    #[test]
    fn spilling_budget_classifies_memory_bound() {
        let report = BottleneckReport::from_inputs(DiagInputs {
            budget_bytes: 1 << 20,
            resident_bytes: 900 << 10,
            spill_runs: 40,
            spill_bytes: 50 << 20,
            spill_busy_us: 2_000_000,
            map_stall_us: 6_000_000, // even with big ingest stalls, spilling wins
            ..base()
        });
        assert_eq!(report.verdict, Bottleneck::MemoryBudgetBound);
    }

    #[test]
    fn budget_without_spilling_is_not_memory_bound() {
        let report = BottleneckReport::from_inputs(DiagInputs {
            budget_bytes: 1 << 30,
            resident_bytes: 1 << 10,
            map_us: 8_000_000,
            ..base()
        });
        assert_eq!(report.verdict, Bottleneck::MapBound);
    }

    #[test]
    fn compute_heavy_run_is_map_bound_and_fast_runs_balance() {
        let report = BottleneckReport::from_inputs(DiagInputs { map_us: 9_000_000, ..base() });
        assert_eq!(report.verdict, Bottleneck::MapBound);
        let report = BottleneckReport::from_inputs(base());
        assert_eq!(report.verdict, Bottleneck::Balanced);
        assert_eq!(report.speedup_if_removed, 1.0);
    }

    #[test]
    fn ingest_stalls_mean_map_bound() {
        let report =
            BottleneckReport::from_inputs(DiagInputs { ingest_stall_us: 5_000_000, ..base() });
        assert_eq!(report.verdict, Bottleneck::MapBound);
    }

    #[test]
    fn absorb_contention_means_shuffle_bound() {
        let report = BottleneckReport::from_inputs(DiagInputs {
            absorb_wait_us: 16_000_000, // 4s per worker over 4 workers
            ..base()
        });
        assert_eq!(report.verdict, Bottleneck::ShuffleBound);
        assert!((report.shares.shuffle - 0.4).abs() < 1e-9);
    }

    #[test]
    fn merge_tail_means_reduce_merge_bound() {
        let report = BottleneckReport::from_inputs(DiagInputs { merge_us: 4_000_000, ..base() });
        assert_eq!(report.verdict, Bottleneck::ReduceMergeBound);
    }

    #[test]
    fn diag_v1_schema_is_stable() {
        let mut inputs = DiagInputs { map_stall_us: 6_000_000, map_us: 3_000_000, ..base() };
        inputs.flows.flows[0] =
            PhaseFlow { phase: FlowPhase::Ingest, bytes: 40_000_000, busy_us: 8_000_000 };
        let json = BottleneckReport::from_inputs(inputs).to_json();
        let text = json.render();
        // Golden: the schema's key set and order are stable.
        assert!(
            text.starts_with(r#"{"schema":"supmr.diag.v1","verdict":"ingest-bound""#),
            "{text}"
        );
        let parsed = Json::parse(&text).expect("valid JSON");
        for key in [
            "schema",
            "verdict",
            "speedup_if_removed",
            "wall_us",
            "shares",
            "stalls",
            "memory",
            "flows",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key} in {text}");
        }
        let shares = parsed.get("shares").unwrap();
        for key in ["ingest", "map", "shuffle", "memory", "merge"] {
            assert!(shares.get(key).is_some(), "missing share {key}");
        }
        let flows = parsed.get("flows").unwrap().as_arr().unwrap();
        assert_eq!(flows.len(), 5);
        assert_eq!(flows[0].get("phase").unwrap().as_str(), Some("ingest"));
        assert_eq!(flows[0].get("mb_per_sec").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn from_snapshot_round_trips_registry_families() {
        let registry = Registry::new();
        let ledger = FlowLedger::new();
        ledger.attach_registry(&registry);
        ledger.record(FlowPhase::Ingest, 8_000_000, Duration::from_secs(8));
        registry.counter("supmr.stall.map_us", "", &[("runtime", "pipeline")]).add(6_000_000);
        registry.gauge("supmr.spill.budget_bytes", "", &[]).set(1 << 20);
        registry.histogram("supmr.container.absorb_wait_us", "", &[]).record(1234);
        let inputs = DiagInputs::from_snapshot(&registry.snapshot(), 10_000_000);
        assert_eq!(inputs.map_stall_us, 6_000_000);
        assert_eq!(inputs.budget_bytes, 1 << 20);
        assert_eq!(inputs.absorb_wait_us, 1234);
        assert_eq!(inputs.flows.get(FlowPhase::Ingest).bytes, 8_000_000);
        let report = BottleneckReport::from_inputs(inputs);
        assert_eq!(report.verdict, Bottleneck::IngestBound);
    }

    #[test]
    fn governor_sample_overrides_workers_and_reads_p99() {
        let registry = Registry::new();
        let ledger = FlowLedger::new();
        ledger.attach_registry(&registry);
        ledger.record(FlowPhase::Ingest, 8_000_000, Duration::from_secs(8));
        let waits = registry.histogram("supmr.container.absorb_wait_us", "", &[]);
        for _ in 0..50 {
            waits.record(100);
        }
        waits.record(40_000);
        registry.gauge("supmr.spill.budget_bytes", "", &[]).set(1 << 20);
        registry.gauge("supmr.spill.resident_bytes", "", &[]).set(900 << 10);
        let sample = GovernorSample::from_snapshot(&registry.snapshot(), 10_000_000, 4);
        assert_eq!(sample.report.inputs.map_workers, 4, "governor supplies the real width");
        assert!(sample.absorb_wait_p99_us >= 40_000 * 31 / 32, "{}", sample.absorb_wait_p99_us);
        assert_eq!(sample.budget_bytes, 1 << 20);
        assert_eq!(sample.resident_bytes, 900 << 10);
        assert_eq!(sample.report.verdict, Bottleneck::IngestBound);
    }

    #[test]
    fn ascii_panel_names_the_verdict_and_flows() {
        let mut inputs = DiagInputs { map_stall_us: 6_000_000, ..base() };
        inputs.flows.flows[0] =
            PhaseFlow { phase: FlowPhase::Ingest, bytes: 40_000_000, busy_us: 8_000_000 };
        let panel = BottleneckReport::from_inputs(inputs).render_ascii();
        assert!(panel.contains("verdict: ingest-bound"), "{panel}");
        assert!(panel.contains("blocked-time shares"), "{panel}");
        assert!(panel.contains("5.0 MB/s"), "{panel}");
        assert!(panel.contains("60.0%"), "{panel}");
    }

    #[test]
    fn classification_overhead_is_negligible() {
        // The diagnosis runs once per report or scrape; even a thousand
        // classifications must be effectively free next to any job.
        let t0 = std::time::Instant::now();
        for i in 0..1000u64 {
            let report =
                BottleneckReport::from_inputs(DiagInputs { map_stall_us: i * 1000, ..base() });
            let _ = report.to_json().render();
        }
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
