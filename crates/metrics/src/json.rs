//! A minimal JSON value model: rendering and parsing.
//!
//! The trace exporters ([`crate::chrome`]) and the runtime's
//! `JobReport::to_json()` need to emit JSON, and the trace-validation
//! tests need to read it back, without pulling a serialization framework
//! into a dependency-free workspace. [`Json`] is the smallest value
//! model that covers both directions: object keys keep insertion order,
//! so emitted schemas are byte-stable across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values render without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a value.
    ///
    /// # Errors
    /// Returns a description of the first syntax error encountered.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::str("map \"wave\"\n")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(1.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::from(0u64))])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(2.25).render(), "2.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn object_key_order_is_stable() {
        let v = Json::obj(vec![("b", Json::Null), ("a", Json::Null)]);
        assert_eq!(v.render(), r#"{"b":null,"a":null}"#);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""a\tbéc""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tb\u{e9}c"));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"xs":[1,2],"s":"hi"}"#).unwrap();
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert!(v.get("missing").is_none());
    }
}
