//! A `collectl`-style CPU utilization sampler for real executions.
//!
//! Reads `/proc/stat` on a fixed interval from a background thread and
//! produces a [`UtilTrace`] with user/sys/iowait percentages, exactly the
//! series the paper's figures plot. On platforms without `/proc` the
//! sampler degrades to an explicit [`UtilTrace::unavailable`] marker
//! rather than failing the run — or silently yielding an empty trace
//! that is indistinguishable from "the job finished between samples".

use crate::trace::{UtilSample, UtilTrace};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregate jiffy counters parsed from the `cpu ` line of `/proc/stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTimes {
    /// Time in user space (user + nice).
    pub user: u64,
    /// Time in kernel space (system + irq + softirq).
    pub sys: u64,
    /// Time idle.
    pub idle: u64,
    /// Time waiting for IO.
    pub iowait: u64,
}

impl CpuTimes {
    /// Parse the aggregate `cpu ` line of a `/proc/stat` dump.
    /// Returns `None` if the line is absent or malformed.
    pub fn parse_proc_stat(contents: &str) -> Option<CpuTimes> {
        let line = contents.lines().find(|l| {
            l.starts_with("cpu") && l.as_bytes().get(3).is_some_and(|b| b.is_ascii_whitespace())
        })?;
        let fields: Vec<u64> =
            line.split_ascii_whitespace().skip(1).map_while(|f| f.parse().ok()).collect();
        if fields.len() < 5 {
            return None;
        }
        let get = |i: usize| fields.get(i).copied().unwrap_or(0);
        Some(CpuTimes {
            user: get(0) + get(1),
            sys: get(2) + get(5) + get(6),
            idle: get(3),
            iowait: get(4),
        })
    }

    /// Percent-utilization deltas between two readings.
    /// Returns a zero sample if no time elapsed between readings.
    pub fn delta_percent(&self, later: &CpuTimes) -> (f64, f64, f64) {
        let d = |a: u64, b: u64| b.saturating_sub(a) as f64;
        let user = d(self.user, later.user);
        let sys = d(self.sys, later.sys);
        let idle = d(self.idle, later.idle);
        let iowait = d(self.iowait, later.iowait);
        let total = user + sys + idle + iowait;
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (user / total * 100.0, sys / total * 100.0, iowait / total * 100.0)
    }
}

fn read_cpu_times() -> Option<CpuTimes> {
    let contents = std::fs::read_to_string("/proc/stat").ok()?;
    CpuTimes::parse_proc_stat(&contents)
}

/// Background utilization sampler. Call [`UtilizationSampler::start`],
/// run the workload, then [`UtilizationSampler::stop`] to collect the
/// trace.
pub struct UtilizationSampler {
    stop_flag: Arc<AtomicBool>,
    shared: Arc<Mutex<UtilTrace>>,
    source_seen: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl UtilizationSampler {
    /// Start sampling every `interval`. A short interval (e.g. 100ms) gives
    /// figure-quality traces; the paper notes its tool's sampling interval
    /// was too coarse to catch the shortest spikes.
    pub fn start(interval: Duration) -> UtilizationSampler {
        let stop_flag = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Mutex::new(UtilTrace::new()));
        let source_seen = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop_flag);
        let trace = Arc::clone(&shared);
        let seen = Arc::clone(&source_seen);
        let handle = std::thread::Builder::new()
            .name("util-sampler".into())
            .spawn(move || {
                let t0 = Instant::now();
                let mut prev = read_cpu_times();
                if prev.is_some() {
                    seen.store(true, Ordering::Relaxed);
                }
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let now = read_cpu_times();
                    if now.is_some() {
                        seen.store(true, Ordering::Relaxed);
                    }
                    if let (Some(p), Some(n)) = (prev, now) {
                        let (user, sys, iowait) = p.delta_percent(&n);
                        trace.lock().push(UtilSample {
                            t: t0.elapsed().as_secs_f64(),
                            user,
                            sys,
                            iowait,
                        });
                    }
                    prev = now;
                }
            })
            .expect("spawn sampler thread");
        UtilizationSampler { stop_flag, shared, source_seen, handle: Some(handle) }
    }

    /// Stop sampling and return the collected trace. If `/proc/stat` was
    /// never readable, the result is the explicit
    /// [`UtilTrace::unavailable`] marker rather than an empty trace.
    pub fn stop(mut self) -> UtilTrace {
        self.stop_flag.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if !self.source_seen.load(Ordering::Relaxed) {
            return UtilTrace::unavailable();
        }
        std::mem::take(&mut *self.shared.lock())
    }
}

impl Drop for UtilizationSampler {
    fn drop(&mut self) {
        self.stop_flag.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAT: &str = "\
cpu  100 10 50 800 40 5 5 0 0 0
cpu0 50 5 25 400 20 2 2 0 0 0
intr 12345
ctxt 6789
";

    #[test]
    fn parses_aggregate_cpu_line() {
        let t = CpuTimes::parse_proc_stat(STAT).unwrap();
        assert_eq!(t.user, 110); // user + nice
        assert_eq!(t.sys, 60); // system + irq + softirq
        assert_eq!(t.idle, 800);
        assert_eq!(t.iowait, 40);
    }

    #[test]
    fn skips_per_cpu_lines_and_rejects_garbage() {
        assert!(CpuTimes::parse_proc_stat("cpu0 1 2 3 4 5\n").is_none());
        assert!(CpuTimes::parse_proc_stat("").is_none());
        assert!(CpuTimes::parse_proc_stat("cpu  1 2\n").is_none());
    }

    #[test]
    fn delta_percentages() {
        let a = CpuTimes { user: 0, sys: 0, idle: 0, iowait: 0 };
        let b = CpuTimes { user: 50, sys: 10, idle: 30, iowait: 10 };
        let (user, sys, iowait) = a.delta_percent(&b);
        assert!((user - 50.0).abs() < 1e-9);
        assert!((sys - 10.0).abs() < 1e-9);
        assert!((iowait - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_delta_is_zero() {
        let a = CpuTimes { user: 5, sys: 5, idle: 5, iowait: 5 };
        assert_eq!(a.delta_percent(&a), (0.0, 0.0, 0.0));
    }

    #[test]
    fn counter_wrap_saturates_instead_of_panicking() {
        let a = CpuTimes { user: 100, sys: 100, idle: 100, iowait: 100 };
        let b = CpuTimes { user: 50, sys: 150, idle: 150, iowait: 100 };
        let (user, _sys, _iowait) = a.delta_percent(&b);
        assert_eq!(user, 0.0);
    }

    #[test]
    fn sampler_collects_some_samples_on_linux() {
        let sampler = UtilizationSampler::start(Duration::from_millis(10));
        // Burn a little CPU so the trace is not all idle.
        let mut x = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(60) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let trace = sampler.stop();
        if std::path::Path::new("/proc/stat").exists() {
            assert!(!trace.is_unavailable(), "source exists, trace must not be marked");
            assert!(!trace.samples().is_empty(), "expected samples on Linux");
            for s in trace.samples() {
                assert!(s.total() <= 100.0 + 1e-6);
            }
        } else {
            assert!(trace.is_unavailable(), "no /proc/stat must yield the explicit marker");
        }
    }

    #[test]
    fn unavailable_marker_is_distinct_from_empty() {
        assert!(UtilTrace::unavailable().is_unavailable());
        assert!(!UtilTrace::new().is_unavailable());
        assert_ne!(UtilTrace::unavailable(), UtilTrace::new());
        assert_eq!(UtilTrace::unavailable().samples().len(), 0);
    }
}
