//! Typed job event tracing: the instrumentation behind the paper's
//! timelines.
//!
//! The paper's argument is carried by utilization timelines (Figs. 1–3,
//! 5–7): the ingest/map overlap and the merge "step curve" are visible
//! only if the runtime can say *which phase each thread was in, and why
//! it was waiting*. [`Tracer`] is that instrument: a lock-cheap recorder
//! the runtimes drive with typed [`EventKind`]s — span starts/ends for
//! chunk ingest, map waves, reduce partitions, and merge rounds, plus
//! explicit **stall events** ([`EventKind::MapWaitingForChunk`],
//! [`EventKind::IngestWaitingForContainer`]) that quantify how much of
//! the double-buffering overlap of Fig. 2 was actually achieved.
//!
//! Each OS thread appends to its own buffer (registered on first use,
//! guarded by a mutex only that thread and the final collection touch),
//! and every event carries a globally sequence-stamped `seq` plus a
//! microsecond timestamp from the job epoch. [`Tracer::finish`] folds
//! the buffers into a [`JobTrace`], which the exporters in
//! [`crate::chrome`] and [`crate::ascii`] render.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// How much detail a job records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing; every emit is a single branch.
    #[default]
    Off,
    /// Per-wave granularity: chunk ingests, map waves, the reduce wave,
    /// merge rounds, pool dispatches, and stalls.
    Wave,
    /// Wave granularity plus one span per map task and reduce partition.
    Task,
}

impl TraceLevel {
    /// Whether any events are recorded.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Whether per-task spans are recorded.
    pub fn tasks(self) -> bool {
        self == TraceLevel::Task
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceLevel::Off => "off",
            TraceLevel::Wave => "wave",
            TraceLevel::Task => "task",
        })
    }
}

impl std::str::FromStr for TraceLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<TraceLevel, String> {
        match s {
            "off" | "none" => Ok(TraceLevel::Off),
            "wave" => Ok(TraceLevel::Wave),
            "task" => Ok(TraceLevel::Task),
            other => Err(format!("unknown trace level '{other}' (off|wave|task)")),
        }
    }
}

/// A typed job event. Start/End variants delimit spans; the two
/// `Waiting` variants are stalls (the wait is over when they are
/// emitted, with its duration in the payload); `PoolDispatch` is an
/// instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An ingest of chunk `chunk` from primary storage began.
    ChunkIngestStart {
        /// Chunk index within the job.
        chunk: u32,
    },
    /// The ingest of chunk `chunk` completed, having read `bytes`.
    ChunkIngestEnd {
        /// Chunk index within the job.
        chunk: u32,
        /// Bytes read from primary storage for this chunk.
        bytes: u64,
    },
    /// A map wave over chunk `round` started with `tasks` input splits.
    MapWaveStart {
        /// Pipeline round (= chunk index being mapped).
        round: u32,
        /// Input splits queued for the wave.
        tasks: u64,
    },
    /// The map wave of `round` completed.
    MapWaveEnd {
        /// Pipeline round.
        round: u32,
    },
    /// One map task began (task level only).
    MapTaskStart {
        /// Pipeline round.
        round: u32,
        /// Task index within the wave.
        task: u64,
        /// Split length in bytes.
        bytes: u64,
    },
    /// One map task finished (task level only).
    MapTaskEnd {
        /// Pipeline round.
        round: u32,
        /// Task index within the wave.
        task: u64,
    },
    /// The reduce wave started over `partitions` key partitions.
    ReduceWaveStart {
        /// Number of reduce partitions.
        partitions: u64,
    },
    /// The reduce wave completed.
    ReduceWaveEnd,
    /// A partition's container drain began on a reduce worker (task
    /// level only): the shard payload is being materialized into reduce
    /// input, immediately before that partition's reduce span.
    DrainPartitionStart {
        /// Partition index.
        partition: u64,
    },
    /// The partition's container drain finished (task level only).
    DrainPartitionEnd {
        /// Partition index.
        partition: u64,
    },
    /// One reduce partition began (task level only).
    ReducePartitionStart {
        /// Partition index.
        partition: u64,
    },
    /// One reduce partition finished (task level only).
    ReducePartitionEnd {
        /// Partition index.
        partition: u64,
    },
    /// A merge round started over `width` concurrent merges.
    MergeRoundStart {
        /// Merge round index (pairwise runs log₂ k of them, p-way one).
        round: u32,
        /// Concurrent merge width of the round.
        width: u32,
    },
    /// The merge round completed.
    MergeRoundEnd {
        /// Merge round index.
        round: u32,
    },
    /// A batch of tasks was dispatched to the persistent worker pool
    /// instead of spawning a wave (instant).
    PoolDispatch {
        /// Tasks in the batch.
        tasks: u64,
        /// Pool threads the batch can use.
        workers: u64,
    },
    /// The memory accountant tripped and a container region is being
    /// drained to a sorted spill run on disk.
    SpillRunStart {
        /// Job-wide spill run sequence number.
        run: u64,
        /// Reduce partition the run's keys belong to.
        partition: u64,
    },
    /// The spill run finished writing.
    SpillRunEnd {
        /// Job-wide spill run sequence number.
        run: u64,
        /// Records written to the run.
        records: u64,
        /// Framed bytes written to the run.
        bytes: u64,
    },
    /// A partition's external merge (spilled runs + in-memory remainder)
    /// began on a reduce worker.
    ExternalMergeStart {
        /// Partition index.
        partition: u64,
        /// Spilled runs feeding the merge (the in-memory remainder adds
        /// one more source).
        runs: u64,
    },
    /// The partition's external merge finished.
    ExternalMergeEnd {
        /// Partition index.
        partition: u64,
    },
    /// A pipeline stage began executing on its driver thread.
    StageStart {
        /// Stage index within the pipeline (scheduling order).
        stage: u32,
    },
    /// The pipeline stage finished.
    StageEnd {
        /// Stage index within the pipeline.
        stage: u32,
        /// Pairs the stage produced (reduced output, pre-merge count
        /// for hand-off stages).
        pairs: u64,
    },
    /// **Stall:** the map side sat idle for `wait_us` µs after finishing
    /// its wave because the next chunk's ingest had not completed — the
    /// pipeline was ingest-bound at this round.
    MapWaitingForChunk {
        /// Round whose next chunk was late.
        round: u32,
        /// Idle time in microseconds.
        wait_us: u64,
    },
    /// **Stall:** the ingest side finished reading `wait_us` µs before
    /// the mappers released it — the pipeline was map-bound (compute
    /// dominated) at this chunk.
    IngestWaitingForContainer {
        /// Chunk whose ingest finished early.
        chunk: u32,
        /// Idle time in microseconds.
        wait_us: u64,
    },
    /// The feedback governor changed a runtime knob in response to a
    /// live bottleneck verdict (instant).
    GovernorAction {
        /// The classifier verdict (or controller name) that motivated
        /// the change, e.g. `"ingest-bound"` or `"chunk-feedback"`.
        verdict: &'static str,
        /// Which knob moved, e.g. `"map_width"` or `"chunk_bytes"`.
        knob: &'static str,
        /// The knob's new value.
        value: u64,
    },
}

impl EventKind {
    /// Stable event name (used by every exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ChunkIngestStart { .. } => "ChunkIngestStart",
            EventKind::ChunkIngestEnd { .. } => "ChunkIngestEnd",
            EventKind::MapWaveStart { .. } => "MapWaveStart",
            EventKind::MapWaveEnd { .. } => "MapWaveEnd",
            EventKind::MapTaskStart { .. } => "MapTaskStart",
            EventKind::MapTaskEnd { .. } => "MapTaskEnd",
            EventKind::ReduceWaveStart { .. } => "ReduceWaveStart",
            EventKind::ReduceWaveEnd => "ReduceWaveEnd",
            EventKind::DrainPartitionStart { .. } => "DrainPartitionStart",
            EventKind::DrainPartitionEnd { .. } => "DrainPartitionEnd",
            EventKind::ReducePartitionStart { .. } => "ReducePartitionStart",
            EventKind::ReducePartitionEnd { .. } => "ReducePartitionEnd",
            EventKind::MergeRoundStart { .. } => "MergeRoundStart",
            EventKind::MergeRoundEnd { .. } => "MergeRoundEnd",
            EventKind::PoolDispatch { .. } => "PoolDispatch",
            EventKind::SpillRunStart { .. } => "SpillRunStart",
            EventKind::SpillRunEnd { .. } => "SpillRunEnd",
            EventKind::ExternalMergeStart { .. } => "ExternalMergeStart",
            EventKind::ExternalMergeEnd { .. } => "ExternalMergeEnd",
            EventKind::StageStart { .. } => "StageStart",
            EventKind::StageEnd { .. } => "StageEnd",
            EventKind::MapWaitingForChunk { .. } => "MapWaitingForChunk",
            EventKind::IngestWaitingForContainer { .. } => "IngestWaitingForContainer",
            EventKind::GovernorAction { .. } => "GovernorAction",
        }
    }

    /// For a span-start event, the key its matching end must carry.
    pub fn span_open(&self) -> Option<SpanKey> {
        match *self {
            EventKind::ChunkIngestStart { chunk } => Some(SpanKey::Ingest(chunk)),
            EventKind::MapWaveStart { round, .. } => Some(SpanKey::MapWave(round)),
            EventKind::MapTaskStart { round, task, .. } => Some(SpanKey::MapTask(round, task)),
            EventKind::ReduceWaveStart { .. } => Some(SpanKey::ReduceWave),
            EventKind::DrainPartitionStart { partition } => Some(SpanKey::Drain(partition)),
            EventKind::ReducePartitionStart { partition } => Some(SpanKey::Reduce(partition)),
            EventKind::MergeRoundStart { round, .. } => Some(SpanKey::Merge(round)),
            EventKind::SpillRunStart { run, .. } => Some(SpanKey::SpillRun(run)),
            EventKind::ExternalMergeStart { partition, .. } => {
                Some(SpanKey::ExternalMerge(partition))
            }
            EventKind::StageStart { stage } => Some(SpanKey::Stage(stage)),
            _ => None,
        }
    }

    /// For a span-end event, the key of the start it closes.
    pub fn span_close(&self) -> Option<SpanKey> {
        match *self {
            EventKind::ChunkIngestEnd { chunk, .. } => Some(SpanKey::Ingest(chunk)),
            EventKind::MapWaveEnd { round } => Some(SpanKey::MapWave(round)),
            EventKind::MapTaskEnd { round, task } => Some(SpanKey::MapTask(round, task)),
            EventKind::ReduceWaveEnd => Some(SpanKey::ReduceWave),
            EventKind::DrainPartitionEnd { partition } => Some(SpanKey::Drain(partition)),
            EventKind::ReducePartitionEnd { partition } => Some(SpanKey::Reduce(partition)),
            EventKind::MergeRoundEnd { round } => Some(SpanKey::Merge(round)),
            EventKind::SpillRunEnd { run, .. } => Some(SpanKey::SpillRun(run)),
            EventKind::ExternalMergeEnd { partition } => Some(SpanKey::ExternalMerge(partition)),
            EventKind::StageEnd { stage, .. } => Some(SpanKey::Stage(stage)),
            _ => None,
        }
    }

    /// The stall duration, if this is a stall event.
    pub fn stall_us(&self) -> Option<(StallSide, u64)> {
        match *self {
            EventKind::MapWaitingForChunk { wait_us, .. } => Some((StallSide::Map, wait_us)),
            EventKind::IngestWaitingForContainer { wait_us, .. } => {
                Some((StallSide::Ingest, wait_us))
            }
            _ => None,
        }
    }
}

/// Which side of the pipeline a stall idled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallSide {
    /// Mappers idle, waiting on ingest.
    Map,
    /// Ingest idle, waiting on mappers.
    Ingest,
}

/// Identity of a span, used to pair starts with ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKey {
    /// Chunk ingest, by chunk index.
    Ingest(u32),
    /// Map wave, by round.
    MapWave(u32),
    /// Map task, by (round, task).
    MapTask(u32, u64),
    /// The reduce wave.
    ReduceWave,
    /// Container drain of a partition, by index.
    Drain(u64),
    /// Reduce partition, by index.
    Reduce(u64),
    /// Merge round, by index.
    Merge(u32),
    /// Spill run write, by job-wide run sequence number.
    SpillRun(u64),
    /// External (spill-aware) merge of a partition, by index.
    ExternalMerge(u64),
    /// Pipeline stage, by scheduling index.
    Stage(u32),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence stamp: total order across all threads.
    pub seq: u64,
    /// Microseconds since the job epoch.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Callback invoked synchronously on every emitted event
/// (`Job::on_event`). Keep it cheap: it runs on the emitting thread.
pub type EventCallback = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

struct ThreadBuf {
    name: String,
    events: Mutex<Vec<TraceEvent>>,
}

struct TracerInner {
    id: u64,
    level: TraceLevel,
    epoch: Instant,
    seq: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    callback: Option<EventCallback>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of (tracer id → this thread's buffer), so the
    /// hot path after first touch is a TLS lookup plus an uncontended
    /// mutex push.
    static THREAD_BUFS: RefCell<Vec<(u64, Weak<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

/// The event recorder one job threads through its runtimes. Cloning is
/// cheap (shared handle); all clones feed the same trace.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("level", &self.inner.level).finish_non_exhaustive()
    }
}

impl Tracer {
    /// A recorder at `level`, with the job epoch starting now.
    pub fn new(level: TraceLevel, callback: Option<EventCallback>) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                level,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                threads: Mutex::new(Vec::new()),
                callback: None,
            }),
        }
        .with_callback(callback)
    }

    fn with_callback(mut self, callback: Option<EventCallback>) -> Tracer {
        if callback.is_some() {
            let inner = Arc::get_mut(&mut self.inner).expect("fresh tracer is unshared");
            inner.callback = callback;
        }
        self
    }

    /// A disabled recorder: every emit is one branch, nothing is stored.
    pub fn off() -> Tracer {
        Tracer::new(TraceLevel::Off, None)
    }

    /// The configured detail level.
    pub fn level(&self) -> TraceLevel {
        self.inner.level
    }

    /// The job epoch all timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    fn buf(&self) -> Arc<ThreadBuf> {
        let id = self.inner.id;
        THREAD_BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(buf) = cache.iter().find(|(i, _)| *i == id).and_then(|(_, w)| w.upgrade()) {
                return buf;
            }
            // First event from this thread: register a buffer.
            let buf = Arc::new(ThreadBuf {
                name: std::thread::current().name().map_or_else(
                    || format!("thread-{:?}", std::thread::current().id()),
                    String::from,
                ),
                events: Mutex::new(Vec::new()),
            });
            self.inner.threads.lock().push(Arc::clone(&buf));
            cache.retain(|(_, w)| w.strong_count() > 0);
            cache.push((id, Arc::downgrade(&buf)));
            buf
        })
    }

    /// Record an event now. A no-op (single branch) when the level is
    /// [`TraceLevel::Off`].
    pub fn emit(&self, kind: EventKind) {
        if !self.inner.level.enabled() {
            return;
        }
        self.emit_at_us(self.inner.epoch.elapsed().as_micros() as u64, kind);
    }

    /// Record an event with an explicit timestamp (an [`Instant`] taken
    /// earlier), for spans whose boundaries were measured before the
    /// emit — e.g. merge rounds timed inside the merge backend.
    pub fn emit_at(&self, at: Instant, kind: EventKind) {
        if !self.inner.level.enabled() {
            return;
        }
        let t_us = at.saturating_duration_since(self.inner.epoch).as_micros() as u64;
        self.emit_at_us(t_us, kind);
    }

    fn emit_at_us(&self, t_us: u64, kind: EventKind) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent { seq, t_us, kind };
        if let Some(cb) = &self.inner.callback {
            cb(&event);
        }
        self.buf().events.lock().push(event);
    }

    /// Collect every thread's buffer into the final [`JobTrace`].
    /// Buffers registered after this call feed a trace nobody collects.
    pub fn finish(&self) -> JobTrace {
        let threads = self
            .inner
            .threads
            .lock()
            .iter()
            .map(|buf| ThreadTrace {
                name: buf.name.clone(),
                events: std::mem::take(&mut *buf.events.lock()),
            })
            .filter(|t| !t.events.is_empty())
            .collect();
        JobTrace { threads }
    }
}

/// A bounded ring of the most recent events, feeding the
/// `/debug/trace?tail=N` endpoint: the live counterpart of the full
/// [`JobTrace`]. Install it as (part of) the job's [`EventCallback`]
/// via [`TraceRing::callback`]; old events fall off the front once
/// `cap` is reached, so memory stays bounded however long the job runs.
pub struct TraceRing {
    cap: usize,
    buf: Mutex<std::collections::VecDeque<(String, TraceEvent)>>,
}

impl TraceRing {
    /// Default capacity: enough tail for a useful live window without
    /// unbounded growth.
    pub const DEFAULT_CAP: usize = 4096;

    /// A ring holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Arc<TraceRing> {
        Arc::new(TraceRing { cap: cap.max(1), buf: Mutex::new(std::collections::VecDeque::new()) })
    }

    /// Record `event` from the current thread, evicting the oldest
    /// entry when full.
    pub fn push(&self, event: &TraceEvent) {
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{:?}", std::thread::current().id()), String::from);
        let mut buf = self.buf.lock();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back((name, event.clone()));
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// An [`EventCallback`] feeding this ring, to pass (or compose)
    /// into [`Tracer::new`].
    pub fn callback(self: &Arc<Self>) -> EventCallback {
        let ring = Arc::clone(self);
        Arc::new(move |event| ring.push(event))
    }

    /// The newest `n` events as JSONL (same line schema as
    /// [`crate::chrome::to_jsonl`]), oldest of the tail first.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let buf = self.buf.lock();
        let skip = buf.len().saturating_sub(n);
        let mut out = String::new();
        for (name, event) in buf.iter().skip(skip) {
            out.push_str(&crate::chrome::event_line(name, event).render());
            out.push('\n');
        }
        out
    }

    /// The newest `n` [`EventKind::GovernorAction`] events as JSONL,
    /// oldest of the tail first — the `/debug/governor` feed. Other
    /// event kinds never count against `n`.
    pub fn tail_governor_jsonl(&self, n: usize) -> String {
        let buf = self.buf.lock();
        let actions: Vec<&(String, TraceEvent)> = buf
            .iter()
            .filter(|(_, e)| matches!(e.kind, EventKind::GovernorAction { .. }))
            .collect();
        let skip = actions.len().saturating_sub(n);
        let mut out = String::new();
        for (name, event) in actions.into_iter().skip(skip) {
            out.push_str(&crate::chrome::event_line(name, event).render());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing").field("cap", &self.cap).field("len", &self.len()).finish()
    }
}

/// One thread's recorded events, in emission order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThreadTrace {
    /// OS thread name at first emit.
    pub name: String,
    /// Events in the order the thread recorded them.
    pub events: Vec<TraceEvent>,
}

/// Summed stall time by side — the pipeline's idle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallStats {
    /// Total time mappers sat idle waiting for a chunk
    /// ([`EventKind::MapWaitingForChunk`]).
    pub map_waiting: Duration,
    /// Total time ingest sat idle waiting for the mappers
    /// ([`EventKind::IngestWaitingForContainer`]).
    pub ingest_waiting: Duration,
}

/// A paired span extracted from a thread's start/end events.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Index into [`JobTrace::threads`].
    pub thread: usize,
    /// The span identity.
    pub key: SpanKey,
    /// The start event's kind (carries the payload: tasks, bytes, …).
    pub start: EventKind,
    /// Microseconds since epoch at start.
    pub start_us: u64,
    /// Span length in microseconds.
    pub dur_us: u64,
}

/// One pipeline round reconstructed from a trace: what Fig. 2 plots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceRound {
    /// Round index (= chunk mapped this round).
    pub round: u32,
    /// Bytes of the chunk whose ingest overlapped this round.
    pub ingest_bytes: u64,
    /// Duration of the overlapped ingest (zero in the last round, which
    /// has no next chunk).
    pub ingest: Duration,
    /// Duration of this round's map wave.
    pub map: Duration,
    /// Mapper idle time at the end of this round (ingest-bound round).
    pub map_wait: Duration,
    /// Ingest idle time during this round (map-bound round).
    pub ingest_wait: Duration,
}

/// A completed job's event trace: per-thread event logs plus the
/// analyses every consumer needs (stall totals, span pairing, round
/// reconstruction, invariant validation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobTrace {
    /// Per-thread logs, in thread-registration order (the coordinator
    /// thread is first).
    pub threads: Vec<ThreadTrace>,
}

impl JobTrace {
    /// Total recorded events.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// All events of all threads, ordered by global sequence stamp.
    pub fn ordered_events(&self) -> Vec<&TraceEvent> {
        let mut all: Vec<&TraceEvent> = self.threads.iter().flat_map(|t| t.events.iter()).collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Summed stall time by side.
    pub fn stall_totals(&self) -> StallStats {
        let mut stats = StallStats::default();
        for event in self.threads.iter().flat_map(|t| t.events.iter()) {
            match event.kind.stall_us() {
                Some((StallSide::Map, us)) => stats.map_waiting += Duration::from_micros(us),
                Some((StallSide::Ingest, us)) => stats.ingest_waiting += Duration::from_micros(us),
                None => {}
            }
        }
        stats
    }

    /// Pair every span start with its end, per thread.
    ///
    /// Unclosed spans are dropped; [`validate`](JobTrace::validate)
    /// reports them as errors.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = Vec::new();
        for (thread, log) in self.threads.iter().enumerate() {
            let mut open: Vec<(SpanKey, EventKind, u64)> = Vec::new();
            for event in &log.events {
                if let Some(key) = event.kind.span_open() {
                    open.push((key, event.kind.clone(), event.t_us));
                } else if let Some(key) = event.kind.span_close() {
                    if let Some(pos) = open.iter().rposition(|(k, _, _)| *k == key) {
                        let (_, start, start_us) = open.remove(pos);
                        spans.push(Span {
                            thread,
                            key,
                            start,
                            start_us,
                            dur_us: event.t_us.saturating_sub(start_us),
                        });
                    }
                }
            }
        }
        spans
    }

    /// Reconstruct per-round pipeline timing (the measured Fig. 2).
    ///
    /// Round *i* maps chunk *i* while chunk *i+1* ingests, so the
    /// ingest attributed to round *i* is the span of chunk *i+1*.
    pub fn rounds(&self) -> Vec<TraceRound> {
        let spans = self.spans();
        let max_round = spans
            .iter()
            .filter_map(|s| match s.key {
                SpanKey::MapWave(r) => Some(r),
                _ => None,
            })
            .max();
        let Some(max_round) = max_round else { return Vec::new() };
        let mut rounds: Vec<TraceRound> =
            (0..=max_round).map(|round| TraceRound { round, ..TraceRound::default() }).collect();
        for span in &spans {
            match span.key {
                SpanKey::MapWave(r) => rounds[r as usize].map = Duration::from_micros(span.dur_us),
                // Chunk 0 ingests serially before round 0; chunk i+1
                // overlaps round i.
                SpanKey::Ingest(chunk) if chunk > 0 && chunk <= max_round => {
                    let round = &mut rounds[(chunk - 1) as usize];
                    round.ingest = Duration::from_micros(span.dur_us);
                    if let EventKind::ChunkIngestStart { .. } = span.start {
                        // Bytes live on the end event; recover them below.
                    }
                }
                _ => {}
            }
        }
        for event in self.threads.iter().flat_map(|t| t.events.iter()) {
            match event.kind {
                EventKind::ChunkIngestEnd { chunk, bytes } if chunk > 0 && chunk <= max_round => {
                    rounds[(chunk - 1) as usize].ingest_bytes = bytes;
                }
                EventKind::MapWaitingForChunk { round, wait_us } if round <= max_round => {
                    rounds[round as usize].map_wait += Duration::from_micros(wait_us);
                }
                EventKind::IngestWaitingForContainer { chunk, wait_us }
                    if chunk > 0 && chunk <= max_round =>
                {
                    rounds[(chunk - 1) as usize].ingest_wait += Duration::from_micros(wait_us);
                }
                _ => {}
            }
        }
        rounds
    }

    /// Check the structural invariants every exporter and test relies
    /// on:
    ///
    /// 1. sequence stamps strictly increase within each thread;
    /// 2. timestamps are non-decreasing within each thread;
    /// 3. span starts and ends pair up and nest without overlap within
    ///    a thread (an end always closes the innermost open span of its
    ///    key, and no span remains open at the end of the log).
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, log) in self.threads.iter().enumerate() {
            let mut open: Vec<SpanKey> = Vec::new();
            let mut last_seq: Option<u64> = None;
            let mut last_t: u64 = 0;
            for event in &log.events {
                if let Some(prev) = last_seq {
                    if event.seq <= prev {
                        return Err(format!(
                            "thread {i} ({}): seq {} after {prev}",
                            log.name, event.seq
                        ));
                    }
                }
                last_seq = Some(event.seq);
                if event.t_us < last_t {
                    return Err(format!(
                        "thread {i} ({}): time went backwards ({} < {last_t} µs) at {}",
                        log.name,
                        event.t_us,
                        event.kind.name()
                    ));
                }
                last_t = event.t_us;
                if let Some(key) = event.kind.span_open() {
                    open.push(key);
                } else if let Some(key) = event.kind.span_close() {
                    match open.pop() {
                        Some(top) if top == key => {}
                        Some(top) => {
                            return Err(format!(
                                "thread {i} ({}): {:?} closed while {top:?} was innermost",
                                log.name, key
                            ));
                        }
                        None => {
                            return Err(format!(
                                "thread {i} ({}): {:?} closed with no open span",
                                log.name, key
                            ));
                        }
                    }
                }
            }
            if let Some(key) = open.first() {
                return Err(format!("thread {i} ({}): {key:?} never closed", log.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let tracer = Tracer::off();
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 4 });
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        assert_eq!(tracer.finish().event_count(), 0);
    }

    #[test]
    fn events_are_sequence_stamped_and_validate() {
        let tracer = Tracer::new(TraceLevel::Wave, None);
        tracer.emit(EventKind::ChunkIngestStart { chunk: 0 });
        tracer.emit(EventKind::ChunkIngestEnd { chunk: 0, bytes: 100 });
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 2 });
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        let trace = tracer.finish();
        assert_eq!(trace.event_count(), 4);
        assert_eq!(trace.threads.len(), 1);
        trace.validate().expect("well-formed trace");
        let seqs: Vec<u64> = trace.threads[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_thread_buffers_merge_into_one_trace() {
        let tracer = Tracer::new(TraceLevel::Wave, None);
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 1 });
        let t2 = tracer.clone();
        std::thread::spawn(move || {
            t2.emit(EventKind::ChunkIngestStart { chunk: 1 });
            t2.emit(EventKind::ChunkIngestEnd { chunk: 1, bytes: 7 });
        })
        .join()
        .unwrap();
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        let trace = tracer.finish();
        assert_eq!(trace.threads.len(), 2);
        assert_eq!(trace.event_count(), 4);
        trace.validate().expect("each thread nests cleanly");
        // Global sequence order interleaves the threads.
        let ordered = trace.ordered_events();
        assert_eq!(ordered.len(), 4);
        assert!(ordered.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn callback_sees_every_event() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let cb: EventCallback = Arc::new(move |_e| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        let tracer = Tracer::new(TraceLevel::Wave, Some(cb));
        tracer.emit(EventKind::PoolDispatch { tasks: 3, workers: 2 });
        tracer.emit(EventKind::MapWaitingForChunk { round: 0, wait_us: 10 });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stall_totals_sum_by_side() {
        let tracer = Tracer::new(TraceLevel::Wave, None);
        tracer.emit(EventKind::MapWaitingForChunk { round: 0, wait_us: 1_000 });
        tracer.emit(EventKind::MapWaitingForChunk { round: 1, wait_us: 2_000 });
        tracer.emit(EventKind::IngestWaitingForContainer { chunk: 2, wait_us: 500 });
        let stats = tracer.finish().stall_totals();
        assert_eq!(stats.map_waiting, Duration::from_micros(3_000));
        assert_eq!(stats.ingest_waiting, Duration::from_micros(500));
    }

    #[test]
    fn validate_rejects_overlapping_spans() {
        let trace = JobTrace {
            threads: vec![ThreadTrace {
                name: "t".into(),
                events: vec![
                    TraceEvent { seq: 0, t_us: 0, kind: EventKind::ChunkIngestStart { chunk: 0 } },
                    TraceEvent {
                        seq: 1,
                        t_us: 1,
                        kind: EventKind::MapWaveStart { round: 0, tasks: 1 },
                    },
                    // Ingest ends while the map wave (opened later) is
                    // still open: not nested.
                    TraceEvent {
                        seq: 2,
                        t_us: 2,
                        kind: EventKind::ChunkIngestEnd { chunk: 0, bytes: 1 },
                    },
                    TraceEvent { seq: 3, t_us: 3, kind: EventKind::MapWaveEnd { round: 0 } },
                ],
            }],
        };
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_unclosed_and_unopened_spans() {
        let unclosed = JobTrace {
            threads: vec![ThreadTrace {
                name: "t".into(),
                events: vec![TraceEvent {
                    seq: 0,
                    t_us: 0,
                    kind: EventKind::MapWaveStart { round: 0, tasks: 1 },
                }],
            }],
        };
        assert!(unclosed.validate().unwrap_err().contains("never closed"));
        let unopened = JobTrace {
            threads: vec![ThreadTrace {
                name: "t".into(),
                events: vec![TraceEvent {
                    seq: 0,
                    t_us: 0,
                    kind: EventKind::MapWaveEnd { round: 0 },
                }],
            }],
        };
        assert!(unopened.validate().unwrap_err().contains("no open span"));
    }

    #[test]
    fn spans_pair_starts_with_ends() {
        let tracer = Tracer::new(TraceLevel::Task, None);
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 1 });
        tracer.emit(EventKind::MapTaskStart { round: 0, task: 0, bytes: 64 });
        tracer.emit(EventKind::MapTaskEnd { round: 0, task: 0 });
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        let spans = tracer.finish().spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.key == SpanKey::MapWave(0)));
        assert!(spans.iter().any(|s| s.key == SpanKey::MapTask(0, 0)));
    }

    #[test]
    fn rounds_reconstruct_the_pipeline_timeline() {
        let tracer = Tracer::new(TraceLevel::Wave, None);
        // Chunk 0 ingests serially; round 0 maps it while chunk 1
        // ingests; round 1 maps chunk 1 (nothing left to ingest).
        tracer.emit(EventKind::ChunkIngestStart { chunk: 0 });
        tracer.emit(EventKind::ChunkIngestEnd { chunk: 0, bytes: 10 });
        tracer.emit(EventKind::ChunkIngestStart { chunk: 1 });
        tracer.emit(EventKind::ChunkIngestEnd { chunk: 1, bytes: 20 });
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 1 });
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        tracer.emit(EventKind::MapWaitingForChunk { round: 0, wait_us: 123 });
        tracer.emit(EventKind::MapWaveStart { round: 1, tasks: 1 });
        tracer.emit(EventKind::MapWaveEnd { round: 1 });
        let rounds = tracer.finish().rounds();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].ingest_bytes, 20, "round 0 overlaps chunk 1's ingest");
        assert_eq!(rounds[0].map_wait, Duration::from_micros(123));
        assert_eq!(rounds[1].ingest, Duration::ZERO, "last round has no next chunk");
    }

    #[test]
    fn trace_ring_keeps_the_newest_tail() {
        let ring = TraceRing::new(3);
        let tracer = Tracer::new(TraceLevel::Wave, Some(ring.callback()));
        for chunk in 0..5u32 {
            tracer.emit(EventKind::ChunkIngestStart { chunk });
        }
        assert_eq!(ring.len(), 3, "old events fall off the front");
        let tail = ring.tail_jsonl(2);
        let lines: Vec<&str> = tail.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""chunk":3"#), "{tail}");
        assert!(lines[1].contains(r#""chunk":4"#), "{tail}");
        assert!(ring.tail_jsonl(100).lines().count() == 3, "tail larger than ring is clamped");
    }

    #[test]
    fn trace_level_parses() {
        assert_eq!("wave".parse::<TraceLevel>().unwrap(), TraceLevel::Wave);
        assert_eq!("task".parse::<TraceLevel>().unwrap(), TraceLevel::Task);
        assert_eq!("off".parse::<TraceLevel>().unwrap(), TraceLevel::Off);
        assert!("loud".parse::<TraceLevel>().is_err());
        assert_eq!(TraceLevel::Wave.to_string(), "wave");
    }
}
