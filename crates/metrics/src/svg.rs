//! SVG rendering of utilization traces.
//!
//! The ASCII charts ([`crate::ascii`]) make figures readable in a
//! terminal; this module emits the same stacked area chart as a
//! self-contained SVG so the regenerated figures can go straight into a
//! paper or web page. No dependencies — the chart is assembled as a
//! string.

use crate::trace::UtilTrace;
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Chart title.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions { width: 760, height: 300, title: String::new() }
    }
}

const MARGIN_LEFT: f64 = 52.0;
const MARGIN_RIGHT: f64 = 14.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 40.0;

/// Render a trace as a stacked SVG area chart: CPU-busy (user+sys) in a
/// solid fill with the IO-wait component stacked above it, axes in
/// percent and seconds — the paper's figure format.
pub fn render_svg(trace: &UtilTrace, opts: &SvgOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = (w - MARGIN_LEFT - MARGIN_RIGHT).max(1.0);
    let plot_h = (h - MARGIN_TOP - MARGIN_BOTTOM).max(1.0);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#,
        opts.width, opts.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-size="14">{}</text>"#,
        MARGIN_LEFT,
        escape_xml(&opts.title)
    );

    let samples = trace.samples();
    let duration = trace.duration().max(f64::EPSILON);
    let x_of = |t: f64| MARGIN_LEFT + t / duration * plot_w;
    let y_of = |pct: f64| MARGIN_TOP + (100.0 - pct.clamp(0.0, 100.0)) / 100.0 * plot_h;

    // Axes and gridlines at 0/50/100%.
    for pct in [0.0, 50.0, 100.0] {
        let y = y_of(pct);
        let _ = write!(
            svg,
            r##"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/><text x="{}" y="{}" font-size="10" text-anchor="end">{pct:.0}%</text>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w,
            MARGIN_LEFT - 6.0,
            y + 3.0
        );
    }
    // Time labels at start/middle/end.
    for frac in [0.0, 0.5, 1.0] {
        let t = duration * frac;
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="10" text-anchor="middle">{t:.0}s</text>"#,
            x_of(t),
            MARGIN_TOP + plot_h + 16.0
        );
    }

    if !samples.is_empty() {
        // Stacked areas: total (busy + iowait) behind, busy in front.
        let area = |f: &dyn Fn(&crate::trace::UtilSample) -> f64| -> String {
            let mut d = format!("M {} {}", x_of(samples[0].t), y_of(0.0));
            for s in samples {
                let _ = write!(d, " L {:.2} {:.2}", x_of(s.t), y_of(f(s)));
            }
            let _ = write!(d, " L {:.2} {:.2} Z", x_of(samples.last().unwrap().t), y_of(0.0));
            d
        };
        let _ =
            write!(svg, r##"<path d="{}" fill="#c6dbef" stroke="none"/>"##, area(&|s| s.total()));
        let _ =
            write!(svg, r##"<path d="{}" fill="#2171b5" stroke="none"/>"##, area(&|s| s.busy()));
    }

    // Phase marks as dashed verticals with labels.
    for m in trace.marks() {
        let x = x_of(m.t);
        let _ = write!(
            svg,
            r##"<line x1="{x:.2}" y1="{}" x2="{x:.2}" y2="{}" stroke="#888" stroke-dasharray="4 3"/><text x="{:.2}" y="{}" font-size="9" fill="#444">{}</text>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h,
            x + 3.0,
            MARGIN_TOP + 10.0,
            escape_xml(&m.label)
        );
    }

    // Legend.
    let ly = h - 12.0;
    let _ = write!(
        svg,
        r##"<rect x="{}" y="{}" width="12" height="10" fill="#2171b5"/><text x="{}" y="{}" font-size="10">cpu busy</text>"##,
        MARGIN_LEFT,
        ly - 9.0,
        MARGIN_LEFT + 16.0,
        ly
    );
    let _ = write!(
        svg,
        r##"<rect x="{}" y="{}" width="12" height="10" fill="#c6dbef"/><text x="{}" y="{}" font-size="10">io wait</text>"##,
        MARGIN_LEFT + 90.0,
        ly - 9.0,
        MARGIN_LEFT + 106.0,
        ly
    );
    svg.push_str("</svg>");
    svg
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::UtilSample;

    fn trace() -> UtilTrace {
        let mut t = UtilTrace::from_samples(vec![
            UtilSample { t: 0.0, user: 5.0, sys: 1.0, iowait: 60.0 },
            UtilSample { t: 10.0, user: 5.0, sys: 1.0, iowait: 60.0 },
            UtilSample { t: 10.0, user: 95.0, sys: 5.0, iowait: 0.0 },
            UtilSample { t: 12.0, user: 95.0, sys: 5.0, iowait: 0.0 },
        ]);
        t.mark(10.0, "compute begins");
        t
    }

    #[test]
    fn produces_valid_looking_svg() {
        let svg =
            render_svg(&trace(), &SvgOptions { title: "test <fig>".into(), ..Default::default() });
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Title escaped.
        assert!(svg.contains("test &lt;fig&gt;"));
        // Two stacked areas + axes + legend.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("cpu busy"));
        assert!(svg.contains("io wait"));
        assert!(svg.contains("100%"));
        // Phase mark rendered.
        assert!(svg.contains("compute begins"));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn empty_trace_renders_frame_only() {
        let svg = render_svg(&UtilTrace::new(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<path").count(), 0);
        assert!(svg.contains("50%"));
    }

    #[test]
    fn balanced_tags() {
        let svg = render_svg(&trace(), &SvgOptions::default());
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        for tag in ["rect", "line", "text", "path"] {
            let opens = svg.matches(&format!("<{tag} ")).count();
            let closes = svg.matches("/>").count() + svg.matches(&format!("</{tag}>")).count();
            assert!(closes >= opens, "{tag}: {opens} opens");
        }
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg =
            render_svg(&trace(), &SvgOptions { width: 400, height: 200, title: String::new() });
        // All x coordinates in path data must be <= 400.
        for cap in svg.split(['L', 'M']).skip(1) {
            if let Some(x) = cap.trim().split(' ').next().and_then(|v| v.parse::<f64>().ok()) {
                assert!(x <= 400.0 + 1e-6, "x = {x}");
            }
        }
    }
}
