//! SVG rendering of utilization traces and metric distributions.
//!
//! The ASCII charts ([`crate::ascii`]) make figures readable in a
//! terminal; this module emits the same stacked area chart
//! ([`render_svg`]) — and small-multiple histogram panels over a
//! registry snapshot ([`render_histogram_panels`]) — as self-contained
//! SVG so the regenerated figures can go straight into a paper or web
//! page. No dependencies — the chart is assembled as a string.

use crate::registry::{MetricValue, MetricsSnapshot};
use crate::trace::UtilTrace;
use std::fmt::Write as _;

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Chart title.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions { width: 760, height: 300, title: String::new() }
    }
}

const MARGIN_LEFT: f64 = 52.0;
const MARGIN_RIGHT: f64 = 14.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 40.0;

/// Render a trace as a stacked SVG area chart: CPU-busy (user+sys) in a
/// solid fill with the IO-wait component stacked above it, axes in
/// percent and seconds — the paper's figure format.
pub fn render_svg(trace: &UtilTrace, opts: &SvgOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = (w - MARGIN_LEFT - MARGIN_RIGHT).max(1.0);
    let plot_h = (h - MARGIN_TOP - MARGIN_BOTTOM).max(1.0);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#,
        opts.width, opts.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-size="14">{}</text>"#,
        MARGIN_LEFT,
        escape_xml(&opts.title)
    );

    let samples = trace.samples();
    let duration = trace.duration().max(f64::EPSILON);
    let x_of = |t: f64| MARGIN_LEFT + t / duration * plot_w;
    let y_of = |pct: f64| MARGIN_TOP + (100.0 - pct.clamp(0.0, 100.0)) / 100.0 * plot_h;

    // Axes and gridlines at 0/50/100%.
    for pct in [0.0, 50.0, 100.0] {
        let y = y_of(pct);
        let _ = write!(
            svg,
            r##"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/><text x="{}" y="{}" font-size="10" text-anchor="end">{pct:.0}%</text>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w,
            MARGIN_LEFT - 6.0,
            y + 3.0
        );
    }
    // Time labels at start/middle/end.
    for frac in [0.0, 0.5, 1.0] {
        let t = duration * frac;
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="10" text-anchor="middle">{t:.0}s</text>"#,
            x_of(t),
            MARGIN_TOP + plot_h + 16.0
        );
    }

    if !samples.is_empty() {
        // Stacked areas: total (busy + iowait) behind, busy in front.
        let area = |f: &dyn Fn(&crate::trace::UtilSample) -> f64| -> String {
            let mut d = format!("M {} {}", x_of(samples[0].t), y_of(0.0));
            for s in samples {
                let _ = write!(d, " L {:.2} {:.2}", x_of(s.t), y_of(f(s)));
            }
            let _ = write!(d, " L {:.2} {:.2} Z", x_of(samples.last().unwrap().t), y_of(0.0));
            d
        };
        let _ =
            write!(svg, r##"<path d="{}" fill="#c6dbef" stroke="none"/>"##, area(&|s| s.total()));
        let _ =
            write!(svg, r##"<path d="{}" fill="#2171b5" stroke="none"/>"##, area(&|s| s.busy()));
    }

    // Phase marks as dashed verticals with labels.
    for m in trace.marks() {
        let x = x_of(m.t);
        let _ = write!(
            svg,
            r##"<line x1="{x:.2}" y1="{}" x2="{x:.2}" y2="{}" stroke="#888" stroke-dasharray="4 3"/><text x="{:.2}" y="{}" font-size="9" fill="#444">{}</text>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h,
            x + 3.0,
            MARGIN_TOP + 10.0,
            escape_xml(&m.label)
        );
    }

    // Legend.
    let ly = h - 12.0;
    let _ = write!(
        svg,
        r##"<rect x="{}" y="{}" width="12" height="10" fill="#2171b5"/><text x="{}" y="{}" font-size="10">cpu busy</text>"##,
        MARGIN_LEFT,
        ly - 9.0,
        MARGIN_LEFT + 16.0,
        ly
    );
    let _ = write!(
        svg,
        r##"<rect x="{}" y="{}" width="12" height="10" fill="#c6dbef"/><text x="{}" y="{}" font-size="10">io wait</text>"##,
        MARGIN_LEFT + 90.0,
        ly - 9.0,
        MARGIN_LEFT + 106.0,
        ly
    );
    svg.push_str("</svg>");
    svg
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Options for [`render_histogram_panels`].
#[derive(Debug, Clone)]
pub struct PanelOptions {
    /// Width of one panel in pixels.
    pub panel_width: u32,
    /// Height of one panel in pixels.
    pub panel_height: u32,
    /// Panels per row.
    pub columns: u32,
    /// Figure title across the top.
    pub title: String,
}

impl Default for PanelOptions {
    fn default() -> Self {
        PanelOptions { panel_width: 250, panel_height: 150, columns: 3, title: String::new() }
    }
}

const PANEL_PAD: f64 = 10.0;
const PANEL_TITLE_H: f64 = 16.0;
const PANEL_AXIS_H: f64 = 14.0;
const TITLE_BAND: f64 = 26.0;

/// Render every non-empty histogram in `snapshot` as a small-multiple
/// bar panel: one log-bucketed bar per occupied bucket (heights scaled
/// to the fullest bucket) with dashed p50/p90/p99 markers. Counters and
/// gauges are skipped — distributions are what a flat JSON report
/// cannot show. Returns a self-contained SVG; an empty snapshot renders
/// a frame saying so.
pub fn render_histogram_panels(snapshot: &MetricsSnapshot, opts: &PanelOptions) -> String {
    let hists: Vec<_> = snapshot
        .entries
        .iter()
        .filter_map(|e| match &e.value {
            MetricValue::Histogram(h) if h.count > 0 => Some((e, h)),
            _ => None,
        })
        .collect();
    let cols = opts.columns.max(1) as usize;
    let rows = hists.len().div_ceil(cols).max(1);
    let pw = opts.panel_width as f64;
    let ph = opts.panel_height as f64;
    let w = PANEL_PAD + cols as f64 * (pw + PANEL_PAD);
    let h = TITLE_BAND + rows as f64 * (ph + PANEL_PAD);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="sans-serif">"#,
    );
    let _ = write!(
        svg,
        r#"<rect width="{w:.0}" height="{h:.0}" fill="white"/><text x="{PANEL_PAD}" y="18" font-size="14">{}</text>"#,
        escape_xml(&opts.title)
    );
    if hists.is_empty() {
        let _ = write!(
            svg,
            r##"<text x="{PANEL_PAD}" y="{}" font-size="11" fill="#888">no histogram observations</text>"##,
            TITLE_BAND + 14.0
        );
    }

    for (i, (entry, hist)) in hists.iter().enumerate() {
        let x0 = PANEL_PAD + (i % cols) as f64 * (pw + PANEL_PAD);
        let y0 = TITLE_BAND + (i / cols) as f64 * (ph + PANEL_PAD);
        let mut label = entry.name.clone();
        for (k, v) in &entry.labels {
            let _ = write!(label, " {k}={v}");
        }
        let _ = write!(
            svg,
            r##"<rect x="{x0:.1}" y="{y0:.1}" width="{pw:.0}" height="{ph:.0}" fill="none" stroke="#ccc"/><text x="{:.1}" y="{:.1}" font-size="10">{}</text>"##,
            x0 + 4.0,
            y0 + 12.0,
            escape_xml(&label)
        );

        let buckets = hist.nonzero_buckets();
        let plot_h = ph - PANEL_TITLE_H - PANEL_AXIS_H;
        let base_y = y0 + PANEL_TITLE_H + plot_h;
        let slot = (pw - 8.0) / buckets.len() as f64;
        let tallest = buckets.iter().map(|&(_, n)| n).max().unwrap_or(1) as f64;
        for (j, &(_, n)) in buckets.iter().enumerate() {
            let bar_h = (n as f64 / tallest * (plot_h - 4.0)).max(1.0);
            let _ = write!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{bar_h:.1}" fill="#2171b5"/>"##,
                x0 + 4.0 + j as f64 * slot,
                base_y - bar_h,
                (slot - 1.0).max(0.5),
            );
        }
        // Percentile markers sit at the bucket holding that quantile.
        for (q, label) in [(hist.p50(), "p50"), (hist.p90(), "p90"), (hist.p99(), "p99")] {
            let j = buckets.iter().position(|&(bound, _)| q <= bound).unwrap_or(buckets.len() - 1);
            let x = x0 + 4.0 + (j as f64 + 0.5) * slot;
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{base_y:.1}" stroke="#d62728" stroke-dasharray="2 2"/><text x="{x:.1}" y="{:.1}" font-size="8" fill="#d62728" text-anchor="middle">{label}</text>"##,
                y0 + PANEL_TITLE_H,
                y0 + PANEL_TITLE_H + 8.0,
            );
        }
        // Axis annotation: observation count and max value.
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" fill="#444">n={} max={}</text>"##,
            x0 + 4.0,
            y0 + ph - 3.0,
            hist.count,
            hist.max
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::UtilSample;

    fn trace() -> UtilTrace {
        let mut t = UtilTrace::from_samples(vec![
            UtilSample { t: 0.0, user: 5.0, sys: 1.0, iowait: 60.0 },
            UtilSample { t: 10.0, user: 5.0, sys: 1.0, iowait: 60.0 },
            UtilSample { t: 10.0, user: 95.0, sys: 5.0, iowait: 0.0 },
            UtilSample { t: 12.0, user: 95.0, sys: 5.0, iowait: 0.0 },
        ]);
        t.mark(10.0, "compute begins");
        t
    }

    #[test]
    fn produces_valid_looking_svg() {
        let svg =
            render_svg(&trace(), &SvgOptions { title: "test <fig>".into(), ..Default::default() });
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Title escaped.
        assert!(svg.contains("test &lt;fig&gt;"));
        // Two stacked areas + axes + legend.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("cpu busy"));
        assert!(svg.contains("io wait"));
        assert!(svg.contains("100%"));
        // Phase mark rendered.
        assert!(svg.contains("compute begins"));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn empty_trace_renders_frame_only() {
        let svg = render_svg(&UtilTrace::new(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<path").count(), 0);
        assert!(svg.contains("50%"));
    }

    #[test]
    fn balanced_tags() {
        let svg = render_svg(&trace(), &SvgOptions::default());
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        for tag in ["rect", "line", "text", "path"] {
            let opens = svg.matches(&format!("<{tag} ")).count();
            let closes = svg.matches("/>").count() + svg.matches(&format!("</{tag}>")).count();
            assert!(closes >= opens, "{tag}: {opens} opens");
        }
    }

    #[test]
    fn histogram_panels_render_one_panel_per_distribution() {
        use crate::registry::Registry;
        let reg = Registry::new();
        let fast = reg.histogram("test.fast_us", "fast things", &[]);
        let slow = reg.histogram("test.slow_us", "slow things", &[("runtime", "pipeline")]);
        for v in [1u64, 2, 3, 900, 1000] {
            fast.record(v);
            slow.record(v * 1000);
        }
        // A histogram with no observations and a counter: both skipped.
        reg.histogram("test.empty_us", "never recorded", &[]);
        reg.counter("test.total", "a counter", &[]).add(7);
        let svg = render_histogram_panels(
            &reg.snapshot(),
            &PanelOptions { title: "bench <metrics>".into(), ..Default::default() },
        );
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("bench &lt;metrics&gt;"));
        assert!(svg.contains("test.fast_us"));
        assert!(svg.contains("test.slow_us runtime=pipeline"));
        assert!(!svg.contains("test.empty_us"));
        assert!(!svg.contains("test.total"));
        // Each panel carries its percentile markers and count note.
        assert_eq!(svg.matches(">p50<").count(), 2);
        assert_eq!(svg.matches(">p99<").count(), 2);
        assert!(svg.contains("n=5"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder_frame() {
        let svg = render_histogram_panels(&MetricsSnapshot::default(), &PanelOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("no histogram observations"));
    }

    #[test]
    fn panel_tags_are_balanced() {
        use crate::registry::Registry;
        let reg = Registry::new();
        reg.histogram("t.h", "h", &[]).record(5);
        let svg = render_histogram_panels(&reg.snapshot(), &PanelOptions::default());
        for tag in ["rect", "line", "text"] {
            let opens = svg.matches(&format!("<{tag} ")).count();
            let closes = svg.matches("/>").count() + svg.matches(&format!("</{tag}>")).count();
            assert!(closes >= opens, "{tag}: {opens} opens");
        }
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg =
            render_svg(&trace(), &SvgOptions { width: 400, height: 200, title: String::new() });
        // All x coordinates in path data must be <= 400.
        for cap in svg.split(['L', 'M']).skip(1) {
            if let Some(x) = cap.trim().split(' ').next().and_then(|v| v.parse::<f64>().ok()) {
                assert!(x <= 400.0 + 1e-6, "x = {x}");
            }
        }
    }
}
