//! A std-only scrape and debug endpoint for [`crate::registry`].
//!
//! [`MetricsServer::serve`] binds a [`std::net::TcpListener`] and
//! answers `GET /metrics` with the live OpenMetrics exposition of a
//! [`Registry`] — enough HTTP for `curl` and a Prometheus scraper, with
//! no framework dependency. [`MetricsServer::serve_debug`] extends the
//! routing with the live debug surface the `supmr serve` daemon will
//! reuse:
//!
//! * `GET /metrics` (or `/`) — OpenMetrics exposition.
//! * `GET /healthz` — liveness probe, `200 ok`.
//! * `GET /debug/diag` — live bottleneck classification: a
//!   [`BottleneckReport`] built from a
//!   fresh registry snapshot, as `supmr.diag.v1` JSON.
//! * `GET /debug/trace?tail=N` — the newest `N` trace events as JSONL
//!   from the job's bounded [`TraceRing`] (empty without a ring).
//!
//! `HEAD` is answered for every route (headers only); any other method
//! gets `405 Method Not Allowed` with an `Allow` header. The request
//! line is capped at 8 KiB — longer lines are rejected with `400`
//! before any further buffering. The accept loop runs on one background
//! thread; each request is answered from a fresh
//! [`Registry::snapshot`], so scrapes observe the job mid-flight.
//! Dropping the server (or calling [`MetricsServer::shutdown`]) stops
//! the thread by poking the listener with a loopback connection.

use crate::diag::{BottleneckReport, DiagInputs};
use crate::events::TraceRing;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The exposition content type OpenMetrics scrapers negotiate.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// Hard cap on the request line: reject before buffering anything more.
const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Default `tail` for `/debug/trace` when the query omits it.
const DEFAULT_TRACE_TAIL: usize = 256;

/// What the debug surface serves: the registry plus the optional live
/// pieces the richer endpoints need.
#[derive(Clone)]
pub struct DebugState {
    registry: Registry,
    ring: Option<Arc<TraceRing>>,
    started: Instant,
}

impl DebugState {
    /// Debug state over `registry`, with the job epoch starting now.
    pub fn new(registry: Registry) -> DebugState {
        DebugState { registry, ring: None, started: Instant::now() }
    }

    /// Attach the bounded event ring backing `/debug/trace`.
    pub fn with_ring(mut self, ring: Arc<TraceRing>) -> DebugState {
        self.ring = Some(ring);
        self
    }

    /// Use `epoch` as the job start for live wall-clock attribution.
    pub fn with_epoch(mut self, epoch: Instant) -> DebugState {
        self.started = epoch;
        self
    }

    fn live_diag_json(&self) -> String {
        let wall_us = self.started.elapsed().as_micros() as u64;
        let inputs = DiagInputs::from_snapshot(&self.registry.snapshot(), wall_us);
        BottleneckReport::from_inputs(inputs).to_json().render()
    }
}

/// A running scrape/debug endpoint. Stops when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9400`; port 0 picks a free port) and
    /// serve `registry` until shutdown.
    pub fn serve(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        MetricsServer::serve_debug(addr, DebugState::new(registry))
    }

    /// Bind `addr` and serve the full debug surface (`/metrics`,
    /// `/healthz`, `/debug/diag`, `/debug/trace`) until shutdown.
    pub fn serve_debug(addr: &str, state: DebugState) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || accept_loop(listener, state, flag))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address — useful when serving on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, state: DebugState, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Serve inline: scrapes are tiny and rare relative to the work
        // the job is doing, so a per-connection thread buys nothing.
        let _ = handle_connection(stream, &state);
    }
}

struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
    allow: bool,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Response {
        Response { status: "200 OK", content_type, body, allow: false }
    }

    fn error(status: &'static str, body: &str) -> Response {
        Response { status, content_type: TEXT_PLAIN, body: body.to_string(), allow: false }
    }
}

fn route(path: &str, state: &DebugState) -> Response {
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, Some(q)),
        None => (path, None),
    };
    match route {
        "/metrics" | "/" => Response::ok(CONTENT_TYPE, state.registry.render_openmetrics()),
        "/healthz" => Response::ok(TEXT_PLAIN, "ok\n".to_string()),
        "/debug/diag" => Response::ok("application/json; charset=utf-8", state.live_diag_json()),
        "/debug/trace" => {
            let tail = query
                .into_iter()
                .flat_map(|q| q.split('&'))
                .find_map(|kv| kv.strip_prefix("tail="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_TRACE_TAIL);
            let body = state.ring.as_ref().map_or_else(String::new, |r| r.tail_jsonl(tail));
            Response::ok("application/x-ndjson; charset=utf-8", body)
        }
        _ => Response::error("404 Not Found", "not found\n"),
    }
}

fn handle_connection(mut stream: TcpStream, state: &DebugState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let (response, head_only) = match read_request(&mut stream)? {
        Request::Get(path) => (route(&path, state), false),
        Request::Head(path) => (route(&path, state), true),
        Request::OtherMethod => (
            Response {
                status: "405 Method Not Allowed",
                content_type: TEXT_PLAIN,
                body: "method not allowed\n".to_string(),
                allow: true,
            },
            false,
        ),
        Request::TooLong => (Response::error("400 Bad Request", "request line too long\n"), false),
        Request::Malformed => (Response::error("400 Bad Request", "bad request\n"), false),
    };
    let mut header = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    if response.allow {
        header.push_str("Allow: GET, HEAD\r\n");
    }
    header.push_str("\r\n");
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()?;
    // Drain whatever request bytes we never read (bounded) before
    // closing, so the client reads the response instead of an RST.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

enum Request {
    Get(String),
    Head(String),
    /// A recognizable request line with a method we do not serve.
    OtherMethod,
    /// The request line exceeded [`MAX_REQUEST_LINE`] with no newline.
    TooLong,
    /// Not parseable as an HTTP request line.
    Malformed,
}

/// Read up to the end of the request line, tolerant of clients that send
/// the full header block in one segment, refusing to buffer more than
/// [`MAX_REQUEST_LINE`] bytes while looking for it.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut buf = [0u8; 1024];
    let mut line = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        line.extend_from_slice(&buf[..n]);
        if line.iter().take(MAX_REQUEST_LINE).any(|b| *b == b'\n') {
            break;
        }
        if line.len() >= MAX_REQUEST_LINE {
            return Ok(Request::TooLong);
        }
    }
    let text = String::from_utf8_lossy(&line);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    Ok(match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Request::Get(path.to_string()),
        (Some("HEAD"), Some(path)) => Request::Head(path.to_string()),
        (Some(method), Some(_)) if method.chars().all(|c| c.is_ascii_uppercase()) => {
            Request::OtherMethod
        }
        _ => Request::Malformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, TraceLevel, Tracer};
    use crate::json::Json;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n"))
    }

    #[test]
    fn serves_openmetrics_and_404s_elsewhere() {
        let registry = Registry::new();
        registry.counter("supmr.test.hits", "Scrape test counter.", &[]).add(3);
        registry.histogram("supmr.test.lat_us", "", &[]).record(50);
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("application/openmetrics-text"), "{ok}");
        assert!(ok.contains("supmr_test_hits_total 3"), "{ok}");
        assert!(ok.contains("supmr_test_lat_us_bucket"), "{ok}");
        assert!(ok.contains("# EOF"), "{ok}");

        // A second scrape observes updated values from the same cells.
        registry.counter("supmr.test.hits", "", &[]).add(2);
        assert!(get(addr, "/metrics").contains("supmr_test_hits_total 5"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn healthz_answers_ok() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let body = get(server.addr(), "/healthz");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.ends_with("ok\n"), "{body}");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_405_with_allow_header() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = server.addr();
        for method in ["POST", "PUT", "DELETE", "OPTIONS"] {
            let resp = request(addr, &format!("{method} /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
            assert!(resp.starts_with("HTTP/1.1 405"), "{method}: {resp}");
            assert!(resp.contains("Allow: GET, HEAD"), "{method}: {resp}");
        }
        server.shutdown();
    }

    #[test]
    fn head_sends_headers_without_body() {
        let registry = Registry::new();
        registry.counter("supmr.test.hits", "", &[]).add(1);
        let server = MetricsServer::serve("127.0.0.1:0", registry).expect("bind");
        let resp = request(server.addr(), "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let (head, body) = resp.split_once("\r\n\r\n").expect("header terminator");
        assert!(head.contains("Content-Length:"), "{resp}");
        assert!(!head.contains("Content-Length: 0"), "length reflects the real body");
        assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 100));
        let resp = request(server.addr(), &long);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("request line too long"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn debug_diag_serves_live_classification() {
        let registry = Registry::new();
        registry.counter("supmr.stall.map_us", "", &[("runtime", "pipeline")]).add(60_000_000);
        let state = DebugState::new(registry);
        let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
        let resp = get(server.addr(), "/debug/diag");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let json = Json::parse(body).expect("valid diag JSON");
        assert_eq!(json.get("schema").unwrap().as_str(), Some("supmr.diag.v1"));
        // 60s of map stalls against a wall-clock of milliseconds: the
        // share clamps to 1.0 and the verdict must be ingest-bound.
        assert_eq!(json.get("verdict").unwrap().as_str(), Some("ingest-bound"));
        server.shutdown();
    }

    #[test]
    fn debug_trace_tails_the_ring() {
        let ring = TraceRing::new(64);
        let tracer = Tracer::new(TraceLevel::Wave, Some(ring.callback()));
        for chunk in 0..10u32 {
            tracer.emit(EventKind::ChunkIngestStart { chunk });
        }
        let state = DebugState::new(Registry::new()).with_ring(Arc::clone(&ring));
        let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
        let addr = server.addr();

        let resp = get(addr, "/debug/trace?tail=3");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/x-ndjson"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "{body}");
        for line in &lines {
            Json::parse(line).expect("each line is valid JSON");
        }
        assert!(lines[2].contains(r#""chunk":9"#), "newest event last: {body}");

        // Default tail without a query, and graceful empty-ring behaviour.
        let resp = get(addr, "/debug/trace");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        server.shutdown();

        let bare = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let resp = get(bare.addr(), "/debug/trace?tail=5");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "no ring still answers: {resp}");
        bare.shutdown();
    }
}
