//! A std-only HTTP endpoint: the scrape/debug surface for
//! [`crate::registry`], generalized enough for the `supmr serve` job
//! daemon to mount its API on the same machinery.
//!
//! [`MetricsServer::serve`] binds a [`std::net::TcpListener`] and
//! answers `GET /metrics` with the live OpenMetrics exposition of a
//! [`Registry`] — enough HTTP for `curl` and a Prometheus scraper, with
//! no framework dependency. [`MetricsServer::serve_debug`] extends the
//! routing with the live debug surface:
//!
//! * `GET /metrics` (or `/`) — OpenMetrics exposition.
//! * `GET /healthz` — liveness probe, `200 ok`.
//! * `GET /debug/diag` — live bottleneck classification: a
//!   [`BottleneckReport`] built from a
//!   fresh registry snapshot, as `supmr.diag.v1` JSON.
//! * `GET /debug/trace?tail=N` — the newest `N` trace events as JSONL
//!   from the job's bounded [`TraceRing`] (empty without a ring).
//! * `GET /debug/governor?tail=N[&job=ID]` — the newest `N`
//!   `GovernorAction` decisions from the same ring, as JSONL. With a
//!   `job=` filter, answered only when it names this surface's job.
//!
//! On those surfaces `HEAD` is answered for every route (headers only)
//! and any other method gets `405 Method Not Allowed` with an `Allow`
//! header. [`MetricsServer::serve_with`] is the general form: it parses
//! any all-uppercase method plus an optional `Content-Length` body
//! (capped at [`MAX_BODY`]) and hands the [`HttpRequest`] to a caller
//! handler — how the job daemon serves `POST /jobs` and
//! `DELETE /jobs/{id}` without its own HTTP stack. The request line is
//! capped at 8 KiB — longer lines are rejected with `400` before any
//! further buffering. The accept loop runs on one background thread;
//! each request is answered from a fresh [`Registry::snapshot`], so
//! scrapes observe the job mid-flight. Dropping the server (or calling
//! [`MetricsServer::shutdown`]) stops the thread by poking the listener
//! with a loopback connection.

use crate::diag::{BottleneckReport, DiagInputs};
use crate::events::TraceRing;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The exposition content type OpenMetrics scrapers negotiate.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Plain text responses (errors, health probes).
pub const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// JSON responses (reports, job status).
pub const APPLICATION_JSON: &str = "application/json; charset=utf-8";

/// Line-delimited JSON responses (trace tails).
pub const NDJSON: &str = "application/x-ndjson; charset=utf-8";

/// Hard cap on the request line: reject before buffering anything more.
const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Hard cap on the header block while searching for its terminator.
const MAX_HEADERS: usize = 16 * 1024;

/// Hard cap on a request body (`Content-Length` past this is 413).
pub const MAX_BODY: usize = 1024 * 1024;

/// Default `tail` for `/debug/trace` when the query omits it.
const DEFAULT_TRACE_TAIL: usize = 256;

/// What the debug surface serves: the registry plus the optional live
/// pieces the richer endpoints need.
#[derive(Clone)]
pub struct DebugState {
    registry: Registry,
    ring: Option<Arc<TraceRing>>,
    job_id: Option<String>,
    started: Instant,
}

impl DebugState {
    /// Debug state over `registry`, with the job epoch starting now.
    pub fn new(registry: Registry) -> DebugState {
        DebugState { registry, ring: None, job_id: None, started: Instant::now() }
    }

    /// Attach the bounded event ring backing `/debug/trace`.
    pub fn with_ring(mut self, ring: Arc<TraceRing>) -> DebugState {
        self.ring = Some(ring);
        self
    }

    /// Name the job this surface belongs to, so a
    /// `/debug/governor?job=ID` filter can be answered (or refused).
    pub fn with_job(mut self, job_id: impl Into<String>) -> DebugState {
        self.job_id = Some(job_id.into());
        self
    }

    /// Use `epoch` as the job start for live wall-clock attribution.
    pub fn with_epoch(mut self, epoch: Instant) -> DebugState {
        self.started = epoch;
        self
    }

    fn live_diag_json(&self) -> String {
        let wall_us = self.started.elapsed().as_micros() as u64;
        let inputs = DiagInputs::from_snapshot(&self.registry.snapshot(), wall_us);
        BottleneckReport::from_inputs(inputs).to_json().render()
    }
}

/// One parsed HTTP request, as handed to a [`HttpHandler`].
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// The request method, uppercase (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// The request target, query string included (`/jobs/3?x=y`).
    pub path: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split_once('?').map_or(self.path.as_str(), |(r, _)| r)
    }

    /// The first value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        let (_, q) = self.path.split_once('?')?;
        q.split('&').find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
    }
}

/// What a handler answers with. Construct via [`HttpResponse::ok`] /
/// [`HttpResponse::error`] or literally for full control.
pub struct HttpResponse {
    /// Status line tail, e.g. `"200 OK"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (dropped for `HEAD`, length still advertised).
    pub body: String,
    /// When set, emitted as an `Allow:` header (405 responses).
    pub allow: Option<&'static str>,
}

impl HttpResponse {
    /// A `200 OK` with the given body.
    pub fn ok(content_type: &'static str, body: String) -> HttpResponse {
        HttpResponse { status: "200 OK", content_type, body, allow: None }
    }

    /// A plain-text error response.
    pub fn error(status: &'static str, body: &str) -> HttpResponse {
        HttpResponse { status, content_type: TEXT_PLAIN, body: body.to_string(), allow: None }
    }

    /// A `405 Method Not Allowed` advertising `allow`.
    pub fn method_not_allowed(allow: &'static str) -> HttpResponse {
        HttpResponse {
            status: "405 Method Not Allowed",
            content_type: TEXT_PLAIN,
            body: "method not allowed\n".to_string(),
            allow: Some(allow),
        }
    }
}

/// The routing callback behind [`MetricsServer::serve_with`]. Called
/// inline on the accept thread for every parsed request.
pub type HttpHandler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A running HTTP endpoint. Stops when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9400`; port 0 picks a free port) and
    /// serve `registry` until shutdown.
    pub fn serve(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        MetricsServer::serve_debug(addr, DebugState::new(registry))
    }

    /// Bind `addr` and serve the full debug surface (`/metrics`,
    /// `/healthz`, `/debug/diag`, `/debug/trace`, `/debug/governor`)
    /// until shutdown. GET/HEAD only; anything else is 405.
    pub fn serve_debug(addr: &str, state: DebugState) -> std::io::Result<MetricsServer> {
        let handler: HttpHandler = Arc::new(move |req| match req.method.as_str() {
            "GET" | "HEAD" => route(&req.path, &state),
            _ => HttpResponse::method_not_allowed("GET, HEAD"),
        });
        MetricsServer::serve_with(addr, handler)
    }

    /// Bind `addr` and route every request through `handler` — the
    /// general form the job-service daemon mounts its API on. `HEAD`
    /// is delivered to the handler like `GET` (same routing) but the
    /// response body is suppressed on the wire.
    pub fn serve_with(addr: &str, handler: HttpHandler) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || accept_loop(listener, handler, flag))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address — useful when serving on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, handler: HttpHandler, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Serve inline: scrapes are tiny and rare relative to the work
        // the job is doing, so a per-connection thread buys nothing.
        let _ = handle_connection(stream, &handler);
    }
}

fn route(path: &str, state: &DebugState) -> HttpResponse {
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, Some(q)),
        None => (path, None),
    };
    let param = |key: &str| {
        query
            .into_iter()
            .flat_map(|q| q.split('&'))
            .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
    };
    let tail = || param("tail").and_then(|v| v.parse::<usize>().ok()).unwrap_or(DEFAULT_TRACE_TAIL);
    match route {
        "/metrics" | "/" => HttpResponse::ok(CONTENT_TYPE, state.registry.render_openmetrics()),
        "/healthz" => HttpResponse::ok(TEXT_PLAIN, "ok\n".to_string()),
        "/debug/diag" => HttpResponse::ok(APPLICATION_JSON, state.live_diag_json()),
        "/debug/trace" => {
            let body = state.ring.as_ref().map_or_else(String::new, |r| r.tail_jsonl(tail()));
            HttpResponse::ok(NDJSON, body)
        }
        "/debug/governor" => {
            // A job filter on a single-job surface is answered only
            // for that job; naming any other is a 404, not silence.
            if let Some(asked) = param("job") {
                if state.job_id.as_deref() != Some(asked) {
                    return HttpResponse::error("404 Not Found", "unknown job\n");
                }
            }
            let body =
                state.ring.as_ref().map_or_else(String::new, |r| r.tail_governor_jsonl(tail()));
            HttpResponse::ok(NDJSON, body)
        }
        _ => HttpResponse::error("404 Not Found", "not found\n"),
    }
}

fn handle_connection(mut stream: TcpStream, handler: &HttpHandler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let (response, head_only) = match read_request(&mut stream)? {
        Request::Full(req) => {
            let head_only = req.method == "HEAD";
            (handler(&req), head_only)
        }
        Request::TooLong => {
            (HttpResponse::error("400 Bad Request", "request line too long\n"), false)
        }
        Request::BodyTooLarge => {
            (HttpResponse::error("413 Payload Too Large", "request body too large\n"), false)
        }
        Request::Malformed => (HttpResponse::error("400 Bad Request", "bad request\n"), false),
    };
    let mut header = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    if let Some(allow) = response.allow {
        header.push_str(&format!("Allow: {allow}\r\n"));
    }
    header.push_str("\r\n");
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()?;
    // Drain whatever request bytes we never read (bounded) before
    // closing, so the client reads the response instead of an RST.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

enum Request {
    /// A parsed request: method, target, and (possibly empty) body.
    Full(HttpRequest),
    /// The request line exceeded [`MAX_REQUEST_LINE`] with no newline.
    TooLong,
    /// `Content-Length` exceeded [`MAX_BODY`].
    BodyTooLarge,
    /// Not parseable as an HTTP request.
    Malformed,
}

/// Find the end of the header block (`\r\n\r\n` or `\n\n`), returning
/// the index just past it.
fn headers_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Read one request: line, headers, and — when `Content-Length` says so
/// — the body. Refuses to buffer more than [`MAX_REQUEST_LINE`] bytes
/// while looking for the first newline, [`MAX_HEADERS`] for the header
/// terminator, and [`MAX_BODY`] of body.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut buf = [0u8; 1024];
    let mut data = Vec::new();
    let header_len = loop {
        if let Some(end) = headers_end(&data) {
            break end;
        }
        if !data.iter().take(MAX_REQUEST_LINE).any(|b| *b == b'\n')
            && data.len() >= MAX_REQUEST_LINE
        {
            return Ok(Request::TooLong);
        }
        if data.len() >= MAX_HEADERS {
            return Ok(Request::Malformed);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            // Header block never terminated; parse what arrived (a bare
            // request line from a minimal client still routes).
            break data.len();
        }
        data.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&data[..header_len]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) if !m.is_empty() && m.chars().all(|c| c.is_ascii_uppercase()) => {
            (m.to_string(), p.to_string())
        }
        _ => return Ok(Request::Malformed),
    };
    let content_length = head
        .lines()
        .skip(1)
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
        })
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Ok(Request::BodyTooLarge);
    }
    let mut body = data[header_len..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break; // truncated body: hand over what arrived
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request::Full(HttpRequest { method, path, body }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, TraceLevel, Tracer};
    use crate::json::Json;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n"))
    }

    #[test]
    fn serves_openmetrics_and_404s_elsewhere() {
        let registry = Registry::new();
        registry.counter("supmr.test.hits", "Scrape test counter.", &[]).add(3);
        registry.histogram("supmr.test.lat_us", "", &[]).record(50);
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("application/openmetrics-text"), "{ok}");
        assert!(ok.contains("supmr_test_hits_total 3"), "{ok}");
        assert!(ok.contains("supmr_test_lat_us_bucket"), "{ok}");
        assert!(ok.contains("# EOF"), "{ok}");

        // A second scrape observes updated values from the same cells.
        registry.counter("supmr.test.hits", "", &[]).add(2);
        assert!(get(addr, "/metrics").contains("supmr_test_hits_total 5"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn healthz_answers_ok() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let body = get(server.addr(), "/healthz");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.ends_with("ok\n"), "{body}");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_405_with_allow_header() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let addr = server.addr();
        for method in ["POST", "PUT", "DELETE", "OPTIONS"] {
            let resp = request(addr, &format!("{method} /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
            assert!(resp.starts_with("HTTP/1.1 405"), "{method}: {resp}");
            assert!(resp.contains("Allow: GET, HEAD"), "{method}: {resp}");
        }
        server.shutdown();
    }

    #[test]
    fn head_sends_headers_without_body() {
        let registry = Registry::new();
        registry.counter("supmr.test.hits", "", &[]).add(1);
        let server = MetricsServer::serve("127.0.0.1:0", registry).expect("bind");
        let resp = request(server.addr(), "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let (head, body) = resp.split_once("\r\n\r\n").expect("header terminator");
        assert!(head.contains("Content-Length:"), "{resp}");
        assert!(!head.contains("Content-Length: 0"), "length reflects the real body");
        assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 100));
        let resp = request(server.addr(), &long);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("request line too long"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn debug_diag_serves_live_classification() {
        let registry = Registry::new();
        registry.counter("supmr.stall.map_us", "", &[("runtime", "pipeline")]).add(60_000_000);
        let state = DebugState::new(registry);
        let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
        let resp = get(server.addr(), "/debug/diag");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let json = Json::parse(body).expect("valid diag JSON");
        assert_eq!(json.get("schema").unwrap().as_str(), Some("supmr.diag.v1"));
        // 60s of map stalls against a wall-clock of milliseconds: the
        // share clamps to 1.0 and the verdict must be ingest-bound.
        assert_eq!(json.get("verdict").unwrap().as_str(), Some("ingest-bound"));
        server.shutdown();
    }

    #[test]
    fn debug_trace_tails_the_ring() {
        let ring = TraceRing::new(64);
        let tracer = Tracer::new(TraceLevel::Wave, Some(ring.callback()));
        for chunk in 0..10u32 {
            tracer.emit(EventKind::ChunkIngestStart { chunk });
        }
        let state = DebugState::new(Registry::new()).with_ring(Arc::clone(&ring));
        let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
        let addr = server.addr();

        let resp = get(addr, "/debug/trace?tail=3");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/x-ndjson"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "{body}");
        for line in &lines {
            Json::parse(line).expect("each line is valid JSON");
        }
        assert!(lines[2].contains(r#""chunk":9"#), "newest event last: {body}");

        // Default tail without a query, and graceful empty-ring behaviour.
        let resp = get(addr, "/debug/trace");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        server.shutdown();

        let bare = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let resp = get(bare.addr(), "/debug/trace?tail=5");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "no ring still answers: {resp}");
        bare.shutdown();
    }

    #[test]
    fn debug_governor_filters_actions_and_jobs() {
        let ring = TraceRing::new(64);
        let tracer = Tracer::new(TraceLevel::Wave, Some(ring.callback()));
        // Interleave governor decisions with other events; only the
        // decisions may come back.
        for chunk in 0..4u32 {
            tracer.emit(EventKind::ChunkIngestStart { chunk });
            tracer.emit(EventKind::GovernorAction {
                verdict: "ingest-bound",
                knob: "map_width",
                value: chunk as u64 + 1,
            });
        }
        let state = DebugState::new(Registry::new()).with_ring(Arc::clone(&ring)).with_job("job-7");
        let server = MetricsServer::serve_debug("127.0.0.1:0", state).expect("bind");
        let addr = server.addr();

        let resp = get(addr, "/debug/governor?tail=3");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "only governor actions counted: {body}");
        for line in &lines {
            assert!(line.contains("GovernorAction"), "{line}");
            Json::parse(line).expect("each line is valid JSON");
        }
        assert!(lines[2].contains(r#""value":4"#), "newest decision last: {body}");

        // The job filter answers for this job and 404s for others.
        assert!(get(addr, "/debug/governor?job=job-7").starts_with("HTTP/1.1 200"));
        assert!(get(addr, "/debug/governor?job=nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn serve_with_routes_posts_with_bodies() {
        type SeenRequest = (String, String, Vec<u8>);
        let seen: Arc<parking_lot::Mutex<Vec<SeenRequest>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        let handler: HttpHandler = Arc::new(move |req| {
            log.lock().push((req.method.clone(), req.path.clone(), req.body.clone()));
            match (req.method.as_str(), req.route()) {
                ("POST", "/jobs") => {
                    HttpResponse::ok(APPLICATION_JSON, format!("{{\"echo\":{}}}\n", req.body.len()))
                }
                ("DELETE", _) => HttpResponse::ok(TEXT_PLAIN, "gone\n".to_string()),
                _ => HttpResponse::error("404 Not Found", "not found\n"),
            }
        });
        let server = MetricsServer::serve_with("127.0.0.1:0", handler).expect("bind");
        let addr = server.addr();

        let body = r#"{"app":"wordcount"}"#;
        let resp = request(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains(&format!("\"echo\":{}", body.len())), "{resp}");

        let resp = request(addr, "DELETE /jobs/3 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");

        {
            let seen = seen.lock();
            assert_eq!(seen[0].0, "POST");
            assert_eq!(seen[0].2, body.as_bytes());
            assert_eq!(seen[1].0, "DELETE");
            assert_eq!(seen[1].1, "/jobs/3");
        }

        // An oversized Content-Length is refused before buffering.
        let resp = request(
            addr,
            &format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1),
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }
}
