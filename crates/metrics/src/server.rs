//! A std-only `/metrics` scrape endpoint for [`crate::registry`].
//!
//! [`MetricsServer::serve`] binds a [`std::net::TcpListener`] and answers
//! `GET /metrics` with the live OpenMetrics exposition of a
//! [`Registry`] — enough HTTP for `curl` and a Prometheus scraper, with
//! no framework dependency. The accept loop runs on one background
//! thread; each request is read with a short timeout and answered from a
//! fresh [`Registry::snapshot`], so scrapes observe the job mid-flight.
//! Dropping the server (or calling [`MetricsServer::shutdown`]) stops
//! the thread by poking the listener with a loopback connection.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The exposition content type OpenMetrics scrapers negotiate.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// A running scrape endpoint. Stops when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9400`; port 0 picks a free port) and
    /// serve `registry` until shutdown.
    pub fn serve(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || accept_loop(listener, registry, flag))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address — useful when serving on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Serve inline: scrapes are tiny and rare relative to the work
        // the job is doing, so a per-connection thread buys nothing.
        let _ = handle_connection(stream, &registry);
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") | Some("/") => ("200 OK", CONTENT_TYPE, registry.render_openmetrics()),
        Some(_) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        None => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".to_string()),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request line and return its path, tolerant
/// of clients that send the full header block in one segment.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 1024];
    let mut line = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        line.extend_from_slice(&buf[..n]);
        if line.contains(&b'\n') || line.len() > 8 * 1024 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&line);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_openmetrics_and_404s_elsewhere() {
        let registry = Registry::new();
        registry.counter("supmr.test.hits", "Scrape test counter.", &[]).add(3);
        registry.histogram("supmr.test.lat_us", "", &[]).record(50);
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("application/openmetrics-text"), "{ok}");
        assert!(ok.contains("supmr_test_hits_total 3"), "{ok}");
        assert!(ok.contains("supmr_test_lat_us_bucket"), "{ok}");
        assert!(ok.contains("# EOF"), "{ok}");

        // A second scrape observes updated values from the same cells.
        registry.counter("supmr.test.hits", "", &[]).add(2);
        assert!(get(addr, "/metrics").contains("supmr_test_hits_total 5"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }
}
