//! Measurement utilities for the SupMR reproduction.
//!
//! The paper measures two things:
//!
//! 1. **Per-phase wall-clock times** with microsecond granularity using the
//!    Phoenix++ internal timers (Table II). [`phase`] provides the same
//!    phase vocabulary (`ingest`/`map`/`reduce`/`merge`) and a
//!    [`phase::PhaseTimer`] that produces a [`phase::PhaseTimings`]
//!    breakdown formatted like the paper's table rows.
//! 2. **CPU utilization traces** collected with `collectl` (Figs. 1, 3,
//!    5–7). [`trace`] holds the trace representation (percent busy split
//!    into user/sys/iowait vs. wall-clock seconds), [`sampler`] collects a
//!    real trace from `/proc/stat`, and [`ascii`] renders a trace as a
//!    terminal area chart so every figure can be "printed".
//!
//! [`stats`] carries the small summary statistics the evaluation needs
//! (each experiment is run three times and averaged).

//! A third concern was added for the observability layer: **typed job
//! event traces** ([`events`]) with exporters to Chrome `trace_event`
//! JSON and JSONL ([`chrome`]) plus an ASCII Gantt timeline
//! ([`ascii::render_timeline`]), all built on a dependency-free JSON
//! value model ([`json`]).

//! A fourth concern arrived with the live-metrics layer: a
//! dependency-free, lock-cheap [`registry`] of sharded counters, gauges,
//! and HDR-style log-bucketed histograms, exposed as OpenMetrics text
//! ([`openmetrics`]) over an std-only scrape endpoint ([`server`]) and
//! folded into `JobReport` JSON as percentile summaries.

//! The diagnosis layer ([`diag`]) closes the loop the paper draws by
//! hand: a per-phase bandwidth ledger ([`diag::FlowLedger`]) plus a
//! bottleneck classifier ([`diag::BottleneckReport`]) that names the
//! saturated resource, served live from the scrape endpoint's
//! `/debug/diag` route.

pub mod ascii;
pub mod chrome;
pub mod csv;
pub mod diag;
pub mod events;
pub mod json;
pub mod openmetrics;
pub mod phase;
pub mod registry;
pub mod sampler;
pub mod server;
pub mod stats;
pub mod stopwatch;
pub mod svg;
pub mod trace;

pub use diag::{
    Bottleneck, BottleneckReport, DiagInputs, FlowLedger, FlowPhase, FlowSnapshot, GovernorSample,
    PhaseFlow,
};
pub use events::{
    EventCallback, EventKind, JobTrace, Span, SpanKey, StallSide, StallStats, ThreadTrace,
    TraceEvent, TraceLevel, TraceRing, TraceRound, Tracer,
};
pub use json::Json;
pub use phase::{Phase, PhaseTimer, PhaseTimings};
pub use registry::{
    Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot, MetricEntry, MetricKind, MetricValue,
    MetricsSnapshot, Registry,
};
pub use server::{DebugState, HttpHandler, HttpRequest, HttpResponse, MetricsServer};
pub use stats::Summary;
pub use stopwatch::Stopwatch;
pub use trace::{UtilSample, UtilTrace};
