//! Job-phase vocabulary and per-phase timing breakdowns.
//!
//! Table II of the paper breaks a job into `total`, `read` (ingest), `map`,
//! `reduce`, and `merge` columns; in SupMR runs the ingest and map phases
//! are fused by the pipeline, so a breakdown can also report a combined
//! `read+map` figure. [`PhaseTimings`] is that row, and [`PhaseTimer`] is
//! the instrument the runtimes drive.

use crate::stopwatch::Stopwatch;
use std::fmt;
use std::time::Duration;

/// The MapReduce job phases the paper distinguishes.
///
/// `Setup` and `Cleanup` exist because the paper notes the phase times "do
/// not add up to the total execution time because we do not list the
/// cleanup or setup times".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading input from primary storage into memory ("read" in Table II).
    Ingest,
    /// Running user map functions over input splits.
    Map,
    /// Coalescing intermediate key/value pairs with common keys.
    Reduce,
    /// Sorting/merging the final output.
    Merge,
    /// Job initialization not attributed to a data phase.
    Setup,
    /// Tear-down not attributed to a data phase.
    Cleanup,
}

impl Phase {
    /// All phases in canonical execution order.
    pub const ALL: [Phase; 6] =
        [Phase::Setup, Phase::Ingest, Phase::Map, Phase::Reduce, Phase::Merge, Phase::Cleanup];

    /// Column label used in table output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ingest => "read",
            Phase::Map => "map",
            Phase::Reduce => "reduce",
            Phase::Merge => "merge",
            Phase::Setup => "setup",
            Phase::Cleanup => "cleanup",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Setup => 0,
            Phase::Ingest => 1,
            Phase::Map => 2,
            Phase::Reduce => 3,
            Phase::Merge => 4,
            Phase::Cleanup => 5,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A completed per-phase timing breakdown — one row of Table II.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimings {
    durations: [Duration; 6],
    total: Duration,
    /// In pipeline runs ingest and map overlap, so their separate wall-clock
    /// durations are not meaningful; the fused duration is reported instead.
    fused_ingest_map: Option<Duration>,
}

impl PhaseTimings {
    /// Breakdown with every phase at zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Wall-clock duration of one phase. For fused (pipelined) runs,
    /// `Ingest` and `Map` both report the fused duration.
    pub fn phase(&self, p: Phase) -> Duration {
        if let Some(fused) = self.fused_ingest_map {
            if matches!(p, Phase::Ingest | Phase::Map) {
                return fused;
            }
        }
        self.durations[p.index()]
    }

    /// Total job wall-clock time (may exceed the sum of phases when phases
    /// overlap, and includes setup/cleanup).
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Whether ingest and map were overlapped by the chunk pipeline.
    pub fn is_fused(&self) -> bool {
        self.fused_ingest_map.is_some()
    }

    /// The fused ingest+map wall-clock duration, if this run pipelined.
    pub fn fused_ingest_map(&self) -> Option<Duration> {
        self.fused_ingest_map
    }

    /// Set a phase duration directly (used by the simulator and tests).
    pub fn set_phase(&mut self, p: Phase, d: Duration) {
        self.durations[p.index()] = d;
    }

    /// Set the total job duration directly.
    pub fn set_total(&mut self, d: Duration) {
        self.total = d;
    }

    /// Mark this breakdown as a pipelined run with the given fused
    /// ingest+map duration.
    pub fn set_fused_ingest_map(&mut self, d: Duration) {
        self.fused_ingest_map = Some(d);
    }

    /// Speedup of `self` relative to `other` on total time
    /// (`other.total / self.total`), i.e. >1 means `self` is faster.
    pub fn total_speedup_vs(&self, other: &PhaseTimings) -> f64 {
        ratio(other.total, self.total)
    }

    /// Speedup on a single phase. For pipelined runs compare the fused
    /// ingest+map against the baseline's ingest+map sum.
    pub fn phase_speedup_vs(&self, other: &PhaseTimings, p: Phase) -> f64 {
        ratio(other.phase(p), self.phase(p))
    }

    /// Speedup of the combined ingest+map span versus a baseline. For a
    /// non-fused run this is the sum of the two phases.
    pub fn ingest_map_speedup_vs(&self, other: &PhaseTimings) -> f64 {
        ratio(other.ingest_map_span(), self.ingest_map_span())
    }

    /// Combined ingest+map wall-clock span.
    pub fn ingest_map_span(&self) -> Duration {
        match self.fused_ingest_map {
            Some(f) => f,
            None => self.durations[Phase::Ingest.index()] + self.durations[Phase::Map.index()],
        }
    }

    /// Render as a Table II-style row: total, read, map, reduce, merge.
    /// Fused runs print the combined read+map figure spanning both columns.
    pub fn table_row(&self, label: &str) -> String {
        let secs = |d: Duration| format!("{:.2}s", d.as_secs_f64());
        if let Some(fused) = self.fused_ingest_map {
            format!(
                "{:<8} {:>10} {:>21} {:>10} {:>10}",
                label,
                secs(self.total),
                format!("{} (read+map)", secs(fused)),
                secs(self.phase(Phase::Reduce)),
                secs(self.phase(Phase::Merge)),
            )
        } else {
            format!(
                "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                label,
                secs(self.total),
                secs(self.phase(Phase::Ingest)),
                secs(self.phase(Phase::Map)),
                secs(self.phase(Phase::Reduce)),
                secs(self.phase(Phase::Merge)),
            )
        }
    }

    /// The header matching [`PhaseTimings::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "total", "read", "map", "reduce", "merge"
        )
    }
}

fn ratio(num: Duration, den: Duration) -> f64 {
    let (n, d) = (num.as_secs_f64(), den.as_secs_f64());
    if d == 0.0 {
        if n == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        n / d
    }
}

/// Live instrument that the runtimes drive while a job executes.
///
/// Each phase has an accumulating [`Stopwatch`], so a phase that executes in
/// multiple waves (e.g. `map` once per ingest-chunk round) reports the sum
/// of its waves. A separate stopwatch covers the whole job.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    watches: [Stopwatch; 6],
    job: Stopwatch,
    fused: bool,
    fused_watch: Stopwatch,
}

impl PhaseTimer {
    /// New timer; the job clock starts immediately.
    pub fn start_job() -> Self {
        let mut t = PhaseTimer::default();
        t.job.start();
        t
    }

    /// Mark this job as pipelined: ingest and map overlap, and their
    /// combined wall-clock span is measured by a dedicated fused clock.
    pub fn mark_fused(&mut self) {
        self.fused = true;
    }

    /// Enter a phase.
    pub fn begin(&mut self, p: Phase) {
        self.watches[p.index()].start();
        if self.fused && matches!(p, Phase::Ingest | Phase::Map) {
            self.fused_watch.start();
        }
    }

    /// Leave a phase.
    pub fn end(&mut self, p: Phase) {
        self.watches[p.index()].stop();
        if self.fused
            && matches!(p, Phase::Ingest | Phase::Map)
            && !self.watches[Phase::Ingest.index()].is_running()
            && !self.watches[Phase::Map.index()].is_running()
        {
            self.fused_watch.stop();
        }
    }

    /// Run `f` inside phase `p`.
    pub fn in_phase<T>(&mut self, p: Phase, f: impl FnOnce() -> T) -> T {
        self.begin(p);
        let out = f();
        self.end(p);
        out
    }

    /// Stop the job clock and produce the final breakdown.
    pub fn finish(mut self) -> PhaseTimings {
        self.job.stop();
        self.fused_watch.stop();
        let mut t = PhaseTimings::zero();
        for p in Phase::ALL {
            t.set_phase(p, self.watches[p.index()].elapsed());
        }
        t.set_total(self.job.elapsed());
        if self.fused {
            t.set_fused_ingest_map(self.fused_watch.elapsed());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn phases_have_stable_labels() {
        assert_eq!(Phase::Ingest.label(), "read");
        assert_eq!(Phase::Merge.to_string(), "merge");
        assert_eq!(Phase::ALL.len(), 6);
    }

    #[test]
    fn timer_accumulates_per_phase_waves() {
        let mut timer = PhaseTimer::start_job();
        for _ in 0..3 {
            timer.in_phase(Phase::Map, || sleep(Duration::from_millis(3)));
        }
        timer.in_phase(Phase::Merge, || sleep(Duration::from_millis(4)));
        let t = timer.finish();
        assert!(t.phase(Phase::Map) >= Duration::from_millis(9));
        assert!(t.phase(Phase::Merge) >= Duration::from_millis(4));
        assert!(t.total() >= t.phase(Phase::Map) + t.phase(Phase::Merge));
        assert!(!t.is_fused());
    }

    #[test]
    fn fused_timer_reports_span_not_sum() {
        let mut timer = PhaseTimer::start_job();
        timer.mark_fused();
        // Overlapping ingest and map: ingest spans the whole interval, map
        // nests inside it. The fused span must equal the outer interval,
        // not ingest+map.
        timer.begin(Phase::Ingest);
        timer.begin(Phase::Map);
        sleep(Duration::from_millis(10));
        timer.end(Phase::Map);
        timer.end(Phase::Ingest);
        let t = timer.finish();
        let fused = t.fused_ingest_map().expect("fused duration");
        assert!(fused >= Duration::from_millis(10));
        // Span must be less than the naive sum of the two overlapping
        // phase clocks.
        let naive_sum = Duration::from_millis(20);
        assert!(fused < naive_sum, "fused {fused:?} should be < {naive_sum:?}");
        assert_eq!(t.phase(Phase::Ingest), fused);
        assert_eq!(t.phase(Phase::Map), fused);
    }

    #[test]
    fn speedup_ratios() {
        let mut a = PhaseTimings::zero();
        a.set_total(Duration::from_secs(100));
        a.set_phase(Phase::Merge, Duration::from_secs(60));
        let mut b = PhaseTimings::zero();
        b.set_total(Duration::from_secs(50));
        b.set_phase(Phase::Merge, Duration::from_secs(20));
        assert!((b.total_speedup_vs(&a) - 2.0).abs() < 1e-9);
        assert!((b.phase_speedup_vs(&a, Phase::Merge) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ingest_map_span_sums_when_not_fused() {
        let mut t = PhaseTimings::zero();
        t.set_phase(Phase::Ingest, Duration::from_secs(30));
        t.set_phase(Phase::Map, Duration::from_secs(10));
        assert_eq!(t.ingest_map_span(), Duration::from_secs(40));
        t.set_fused_ingest_map(Duration::from_secs(32));
        assert_eq!(t.ingest_map_span(), Duration::from_secs(32));
    }

    #[test]
    fn table_rows_render() {
        let mut t = PhaseTimings::zero();
        t.set_total(Duration::from_secs_f64(471.75));
        t.set_phase(Phase::Ingest, Duration::from_secs_f64(403.90));
        t.set_phase(Phase::Map, Duration::from_secs_f64(67.41));
        let row = t.table_row("none");
        assert!(row.contains("471.75s"));
        assert!(row.contains("403.90s"));
        let mut f = PhaseTimings::zero();
        f.set_fused_ingest_map(Duration::from_secs_f64(406.14));
        let frow = f.table_row("1GB");
        assert!(frow.contains("read+map"));
        assert!(PhaseTimings::table_header().contains("reduce"));
    }

    #[test]
    fn zero_division_speedup_is_defined() {
        let a = PhaseTimings::zero();
        let b = PhaseTimings::zero();
        assert_eq!(a.total_speedup_vs(&b), 1.0);
        let mut c = PhaseTimings::zero();
        c.set_total(Duration::from_secs(1));
        assert_eq!(c.phase_speedup_vs(&a, Phase::Map), 1.0);
    }
}
