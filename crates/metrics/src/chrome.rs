//! Trace exporters: Chrome `trace_event` JSON and JSONL.
//!
//! [`to_chrome_json`] renders a [`JobTrace`] in the Chrome trace-event
//! format (the `{"traceEvents": [...]}` object form), loadable in
//! `chrome://tracing` or Perfetto. Each runtime thread becomes a track
//! (via `"M"` thread-name metadata), paired span events become `"X"`
//! complete events, stalls become `"X"` events under the `"stall"`
//! category (so they are visually distinct and easy to sum in the UI),
//! and pool dispatches become `"i"` instants.
//!
//! [`to_jsonl`] is the machine-diffable alternative: one JSON object
//! per line, one line per raw event, in global sequence order.

use crate::events::{EventKind, JobTrace, Span, SpanKey, TraceEvent};
use crate::json::Json;

/// Process id used for all tracks; the trace describes one job.
const PID: u64 = 1;

fn span_name(key: SpanKey) -> String {
    match key {
        SpanKey::Ingest(chunk) => format!("ingest chunk {chunk}"),
        SpanKey::MapWave(round) => format!("map wave {round}"),
        SpanKey::MapTask(round, task) => format!("map task {round}.{task}"),
        SpanKey::ReduceWave => "reduce wave".to_string(),
        SpanKey::Drain(partition) => format!("drain partition {partition}"),
        SpanKey::Reduce(partition) => format!("reduce partition {partition}"),
        SpanKey::Merge(round) => format!("merge round {round}"),
        SpanKey::SpillRun(run) => format!("spill run {run}"),
        SpanKey::ExternalMerge(partition) => format!("external merge partition {partition}"),
        SpanKey::Stage(stage) => format!("stage {stage}"),
    }
}

fn span_category(key: SpanKey) -> &'static str {
    match key {
        SpanKey::Ingest(_) => "ingest",
        SpanKey::MapWave(_) | SpanKey::MapTask(..) => "map",
        SpanKey::ReduceWave | SpanKey::Drain(_) | SpanKey::Reduce(_) => "reduce",
        SpanKey::Merge(_) => "merge",
        SpanKey::SpillRun(_) | SpanKey::ExternalMerge(_) => "spill",
        SpanKey::Stage(_) => "stage",
    }
}

fn span_args(start: &EventKind) -> Vec<(&'static str, Json)> {
    match *start {
        EventKind::MapWaveStart { tasks, .. } => vec![("tasks", Json::from(tasks))],
        EventKind::MapTaskStart { bytes, .. } => vec![("bytes", Json::from(bytes))],
        EventKind::ReduceWaveStart { partitions } => {
            vec![("partitions", Json::from(partitions))]
        }
        EventKind::MergeRoundStart { width, .. } => vec![("width", Json::from(u64::from(width)))],
        EventKind::SpillRunStart { partition, .. } => {
            vec![("partition", Json::from(partition))]
        }
        EventKind::ExternalMergeStart { runs, .. } => vec![("runs", Json::from(runs))],
        _ => Vec::new(),
    }
}

fn complete_event(
    name: String,
    cat: &str,
    tid: u64,
    ts_us: u64,
    dur_us: u64,
    args: Vec<(&'static str, Json)>,
) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("X")),
        ("pid", Json::from(PID)),
        ("tid", Json::from(tid)),
        ("ts", Json::from(ts_us)),
        ("dur", Json::from(dur_us)),
    ];
    if !args.is_empty() {
        pairs.push(("args", Json::obj(args)));
    }
    Json::obj(pairs)
}

/// Render a trace as Chrome `trace_event` JSON (object form).
pub fn to_chrome_json(trace: &JobTrace) -> String {
    let mut events: Vec<Json> = Vec::new();
    // Track metadata: name each tid after its runtime thread.
    for (tid, thread) in trace.threads.iter().enumerate() {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(PID)),
            ("tid", Json::from(tid as u64)),
            ("args", Json::obj(vec![("name", Json::str(thread.name.clone()))])),
        ]));
    }
    // Paired spans as complete events.
    for span in trace.spans() {
        let Span { thread, key, ref start, start_us, dur_us } = span;
        events.push(complete_event(
            span_name(key),
            span_category(key),
            thread as u64,
            start_us,
            dur_us,
            span_args(start),
        ));
    }
    // Stalls as complete events in their own category; the event is
    // emitted when the wait ends, so the block starts `wait_us` earlier.
    // Pool dispatches as instants.
    for (tid, thread) in trace.threads.iter().enumerate() {
        for event in &thread.events {
            match event.kind {
                EventKind::MapWaitingForChunk { round, wait_us } => {
                    events.push(complete_event(
                        format!("map waiting for chunk (round {round})"),
                        "stall",
                        tid as u64,
                        event.t_us.saturating_sub(wait_us),
                        wait_us,
                        vec![("side", Json::str("map"))],
                    ));
                }
                EventKind::IngestWaitingForContainer { chunk, wait_us } => {
                    events.push(complete_event(
                        format!("ingest waiting for container (chunk {chunk})"),
                        "stall",
                        tid as u64,
                        event.t_us.saturating_sub(wait_us),
                        wait_us,
                        vec![("side", Json::str("ingest"))],
                    ));
                }
                EventKind::PoolDispatch { tasks, workers } => {
                    events.push(Json::obj(vec![
                        ("name", Json::str("pool dispatch")),
                        ("cat", Json::str("pool")),
                        ("ph", Json::str("i")),
                        ("s", Json::str("t")),
                        ("pid", Json::from(PID)),
                        ("tid", Json::from(tid as u64)),
                        ("ts", Json::from(event.t_us)),
                        (
                            "args",
                            Json::obj(vec![
                                ("tasks", Json::from(tasks)),
                                ("workers", Json::from(workers)),
                            ]),
                        ),
                    ]));
                }
                EventKind::GovernorAction { verdict, knob, value } => {
                    events.push(Json::obj(vec![
                        ("name", Json::Str(format!("governor: {knob}"))),
                        ("cat", Json::str("governor")),
                        ("ph", Json::str("i")),
                        ("s", Json::str("t")),
                        ("pid", Json::from(PID)),
                        ("tid", Json::from(tid as u64)),
                        ("ts", Json::from(event.t_us)),
                        (
                            "args",
                            Json::obj(vec![
                                ("verdict", Json::str(verdict)),
                                ("knob", Json::str(knob)),
                                ("value", Json::from(value)),
                            ]),
                        ),
                    ]));
                }
                _ => {}
            }
        }
    }
    Json::obj(vec![("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::str("ms"))])
        .render()
}

pub(crate) fn event_line(thread_name: &str, event: &TraceEvent) -> Json {
    let mut pairs = vec![
        ("seq", Json::from(event.seq)),
        ("t_us", Json::from(event.t_us)),
        ("thread", Json::str(thread_name)),
        ("event", Json::str(event.kind.name())),
    ];
    match event.kind {
        EventKind::ChunkIngestStart { chunk } => {
            pairs.push(("chunk", Json::from(u64::from(chunk))))
        }
        EventKind::ChunkIngestEnd { chunk, bytes } => {
            pairs.push(("chunk", Json::from(u64::from(chunk))));
            pairs.push(("bytes", Json::from(bytes)));
        }
        EventKind::MapWaveStart { round, tasks } => {
            pairs.push(("round", Json::from(u64::from(round))));
            pairs.push(("tasks", Json::from(tasks)));
        }
        EventKind::MapWaveEnd { round } => pairs.push(("round", Json::from(u64::from(round)))),
        EventKind::MapTaskStart { round, task, bytes } => {
            pairs.push(("round", Json::from(u64::from(round))));
            pairs.push(("task", Json::from(task)));
            pairs.push(("bytes", Json::from(bytes)));
        }
        EventKind::MapTaskEnd { round, task } => {
            pairs.push(("round", Json::from(u64::from(round))));
            pairs.push(("task", Json::from(task)));
        }
        EventKind::ReduceWaveStart { partitions } => {
            pairs.push(("partitions", Json::from(partitions)));
        }
        EventKind::ReduceWaveEnd => {}
        EventKind::DrainPartitionStart { partition }
        | EventKind::DrainPartitionEnd { partition }
        | EventKind::ReducePartitionStart { partition }
        | EventKind::ReducePartitionEnd { partition } => {
            pairs.push(("partition", Json::from(partition)));
        }
        EventKind::MergeRoundStart { round, width } => {
            pairs.push(("round", Json::from(u64::from(round))));
            pairs.push(("width", Json::from(u64::from(width))));
        }
        EventKind::MergeRoundEnd { round } => pairs.push(("round", Json::from(u64::from(round)))),
        EventKind::PoolDispatch { tasks, workers } => {
            pairs.push(("tasks", Json::from(tasks)));
            pairs.push(("workers", Json::from(workers)));
        }
        EventKind::SpillRunStart { run, partition } => {
            pairs.push(("run", Json::from(run)));
            pairs.push(("partition", Json::from(partition)));
        }
        EventKind::SpillRunEnd { run, records, bytes } => {
            pairs.push(("run", Json::from(run)));
            pairs.push(("records", Json::from(records)));
            pairs.push(("bytes", Json::from(bytes)));
        }
        EventKind::ExternalMergeStart { partition, runs } => {
            pairs.push(("partition", Json::from(partition)));
            pairs.push(("runs", Json::from(runs)));
        }
        EventKind::ExternalMergeEnd { partition } => {
            pairs.push(("partition", Json::from(partition)));
        }
        EventKind::StageStart { stage } => {
            pairs.push(("stage", Json::from(u64::from(stage))));
        }
        EventKind::StageEnd { stage, pairs: out } => {
            pairs.push(("stage", Json::from(u64::from(stage))));
            pairs.push(("pairs", Json::from(out)));
        }
        EventKind::MapWaitingForChunk { round, wait_us } => {
            pairs.push(("round", Json::from(u64::from(round))));
            pairs.push(("wait_us", Json::from(wait_us)));
        }
        EventKind::IngestWaitingForContainer { chunk, wait_us } => {
            pairs.push(("chunk", Json::from(u64::from(chunk))));
            pairs.push(("wait_us", Json::from(wait_us)));
        }
        EventKind::GovernorAction { verdict, knob, value } => {
            pairs.push(("verdict", Json::str(verdict)));
            pairs.push(("knob", Json::str(knob)));
            pairs.push(("value", Json::from(value)));
        }
    }
    Json::obj(pairs)
}

/// Render a trace as JSONL: one object per event, in global sequence
/// order, terminated by a newline.
pub fn to_jsonl(trace: &JobTrace) -> String {
    let mut rows: Vec<(u64, String)> = Vec::new();
    for thread in &trace.threads {
        for event in &thread.events {
            rows.push((event.seq, event_line(&thread.name, event).render()));
        }
    }
    rows.sort_by_key(|(seq, _)| *seq);
    let mut out = String::new();
    for (_, line) in rows {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{TraceLevel, Tracer};

    fn sample_trace() -> JobTrace {
        let tracer = Tracer::new(TraceLevel::Wave, None);
        tracer.emit(EventKind::ChunkIngestStart { chunk: 0 });
        tracer.emit(EventKind::ChunkIngestEnd { chunk: 0, bytes: 4096 });
        tracer.emit(EventKind::MapWaveStart { round: 0, tasks: 2 });
        tracer.emit(EventKind::PoolDispatch { tasks: 2, workers: 2 });
        tracer.emit(EventKind::MapWaveEnd { round: 0 });
        tracer.emit(EventKind::MapWaitingForChunk { round: 0, wait_us: 250 });
        tracer.finish()
    }

    #[test]
    fn chrome_json_parses_and_has_expected_shapes() {
        let text = to_chrome_json(&sample_trace());
        let value = Json::parse(&text).expect("exporter output is valid JSON");
        let events = value.get("traceEvents").unwrap().as_arr().unwrap();
        let phase = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();
        assert!(events.iter().any(|e| phase(e) == "M"), "thread metadata present");
        assert!(events.iter().any(|e| phase(e) == "X"), "complete spans present");
        assert!(events.iter().any(|e| phase(e) == "i"), "pool dispatch instant present");
        let stall = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("stall"))
            .expect("stall event exported");
        assert_eq!(stall.get("dur").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn stall_block_starts_wait_us_before_emit() {
        let trace = sample_trace();
        let emit_t = trace.threads[0]
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::MapWaitingForChunk { .. }))
            .unwrap()
            .t_us;
        let text = to_chrome_json(&trace);
        let value = Json::parse(&text).unwrap();
        let stall = value
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("stall"))
            .unwrap()
            .clone();
        let ts = stall.get("ts").unwrap().as_f64().unwrap() as u64;
        assert_eq!(ts, emit_t.saturating_sub(250));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line_in_seq_order() {
        let text = to_jsonl(&sample_trace());
        let mut last_seq = -1i64;
        let mut lines = 0;
        for line in text.lines() {
            let value = Json::parse(line).expect("each line is valid JSON");
            let seq = value.get("seq").unwrap().as_f64().unwrap() as i64;
            assert!(seq > last_seq, "global sequence order");
            last_seq = seq;
            assert!(value.get("event").unwrap().as_str().is_some());
            lines += 1;
        }
        assert_eq!(lines, 6);
    }
}
