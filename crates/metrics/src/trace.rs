//! CPU-utilization traces — the data behind every figure in the paper.
//!
//! A trace is a time series of [`UtilSample`]s: at wall-clock second `t`,
//! what percentage of the machine's hardware contexts were executing
//! user-space code, kernel code, or were blocked waiting for IO. The paper
//! collects these with `collectl`; we produce identical series either from
//! `/proc/stat` sampling ([`crate::sampler`]) or exactly from the
//! simulator's event timeline.

use std::fmt::Write as _;

/// One utilization sample. Components are percentages of total machine
/// capacity in `[0, 100]`; they need not sum to 100 (the remainder is idle).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilSample {
    /// Seconds since the trace began.
    pub t: f64,
    /// % of capacity running user-space code.
    pub user: f64,
    /// % of capacity running kernel code.
    pub sys: f64,
    /// % of capacity blocked waiting for IO.
    pub iowait: f64,
}

impl UtilSample {
    /// Total non-idle percentage (user + sys + iowait), the quantity the
    /// paper's y-axes show.
    pub fn total(&self) -> f64 {
        self.user + self.sys + self.iowait
    }

    /// CPU-busy percentage (user + sys), excluding IO wait.
    pub fn busy(&self) -> f64 {
        self.user + self.sys
    }
}

/// A labelled point on the time axis (phase boundaries in the figures).
#[derive(Debug, Clone, PartialEq)]
pub struct Mark {
    /// Seconds since the trace began.
    pub t: f64,
    /// Label, e.g. `"merge begins"`.
    pub label: String,
}

/// A utilization trace: ordered samples plus optional phase marks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilTrace {
    samples: Vec<UtilSample>,
    marks: Vec<Mark>,
    unavailable: bool,
}

impl UtilTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An explicit "no utilization source" marker: the sampler ran but
    /// `/proc/stat` was unreachable (non-Linux hosts, restricted
    /// sandboxes). Distinguishable from a legitimately empty trace so
    /// `JobReport` JSON can say *why* the series is missing.
    pub fn unavailable() -> Self {
        UtilTrace { samples: Vec::new(), marks: Vec::new(), unavailable: true }
    }

    /// True if this trace is the [`UtilTrace::unavailable`] marker.
    pub fn is_unavailable(&self) -> bool {
        self.unavailable
    }

    /// Build from raw samples (must be in nondecreasing time order).
    ///
    /// # Panics
    /// Panics if sample times decrease.
    pub fn from_samples(samples: Vec<UtilSample>) -> Self {
        for w in samples.windows(2) {
            assert!(w[0].t <= w[1].t, "trace samples out of order: {} then {}", w[0].t, w[1].t);
        }
        UtilTrace { samples, marks: Vec::new(), unavailable: false }
    }

    /// Append a sample; time must not decrease.
    pub fn push(&mut self, s: UtilSample) {
        if let Some(last) = self.samples.last() {
            assert!(s.t >= last.t, "sample time went backwards");
        }
        self.samples.push(s);
    }

    /// Annotate a phase boundary.
    pub fn mark(&mut self, t: f64, label: impl Into<String>) {
        self.marks.push(Mark { t, label: label.into() });
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[UtilSample] {
        &self.samples
    }

    /// All phase marks.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Trace duration in seconds (time of last sample, 0 if empty).
    pub fn duration(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.t)
    }

    /// Time-weighted average of total utilization over the whole trace
    /// (trapezoidal). Returns 0 for traces with fewer than 2 samples.
    pub fn mean_total_utilization(&self) -> f64 {
        self.mean_over(|s| s.total())
    }

    /// Time-weighted average of CPU-busy (user+sys) utilization.
    pub fn mean_busy_utilization(&self) -> f64 {
        self.mean_over(|s| s.busy())
    }

    fn mean_over(&self, f: impl Fn(&UtilSample) -> f64) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mut area = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].t - w[0].t;
            area += dt * (f(&w[0]) + f(&w[1])) / 2.0;
        }
        let span = self.duration() - self.samples[0].t;
        if span > 0.0 {
            area / span
        } else {
            0.0
        }
    }

    /// Peak total utilization.
    pub fn peak_total(&self) -> f64 {
        self.samples.iter().map(|s| s.total()).fold(0.0, f64::max)
    }

    /// Resample the trace onto a regular grid with `step` seconds between
    /// points (sample-and-hold of the most recent sample), which is what a
    /// fixed-interval monitor like collectl reports.
    ///
    /// # Panics
    /// Panics if `step` is not positive.
    pub fn resample(&self, step: f64) -> UtilTrace {
        assert!(step > 0.0, "resample step must be positive");
        if self.samples.is_empty() {
            return UtilTrace::new();
        }
        let end = self.duration();
        let mut out = Vec::new();
        let mut idx = 0;
        let mut t = self.samples[0].t;
        while t <= end + 1e-9 {
            while idx + 1 < self.samples.len() && self.samples[idx + 1].t <= t + 1e-9 {
                idx += 1;
            }
            let s = self.samples[idx];
            out.push(UtilSample { t, ..s });
            t += step;
        }
        UtilTrace { samples: out, marks: self.marks.clone(), unavailable: self.unavailable }
    }

    /// Render as CSV with header `t,user,sys,iowait,total`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("t,user,sys,iowait,total\n");
        for p in &self.samples {
            let _ = writeln!(
                s,
                "{:.3},{:.2},{:.2},{:.2},{:.2}",
                p.t,
                p.user,
                p.sys,
                p.iowait,
                p.total()
            );
        }
        s
    }

    /// Fraction of trace time spent above a utilization threshold —
    /// useful for "50–100% more CPU utilization" style claims.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mut above = 0.0;
        let mut span = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].t - w[0].t;
            span += dt;
            if w[0].total() >= threshold {
                above += dt;
            }
        }
        if span > 0.0 {
            above / span
        } else {
            0.0
        }
    }
}

/// Shape similarity between two traces: resample both onto `points`
/// normalized-time samples and return the Pearson correlation of their
/// total-utilization series, in `[-1, 1]`.
///
/// This is how the reproduction cross-checks the simulator against real
/// executions — absolute durations differ by orders of magnitude across
/// machines, but the *shape* (troughs, spikes, step-downs) must agree.
///
/// Returns `None` if either trace is empty or has zero variance.
pub fn shape_correlation(a: &UtilTrace, b: &UtilTrace, points: usize) -> Option<f64> {
    let series = |t: &UtilTrace| -> Option<Vec<f64>> {
        let samples = t.samples();
        if samples.is_empty() || points < 2 {
            return None;
        }
        let t0 = samples[0].t;
        let span = (t.duration() - t0).max(f64::EPSILON);
        let mut out = Vec::with_capacity(points);
        let mut idx = 0;
        for p in 0..points {
            let at = t0 + span * p as f64 / (points - 1) as f64;
            while idx + 1 < samples.len() && samples[idx + 1].t <= at {
                idx += 1;
            }
            out.push(samples[idx].total());
        }
        Some(out)
    };
    let xs = series(a)?;
    let ys = series(b)?;
    let n = points as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Incrementally builds a trace from busy-capacity intervals, used by the
/// simulator: report, for `[t0, t1)`, how many contexts were doing user
/// work, kernel work, and how many tasks were blocked on IO; the builder
/// turns that into percentage samples.
#[derive(Debug)]
pub struct TraceBuilder {
    contexts: f64,
    trace: UtilTrace,
}

impl TraceBuilder {
    /// `contexts` is the machine's total hardware context count (the 100%
    /// line).
    ///
    /// # Panics
    /// Panics if `contexts` is zero.
    pub fn new(contexts: usize) -> Self {
        assert!(contexts > 0, "machine must have at least one context");
        TraceBuilder { contexts: contexts as f64, trace: UtilTrace::new() }
    }

    /// Record that over `[t0, t1)` `user_busy` contexts ran user code,
    /// `sys_busy` ran kernel code and `io_blocked` tasks were in IO wait.
    /// Emits a step function (two samples per interval).
    pub fn interval(&mut self, t0: f64, t1: f64, user_busy: f64, sys_busy: f64, io_blocked: f64) {
        if t1 <= t0 {
            return;
        }
        let pct = |x: f64| (x / self.contexts * 100.0).min(100.0);
        let s =
            UtilSample { t: t0, user: pct(user_busy), sys: pct(sys_busy), iowait: pct(io_blocked) };
        self.trace.push(s);
        self.trace.push(UtilSample { t: t1, ..s });
    }

    /// Annotate a phase boundary.
    pub fn mark(&mut self, t: f64, label: impl Into<String>) {
        self.trace.mark(t, label);
    }

    /// Finish and return the trace.
    pub fn build(self) -> UtilTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, user: f64, sys: f64, iowait: f64) -> UtilSample {
        UtilSample { t, user, sys, iowait }
    }

    #[test]
    fn total_and_busy() {
        let s = sample(0.0, 50.0, 10.0, 25.0);
        assert_eq!(s.total(), 85.0);
        assert_eq!(s.busy(), 60.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn from_samples_rejects_disorder() {
        UtilTrace::from_samples(vec![sample(1.0, 0.0, 0.0, 0.0), sample(0.5, 0.0, 0.0, 0.0)]);
    }

    #[test]
    fn mean_utilization_trapezoid() {
        // 100% for 1s then 0% for 1s => mean 50% (with step transitions).
        let t = UtilTrace::from_samples(vec![
            sample(0.0, 100.0, 0.0, 0.0),
            sample(1.0, 100.0, 0.0, 0.0),
            sample(1.0, 0.0, 0.0, 0.0),
            sample(2.0, 0.0, 0.0, 0.0),
        ]);
        assert!((t.mean_total_utilization() - 50.0).abs() < 1e-9);
        assert_eq!(t.peak_total(), 100.0);
        assert_eq!(t.duration(), 2.0);
    }

    #[test]
    fn fraction_above_threshold() {
        let t = UtilTrace::from_samples(vec![
            sample(0.0, 90.0, 0.0, 0.0),
            sample(3.0, 90.0, 0.0, 0.0),
            sample(3.0, 10.0, 0.0, 0.0),
            sample(4.0, 10.0, 0.0, 0.0),
        ]);
        assert!((t.fraction_above(50.0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn resample_holds_last_value() {
        let t = UtilTrace::from_samples(vec![
            sample(0.0, 10.0, 0.0, 0.0),
            sample(2.0, 10.0, 0.0, 0.0),
            sample(2.0, 80.0, 0.0, 0.0),
            sample(4.0, 80.0, 0.0, 0.0),
        ]);
        let r = t.resample(1.0);
        let vals: Vec<f64> = r.samples().iter().map(|s| s.user).collect();
        assert_eq!(vals, vec![10.0, 10.0, 80.0, 80.0, 80.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resample_rejects_zero_step() {
        UtilTrace::new().resample(0.0);
    }

    #[test]
    fn csv_rendering() {
        let mut t = UtilTrace::new();
        t.push(sample(0.0, 12.5, 2.5, 10.0));
        let csv = t.to_csv();
        assert!(csv.starts_with("t,user,sys,iowait,total\n"));
        assert!(csv.contains("0.000,12.50,2.50,10.00,25.00"));
    }

    #[test]
    fn builder_produces_percentages_of_capacity() {
        let mut b = TraceBuilder::new(32);
        b.interval(0.0, 10.0, 16.0, 0.0, 8.0);
        b.interval(10.0, 12.0, 32.0, 0.0, 0.0);
        b.mark(10.0, "merge begins");
        let t = b.build();
        assert_eq!(t.samples()[0].user, 50.0);
        assert_eq!(t.samples()[0].iowait, 25.0);
        assert_eq!(t.samples()[2].user, 100.0);
        assert_eq!(t.marks().len(), 1);
        // Over-capacity reports clamp at 100%.
        let mut b2 = TraceBuilder::new(4);
        b2.interval(0.0, 1.0, 8.0, 0.0, 0.0);
        assert_eq!(b2.build().samples()[0].user, 100.0);
    }

    #[test]
    fn builder_skips_empty_intervals() {
        let mut b = TraceBuilder::new(1);
        b.interval(5.0, 5.0, 1.0, 0.0, 0.0);
        assert!(b.build().samples().is_empty());
    }

    #[test]
    fn shape_correlation_identical_traces_is_one() {
        let t = trace_of(&[(0.0, 10.0), (5.0, 90.0), (10.0, 10.0)]);
        let r = shape_correlation(&t, &t, 50).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shape_correlation_is_timescale_invariant() {
        // Same shape, 100x the duration: still correlation 1.
        let a = trace_of(&[(0.0, 10.0), (5.0, 90.0), (10.0, 10.0)]);
        let b = trace_of(&[(0.0, 10.0), (500.0, 90.0), (1000.0, 10.0)]);
        let r = shape_correlation(&a, &b, 64).unwrap();
        assert!(r > 0.99, "r = {r}");
    }

    #[test]
    fn shape_correlation_detects_opposite_shapes() {
        let rising = trace_of(&[(0.0, 0.0), (5.0, 50.0), (10.0, 100.0)]);
        let falling = trace_of(&[(0.0, 100.0), (5.0, 50.0), (10.0, 0.0)]);
        let r = shape_correlation(&rising, &falling, 64).unwrap();
        assert!(r < -0.9, "r = {r}");
    }

    #[test]
    fn shape_correlation_degenerate_cases() {
        let flat = trace_of(&[(0.0, 50.0), (10.0, 50.0)]);
        let varied = trace_of(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!(shape_correlation(&flat, &varied, 32).is_none(), "zero variance");
        assert!(shape_correlation(&UtilTrace::new(), &varied, 32).is_none(), "empty");
        assert!(shape_correlation(&varied, &varied, 1).is_none(), "too few points");
    }

    fn trace_of(points: &[(f64, f64)]) -> UtilTrace {
        UtilTrace::from_samples(points.iter().map(|&(t, u)| sample(t, u, 0.0, 0.0)).collect())
    }

    #[test]
    fn push_rejects_backwards_time() {
        let mut t = UtilTrace::new();
        t.push(sample(1.0, 0.0, 0.0, 0.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push(sample(0.0, 0.0, 0.0, 0.0));
        }));
        assert!(result.is_err());
    }
}
