//! A start/stop timer with microsecond granularity.
//!
//! Phoenix++ exposes internal timing functions built on `time.h` that the
//! programmer starts and stops around job phases; the paper reports elapsed
//! times with microsecond granularity. [`Stopwatch`] is the equivalent:
//! it accumulates elapsed time across multiple start/stop cycles, which the
//! pipeline runtime needs because a single phase (e.g. `map`) runs once per
//! ingest-chunk round.

use std::time::{Duration, Instant};

/// Accumulating stopwatch. Supports repeated start/stop cycles; `elapsed`
/// is the sum of all completed cycles plus the in-flight one.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    accumulated: Duration,
    started_at: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Stopwatch { accumulated: Duration::ZERO, started_at: None }
    }

    /// A stopwatch that is already running.
    pub fn started() -> Self {
        let mut sw = Self::new();
        sw.start();
        sw
    }

    /// Begin (or resume) timing. Starting an already-running stopwatch is a
    /// no-op so callers do not have to track state across rounds.
    pub fn start(&mut self) {
        if self.started_at.is_none() {
            self.started_at = Some(Instant::now());
        }
    }

    /// Stop timing, folding the in-flight interval into the accumulated
    /// total. Stopping a stopped stopwatch is a no-op.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started_at.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Whether the stopwatch is currently running.
    pub fn is_running(&self) -> bool {
        self.started_at.is_some()
    }

    /// Total measured time (completed cycles + current cycle if running).
    pub fn elapsed(&self) -> Duration {
        match self.started_at {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total measured time in whole microseconds, the granularity the
    /// paper reports.
    pub fn elapsed_micros(&self) -> u128 {
        self.elapsed().as_micros()
    }

    /// Reset to zero and stop.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        self.started_at = None;
    }

    /// Directly add a duration (used by the simulator, which measures in
    /// virtual time rather than wall-clock time).
    pub fn add(&mut self, d: Duration) {
        self.accumulated += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn new_stopwatch_is_zero_and_stopped() {
        let sw = Stopwatch::new();
        assert_eq!(sw.elapsed(), Duration::ZERO);
        assert!(!sw.is_running());
    }

    #[test]
    fn accumulates_across_cycles() {
        let mut sw = Stopwatch::new();
        sw.start();
        sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(5));

        sw.start();
        sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() >= first + Duration::from_millis(5));
    }

    #[test]
    fn double_start_and_double_stop_are_noops() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        assert!(sw.is_running());
        sw.stop();
        let e = sw.elapsed();
        sw.stop();
        assert_eq!(sw.elapsed(), e);
    }

    #[test]
    fn elapsed_while_running_includes_in_flight_interval() {
        let mut sw = Stopwatch::started();
        sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.is_running());
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
        assert!(!sw.is_running());
    }

    #[test]
    fn add_folds_virtual_time() {
        let mut sw = Stopwatch::new();
        sw.add(Duration::from_secs(3));
        sw.add(Duration::from_secs(4));
        assert_eq!(sw.elapsed(), Duration::from_secs(7));
        assert_eq!(sw.elapsed_micros(), 7_000_000);
    }
}
