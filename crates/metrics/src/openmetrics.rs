//! OpenMetrics / Prometheus text exposition for [`crate::registry`].
//!
//! Renders a [`MetricsSnapshot`] in the OpenMetrics text format: for each
//! family a `# HELP` and `# TYPE` comment, then one sample line per
//! series. Counters get the mandatory `_total` suffix; histograms expose
//! cumulative `_bucket{le="..."}` samples at power-of-two boundaries
//! (derived from [`HistogramSnapshot::cumulative_pow2`]) plus `_sum` and
//! `_count`. The exposition ends with `# EOF` as the spec requires.
//!
//! Dotted family names (`supmr.map.task_us`) are sanitized to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` metric-name alphabet by mapping every
//! invalid byte to `_`. Label values are escaped per the spec
//! (`\\`, `\"`, `\n`).
//!
//! [`MetricsSnapshot`]: crate::registry::MetricsSnapshot
//! [`HistogramSnapshot::cumulative_pow2`]: crate::registry::HistogramSnapshot::cumulative_pow2

use crate::registry::{MetricEntry, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Sanitize a dotted metric name into the Prometheus name alphabet.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn render_entry(out: &mut String, name: &str, e: &MetricEntry) {
    match &e.value {
        MetricValue::Counter(v) => {
            let _ = write!(out, "{name}_total");
            render_labels(out, &e.labels, None);
            let _ = writeln!(out, " {v}");
        }
        MetricValue::Gauge(v) => {
            out.push_str(name);
            render_labels(out, &e.labels, None);
            let _ = writeln!(out, " {v}");
        }
        MetricValue::Histogram(h) => {
            for (bound, cum) in h.cumulative_pow2() {
                let _ = write!(out, "{name}_bucket");
                render_labels(out, &e.labels, Some(("le", &bound.to_string())));
                let _ = writeln!(out, " {cum}");
            }
            let _ = write!(out, "{name}_bucket");
            render_labels(out, &e.labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {}", h.count);
            let _ = write!(out, "{name}_sum");
            render_labels(out, &e.labels, None);
            let _ = writeln!(out, " {}", h.sum);
            let _ = write!(out, "{name}_count");
            render_labels(out, &e.labels, None);
            let _ = writeln!(out, " {}", h.count);
        }
    }
}

/// Render a snapshot as OpenMetrics text. Families appear in
/// registration order; each is announced once with `# HELP`/`# TYPE`
/// even when several label sets share the name.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut announced: Option<&str> = None;
    for e in &snapshot.entries {
        let name = sanitize_name(&e.name);
        if announced != Some(e.name.as_str()) {
            if !e.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", e.help.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {name} {}", e.kind.as_str());
            announced = Some(e.name.as_str());
        }
        render_entry(&mut out, &name, e);
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("supmr.map.task_us"), "supmr_map_task_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn counter_gets_total_suffix() {
        let r = Registry::new();
        r.counter("supmr.ingest.bytes", "Bytes read.", &[("runtime", "pipeline")]).add(42);
        let text = r.render_openmetrics();
        assert!(text.contains("# HELP supmr_ingest_bytes Bytes read."), "{text}");
        assert!(text.contains("# TYPE supmr_ingest_bytes counter"), "{text}");
        assert!(text.contains("supmr_ingest_bytes_total{runtime=\"pipeline\"} 42"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }
}
