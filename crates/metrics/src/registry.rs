//! A dependency-free, lock-cheap live metrics registry.
//!
//! The paper's evaluation is post-hoc: Phoenix++ phase timers and
//! `collectl` dumps are read after the run finishes. This module gives the
//! runtime *live* counters instead, cheap enough to sit on the hot path:
//!
//! * [`Counter`] — a monotonically increasing sum, striped across
//!   cache-line-padded shards so concurrent map workers never contend on
//!   one atomic (the same per-thread-aggregate recipe in-node combiners
//!   use for cheap hot-path accounting).
//! * [`Gauge`] — a point-in-time level (queue depth, tasks in flight).
//!   Gauges move rarely relative to counters, so a single atomic suffices.
//!   [`Gauge::track`] returns an RAII [`GaugeGuard`] so a panicking task
//!   can never leave the level permanently skewed.
//! * [`Histogram`] — an HDR-style log-bucketed latency/size distribution:
//!   values below 32 are exact, larger values land in one of 32
//!   sub-buckets per power of two (≤ 1/32 ≈ 3.2% relative error). Bucket
//!   arrays are striped like counters; [`HistogramSnapshot`]s merge
//!   exactly (bucket-wise addition) and answer p50/p90/p99/max.
//!
//! Handles are registered in a [`Registry`] under dotted names with label
//! sets (`supmr.map.task_us{runtime="pipeline"}`) and are `Clone` +
//! `Send` + `Sync`: clones share the same underlying cells, so a handle
//! can be captured by worker closures while the registry renders live
//! snapshots from another thread ([`Registry::render_openmetrics`],
//! [`Registry::render_ascii`], [`Registry::snapshot`]).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of stripes for counters and histograms. A power of two so the
/// shard pick is a mask, sized to cover typical scale-up core counts
/// without bloating snapshot merges.
const SHARDS: usize = 8;

/// Sub-bucket resolution: 2^5 = 32 linear buckets per octave, giving a
/// worst-case relative quantile error of 1/32.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Log-bucketed octaves above the exact range. Values at or above
/// 2^(SUB_BITS + OCTAVES - 1) saturate into the top bucket; with 42
/// octaves that is ~2^46 (≈ 8 × 10^13), far beyond any microsecond
/// latency or byte count the runtime records.
const OCTAVES: usize = 42;
/// Total buckets: one exact "octave" (values 0..SUB) + OCTAVES log ones.
const BUCKETS: usize = (OCTAVES + 1) * SUB as usize;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread stripe index; consecutive threads take consecutive
    /// stripes so a pool of N workers spreads across min(N, SHARDS) cells.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

#[inline]
fn shard() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A monotonically increasing counter striped across padded shards.
/// Cloning shares the same underlying cells.
#[derive(Clone, Default)]
pub struct Counter {
    cells: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A standalone counter (not attached to any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A point-in-time level. Single atomic: gauges move at wave/queue
/// granularity, not per-record, so striping would buy nothing.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A standalone gauge (not attached to any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge to an absolute level.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Move the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Raise the gauge by `n` and return an RAII guard that lowers it by
    /// the same amount on drop — including during unwinding, so a map
    /// task panic ([`SupmrError::TaskPanic`]-style) cannot leave queue
    /// depth or in-flight levels permanently skewed.
    ///
    /// [`SupmrError::TaskPanic`]: https://docs.rs/supmr
    #[must_use = "the gauge is lowered when the guard drops"]
    pub fn track(&self, n: i64) -> GaugeGuard {
        self.add(n);
        GaugeGuard { gauge: self.clone(), n }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// RAII handle from [`Gauge::track`]: lowers the gauge on drop.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
    n: i64,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.add(-self.n);
    }
}

struct HistShard {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistShard {
    fn default() -> HistShard {
        // Box the bucket array directly; [AtomicU64; BUCKETS] has no
        // Default impl for this length, so build from a zeroed Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!());
        HistShard {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Map a value to its log bucket. Values below `SUB` are exact; above,
/// the top `SUB_BITS` bits below the leading one select a sub-bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let o = 63 - v.leading_zeros(); // position of leading one, >= SUB_BITS
    let octave = (o - SUB_BITS + 1) as usize;
    if octave >= OCTAVES {
        return BUCKETS - 1;
    }
    let shift = o - SUB_BITS;
    let sub = ((v >> shift) & (SUB - 1)) as usize;
    octave * SUB as usize + sub
}

/// Inclusive upper bound of bucket `i` (the value reported for any
/// quantile that lands in the bucket).
fn bucket_bound(i: usize) -> u64 {
    let octave = i / SUB as usize;
    let sub = (i % SUB as usize) as u64;
    if octave == 0 {
        return sub;
    }
    let shift = (octave - 1) as u32;
    ((SUB + sub + 1) << shift) - 1
}

/// An HDR-style log-bucketed histogram, striped like [`Counter`].
/// Cloning shares the same cells; [`Histogram::snapshot`] folds the
/// stripes into an immutable, mergeable [`HistogramSnapshot`].
#[derive(Clone, Default)]
pub struct Histogram {
    shards: Arc<[HistShard; SHARDS]>,
}

impl Histogram {
    /// A standalone histogram (not attached to any registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.shards[shard()];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds — the unit every `*_us`
    /// family in the runtime uses.
    #[inline]
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    /// Fold all stripes into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for s in self.shards.iter() {
            snap.count += s.count.load(Ordering::Relaxed);
            snap.sum += s.sum.load(Ordering::Relaxed);
            snap.max = snap.max.max(s.max.load(Ordering::Relaxed));
            for (i, b) in s.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n > 0 {
                    snap.buckets[i] += n;
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// An immutable point-in-time view of a [`Histogram`]. Snapshots merge
/// exactly — bucket-wise addition loses nothing — so per-run or per-node
/// distributions can be combined before computing quantiles.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Merge another snapshot into this one. Exact: total count and sum
    /// add, and every quantile of the merged distribution is answered
    /// with the same bucket resolution as the inputs.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket holding the ceil(q·count)-th observation, so the
    /// answer is ≥ the true quantile and within 1/32 relative error of
    /// it. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the observed maximum (the top bucket
                // of a distribution usually extends beyond it).
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order — the raw material for exposition formats.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (bucket_bound(i), *n))
            .collect()
    }

    /// Cumulative counts at power-of-two boundaries `1, 2, 4, …` up to
    /// the first boundary covering `max` — a compact, fixed-meaning
    /// bucket set for OpenMetrics exposition. Counts are nondecreasing
    /// and the last entry equals [`HistogramSnapshot::count`] minus any
    /// observations above the final boundary (the `+Inf` bucket closes
    /// the series at `count`).
    pub fn cumulative_pow2(&self) -> Vec<(u64, u64)> {
        let mut bounds: Vec<u64> = Vec::new();
        let mut b = 1u64;
        loop {
            bounds.push(b);
            if b >= self.max || b > (1u64 << 62) {
                break;
            }
            b <<= 1;
        }
        let mut out = Vec::with_capacity(bounds.len());
        let mut cum = 0u64;
        let mut bi = 0usize;
        for bound in bounds {
            while bi < BUCKETS && bucket_bound(bi) <= bound {
                cum += self.buckets[bi];
                bi += 1;
            }
            out.push((bound, cum));
        }
        out
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing sum.
    Counter,
    /// Point-in-time level.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The OpenMetrics type keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A named collection of metric families. Cheap to clone (shared
/// internally); registration takes a short lock, but the returned
/// handles touch only their own atomics afterwards.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Family>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Metric {
        let mut families = self.inner.lock();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(f.kind == kind, "metric {name:?} registered as {:?} and {kind:?}", f.kind);
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return s.metric.clone();
        }
        let metric = match kind {
            MetricKind::Counter => Metric::Counter(Counter::new()),
            MetricKind::Gauge => Metric::Gauge(Gauge::new()),
            MetricKind::Histogram => Metric::Histogram(Histogram::new()),
        };
        family.series.push(Series {
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// Get or create the counter `name{labels}`. Repeated calls with the
    /// same name and labels return handles to the same cells.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_register(name, help, labels, MetricKind::Counter) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_register(name, help, labels, MetricKind::Gauge) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_register(name, help, labels, MetricKind::Histogram) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// A consistent point-in-time view of every registered series, in
    /// registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.inner.lock();
        let mut entries = Vec::new();
        for f in families.iter() {
            for s in &f.series {
                entries.push(MetricEntry {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    labels: s.labels.clone(),
                    value: match &s.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.value()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        MetricsSnapshot { entries }
    }

    /// Render the registry in OpenMetrics text exposition format (see
    /// [`crate::openmetrics`]).
    pub fn render_openmetrics(&self) -> String {
        crate::openmetrics::render(&self.snapshot())
    }

    /// Render a human-oriented aligned snapshot table — the in-run
    /// periodic reporter behind `supmr --metrics-interval`.
    pub fn render_ascii(&self) -> String {
        self.snapshot().render_ascii()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.inner.lock();
        f.debug_struct("Registry").field("families", &families.len()).finish()
    }
}

/// One series in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Dotted family name, e.g. `supmr.map.task_us`.
    pub name: String,
    /// Family help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Label set, in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

/// A snapshot of one metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// A consistent view of every series in a [`Registry`], detached from
/// the live cells. Produced by [`Registry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All series, families in registration order.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Serialize for the `supmr.job_report.v1` `metrics` section:
    /// an array of `{name, kind, labels, value | {count, sum, mean, p50,
    /// p90, p99, max}}` objects in registration order.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    let labels = Json::Obj(
                        e.labels.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect(),
                    );
                    let value = match &e.value {
                        MetricValue::Counter(v) => Json::from(*v),
                        MetricValue::Gauge(v) => Json::Num(*v as f64),
                        MetricValue::Histogram(h) => Json::obj(vec![
                            ("count", Json::from(h.count)),
                            ("sum", Json::from(h.sum)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", Json::from(h.p50())),
                            ("p90", Json::from(h.p90())),
                            ("p99", Json::from(h.p99())),
                            ("max", Json::from(h.max)),
                        ]),
                    };
                    Json::obj(vec![
                        ("name", Json::str(e.name.clone())),
                        ("kind", Json::str(e.kind.as_str())),
                        ("labels", labels),
                        ("value", value),
                    ])
                })
                .collect(),
        )
    }

    /// Aligned terminal table: one row per series, histograms shown as
    /// `count/mean/p50/p99/max`.
    pub fn render_ascii(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for e in &self.entries {
            let mut name = e.name.clone();
            if !e.labels.is_empty() {
                name.push('{');
                for (i, (k, v)) in e.labels.iter().enumerate() {
                    if i > 0 {
                        name.push(',');
                    }
                    name.push_str(k);
                    name.push_str("=\"");
                    name.push_str(v);
                    name.push('"');
                }
                name.push('}');
            }
            let value = match &e.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram(h) => format!(
                    "n={} mean={:.1} p50={} p90={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                ),
            };
            rows.push((name, value));
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        let barrier = Arc::new(Barrier::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let b = Arc::clone(&barrier);
                s.spawn(move || {
                    b.wait();
                    for _ in 0..10_000 {
                        c.inc();
                    }
                    c.add(5);
                });
            }
        });
        assert_eq!(c.value(), 4 * 10_000 + 4 * 5);
    }

    #[test]
    fn gauge_guard_restores_on_drop_and_panic() {
        let g = Gauge::new();
        {
            let _guard = g.track(3);
            assert_eq!(g.value(), 3);
        }
        assert_eq!(g.value(), 0);

        let result = std::panic::catch_unwind(|| {
            let _guard = g.track(7);
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(g.value(), 0, "guard must unwind-restore the gauge");
    }

    #[test]
    fn bucket_index_and_bound_are_consistent() {
        for v in (0..100_000u64).step_by(7).chain([0, 1, 31, 32, 33, 1 << 20, u64::MAX]) {
            let i = bucket_index(v);
            let hi = bucket_bound(i);
            assert!(hi >= v || i == BUCKETS - 1, "bound {hi} < value {v} (bucket {i})");
            if i > 0 && i < BUCKETS - 1 {
                let lo = bucket_bound(i - 1) + 1;
                assert!(lo <= v, "bucket {i} lower bound {lo} > value {v}");
                // Relative width bound: ≤ 1/32 above the exact range.
                if v >= SUB {
                    assert!((hi - v) as f64 <= v as f64 / 16.0, "v={v} hi={hi}");
                }
            }
        }
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 1000 * 1001 / 2);
        assert_eq!(s.max, 1000);
        for (q, truth) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (1.0, 1000)] {
            let est = s.quantile(q);
            assert!(est >= truth, "q={q} est={est} truth={truth}");
            assert!(est as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0, "q={q} est={est}");
        }
    }

    #[test]
    fn snapshots_merge_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 1000);
        assert_eq!(m.sum, a.snapshot().sum + b.snapshot().sum);
        assert_eq!(m.max, b.snapshot().max.max(a.snapshot().max));
        // The merged distribution answers quantiles identically to a
        // single histogram fed both streams.
        let all = Histogram::new();
        for v in 0..500u64 {
            all.record(v * 3);
            all.record(v * 7 + 1);
        }
        let s = all.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(m.quantile(q), s.quantile(q), "q={q}");
        }
    }

    #[test]
    fn cumulative_pow2_is_monotone_and_closes_at_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 65_536, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_pow2();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds must ascend");
            assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
        }
        assert!(cum.last().unwrap().1 <= s.count);
    }

    #[test]
    fn registry_dedupes_series_and_keeps_order() {
        let r = Registry::new();
        let c1 = r.counter("supmr.a", "help a", &[("runtime", "pipeline")]);
        let c2 = r.counter("supmr.a", "ignored", &[("runtime", "pipeline")]);
        c1.add(2);
        c2.add(3);
        assert_eq!(c1.value(), 5, "same name+labels must share cells");
        let _other = r.counter("supmr.a", "", &[("runtime", "original")]);
        let g = r.gauge("supmr.b", "level", &[]);
        g.set(-4);
        let h = r.histogram("supmr.c", "dist", &[]);
        h.record(9);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["supmr.a", "supmr.a", "supmr.b", "supmr.c"]);
        match &snap.entries[2].value {
            MetricValue::Gauge(v) => assert_eq!(*v, -4),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("supmr.x", "", &[]);
        let _ = r.gauge("supmr.x", "", &[]);
    }

    #[test]
    fn ascii_snapshot_lists_all_series() {
        let r = Registry::new();
        r.counter("supmr.bytes", "", &[("runtime", "pipeline")]).add(10);
        r.histogram("supmr.lat_us", "", &[]).record(100);
        let text = r.render_ascii();
        assert!(text.contains("supmr.bytes{runtime=\"pipeline\"}  10"), "got:\n{text}");
        assert!(text.contains("supmr.lat_us"), "got:\n{text}");
        assert!(text.contains("p99="), "got:\n{text}");
    }
}
