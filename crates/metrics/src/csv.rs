//! Minimal CSV writing, enough for experiment outputs.
//!
//! We deliberately avoid a CSV dependency: the experiment harness only
//! writes simple numeric tables (figure series and Table II rows). Fields
//! containing commas, quotes, or newlines are quoted per RFC 4180.
//!
//! [`to_csv`] is the trace exporter counterpart of
//! [`crate::chrome::to_jsonl`]: one row per event in global sequence
//! order, with every [`EventKind`] payload field in its own (sparse)
//! column, so a spreadsheet or `awk` can pivot on any of them.

use crate::events::{EventKind, JobTrace};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvTable {
    columns: usize,
    buf: String,
}

impl CsvTable {
    /// Create a table with the given column headers.
    ///
    /// # Panics
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> CsvTable {
        assert!(!headers.is_empty(), "CSV table needs at least one column");
        let mut t = CsvTable { columns: headers.len(), buf: String::new() };
        t.raw_row(headers.iter().map(|h| h.to_string()));
        t
    }

    /// Append a row of pre-rendered fields.
    ///
    /// # Panics
    /// Panics if the field count does not match the header.
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) {
        assert_eq!(fields.len(), self.columns, "CSV row width mismatch");
        self.raw_row(fields.iter().map(|f| f.as_ref().to_string()));
    }

    /// Append a row of f64s rendered with fixed precision.
    pub fn row_f64(&mut self, fields: &[f64], precision: usize) {
        assert_eq!(fields.len(), self.columns, "CSV row width mismatch");
        self.raw_row(fields.iter().map(|v| format!("{v:.precision$}")));
    }

    fn raw_row(&mut self, fields: impl Iterator<Item = String>) {
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "{}", escape(&f));
        }
        self.buf.push('\n');
    }

    /// The CSV contents.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Number of data rows (excluding the header).
    pub fn rows(&self) -> usize {
        self.buf.lines().count().saturating_sub(1)
    }

    /// Write to a file, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.buf)
    }
}

/// Columns of the trace CSV, in order. Sparse: a column is empty for
/// events whose payload does not carry it.
const TRACE_COLUMNS: [&str; 22] = [
    "seq",
    "t_us",
    "thread",
    "event",
    "chunk",
    "round",
    "task",
    "partition",
    "run",
    "stage",
    "tasks",
    "workers",
    "width",
    "partitions",
    "bytes",
    "records",
    "runs",
    "pairs",
    "wait_us",
    "verdict",
    "knob",
    "value",
];

/// Render a trace as CSV: one row per event, in global sequence order,
/// covering every [`EventKind`] at parity with the Chrome/JSONL
/// exporters (including the stage, spill-run, and external-merge
/// spans).
pub fn to_csv(trace: &JobTrace) -> String {
    let mut rows: Vec<(u64, Vec<String>)> = Vec::new();
    for thread in &trace.threads {
        for event in &thread.events {
            let mut fields = vec![String::new(); TRACE_COLUMNS.len()];
            fields[0] = event.seq.to_string();
            fields[1] = event.t_us.to_string();
            fields[2] = thread.name.clone();
            fields[3] = event.kind.name().to_string();
            let mut set = |column: &str, value: u64| {
                let i = TRACE_COLUMNS.iter().position(|c| *c == column).expect("known column");
                fields[i] = value.to_string();
            };
            match event.kind {
                EventKind::ChunkIngestStart { chunk } => set("chunk", u64::from(chunk)),
                EventKind::ChunkIngestEnd { chunk, bytes } => {
                    set("chunk", u64::from(chunk));
                    set("bytes", bytes);
                }
                EventKind::MapWaveStart { round, tasks } => {
                    set("round", u64::from(round));
                    set("tasks", tasks);
                }
                EventKind::MapWaveEnd { round } => set("round", u64::from(round)),
                EventKind::MapTaskStart { round, task, bytes } => {
                    set("round", u64::from(round));
                    set("task", task);
                    set("bytes", bytes);
                }
                EventKind::MapTaskEnd { round, task } => {
                    set("round", u64::from(round));
                    set("task", task);
                }
                EventKind::ReduceWaveStart { partitions } => set("partitions", partitions),
                EventKind::ReduceWaveEnd => {}
                EventKind::DrainPartitionStart { partition }
                | EventKind::DrainPartitionEnd { partition }
                | EventKind::ReducePartitionStart { partition }
                | EventKind::ReducePartitionEnd { partition } => set("partition", partition),
                EventKind::MergeRoundStart { round, width } => {
                    set("round", u64::from(round));
                    set("width", u64::from(width));
                }
                EventKind::MergeRoundEnd { round } => set("round", u64::from(round)),
                EventKind::PoolDispatch { tasks, workers } => {
                    set("tasks", tasks);
                    set("workers", workers);
                }
                EventKind::SpillRunStart { run, partition } => {
                    set("run", run);
                    set("partition", partition);
                }
                EventKind::SpillRunEnd { run, records, bytes } => {
                    set("run", run);
                    set("records", records);
                    set("bytes", bytes);
                }
                EventKind::ExternalMergeStart { partition, runs } => {
                    set("partition", partition);
                    set("runs", runs);
                }
                EventKind::ExternalMergeEnd { partition } => set("partition", partition),
                EventKind::StageStart { stage } => set("stage", u64::from(stage)),
                EventKind::StageEnd { stage, pairs } => {
                    set("stage", u64::from(stage));
                    set("pairs", pairs);
                }
                EventKind::MapWaitingForChunk { round, wait_us } => {
                    set("round", u64::from(round));
                    set("wait_us", wait_us);
                }
                EventKind::IngestWaitingForContainer { chunk, wait_us } => {
                    set("chunk", u64::from(chunk));
                    set("wait_us", wait_us);
                }
                EventKind::GovernorAction { value, .. } => set("value", value),
            }
            // String-valued payload fields land after the numeric
            // closure releases its borrow of `fields`.
            if let EventKind::GovernorAction { verdict, knob, .. } = event.kind {
                let col =
                    |c: &str| TRACE_COLUMNS.iter().position(|x| *x == c).expect("known column");
                fields[col("verdict")] = verdict.to_string();
                fields[col("knob")] = knob.to_string();
            }
            rows.push((event.seq, fields));
        }
    }
    rows.sort_by_key(|(seq, _)| *seq);
    let mut table = CsvTable::new(&TRACE_COLUMNS);
    for (_, fields) in rows {
        table.row(&fields);
    }
    table.buf
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut t = CsvTable::new(&["chunk", "total_s"]);
        t.row(&["none", "471.75"]);
        t.row_f64(&[1.0, 407.58], 2);
        assert_eq!(t.as_str(), "chunk,total_s\nnone,471.75\n1.00,407.58\n");
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let mut t = CsvTable::new(&["a"]);
        t.row(&["hello, world"]);
        assert!(t.as_str().contains("\"hello, world\""));
    }

    #[test]
    fn quotes_are_doubled() {
        let mut t = CsvTable::new(&["a"]);
        t.row(&[r#"say "hi""#]);
        assert!(t.as_str().contains(r#""say ""hi""""#));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_checked() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn trace_csv_covers_every_event_kind() {
        use crate::events::{TraceLevel, Tracer};
        let tracer = Tracer::new(TraceLevel::Task, None);
        let all = vec![
            EventKind::ChunkIngestStart { chunk: 1 },
            EventKind::ChunkIngestEnd { chunk: 1, bytes: 4096 },
            EventKind::MapWaveStart { round: 2, tasks: 8 },
            EventKind::MapTaskStart { round: 2, task: 3, bytes: 512 },
            EventKind::MapTaskEnd { round: 2, task: 3 },
            EventKind::MapWaveEnd { round: 2 },
            EventKind::PoolDispatch { tasks: 8, workers: 4 },
            EventKind::MapWaitingForChunk { round: 2, wait_us: 77 },
            EventKind::IngestWaitingForContainer { chunk: 1, wait_us: 88 },
            EventKind::SpillRunStart { run: 5, partition: 6 },
            EventKind::SpillRunEnd { run: 5, records: 100, bytes: 2048 },
            EventKind::ReduceWaveStart { partitions: 4 },
            EventKind::DrainPartitionStart { partition: 6 },
            EventKind::DrainPartitionEnd { partition: 6 },
            EventKind::ReducePartitionStart { partition: 6 },
            EventKind::ExternalMergeStart { partition: 6, runs: 2 },
            EventKind::ExternalMergeEnd { partition: 6 },
            EventKind::ReducePartitionEnd { partition: 6 },
            EventKind::ReduceWaveEnd,
            EventKind::MergeRoundStart { round: 0, width: 2 },
            EventKind::MergeRoundEnd { round: 0 },
            EventKind::StageStart { stage: 9 },
            EventKind::StageEnd { stage: 9, pairs: 1234 },
            EventKind::GovernorAction { verdict: "ingest-bound", knob: "map_width", value: 3 },
        ];
        let count = all.len();
        let mut names: Vec<&str> = all.iter().map(EventKind::name).collect();
        for kind in all {
            tracer.emit(kind);
        }
        let csv = to_csv(&tracer.finish());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), TRACE_COLUMNS.join(","));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), count, "one row per event");
        // Every kind appears, in sequence order, with its payload fields.
        for (row, name) in rows.iter().zip(names.drain(..)) {
            assert!(row.contains(name), "{row} should carry {name}");
        }
        let spill_end = rows.iter().find(|r| r.contains("SpillRunEnd")).unwrap();
        let fields: Vec<&str> = spill_end.split(',').collect();
        let col = |c: &str| TRACE_COLUMNS.iter().position(|x| *x == c).unwrap();
        assert_eq!(fields[col("run")], "5");
        assert_eq!(fields[col("records")], "100");
        assert_eq!(fields[col("bytes")], "2048");
        assert_eq!(fields[col("stage")], "", "sparse columns stay empty");
        let stage_end = rows.iter().find(|r| r.contains("StageEnd")).unwrap();
        let fields: Vec<&str> = stage_end.split(',').collect();
        assert_eq!(fields[col("stage")], "9");
        assert_eq!(fields[col("pairs")], "1234");
        let external = rows.iter().find(|r| r.contains("ExternalMergeStart")).unwrap();
        let fields: Vec<&str> = external.split(',').collect();
        assert_eq!(fields[col("partition")], "6");
        assert_eq!(fields[col("runs")], "2");
        let governor = rows.iter().find(|r| r.contains("GovernorAction")).unwrap();
        let fields: Vec<&str> = governor.split(',').collect();
        assert_eq!(fields[col("verdict")], "ingest-bound");
        assert_eq!(fields[col("knob")], "map_width");
        assert_eq!(fields[col("value")], "3");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("supmr-csv-test");
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(&["x"]);
        t.row(&["1"]);
        t.write_to(&path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
