//! Minimal CSV writing, enough for experiment outputs.
//!
//! We deliberately avoid a CSV dependency: the experiment harness only
//! writes simple numeric tables (figure series and Table II rows). Fields
//! containing commas, quotes, or newlines are quoted per RFC 4180.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvTable {
    columns: usize,
    buf: String,
}

impl CsvTable {
    /// Create a table with the given column headers.
    ///
    /// # Panics
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> CsvTable {
        assert!(!headers.is_empty(), "CSV table needs at least one column");
        let mut t = CsvTable { columns: headers.len(), buf: String::new() };
        t.raw_row(headers.iter().map(|h| h.to_string()));
        t
    }

    /// Append a row of pre-rendered fields.
    ///
    /// # Panics
    /// Panics if the field count does not match the header.
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) {
        assert_eq!(fields.len(), self.columns, "CSV row width mismatch");
        self.raw_row(fields.iter().map(|f| f.as_ref().to_string()));
    }

    /// Append a row of f64s rendered with fixed precision.
    pub fn row_f64(&mut self, fields: &[f64], precision: usize) {
        assert_eq!(fields.len(), self.columns, "CSV row width mismatch");
        self.raw_row(fields.iter().map(|v| format!("{v:.precision$}")));
    }

    fn raw_row(&mut self, fields: impl Iterator<Item = String>) {
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "{}", escape(&f));
        }
        self.buf.push('\n');
    }

    /// The CSV contents.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Number of data rows (excluding the header).
    pub fn rows(&self) -> usize {
        self.buf.lines().count().saturating_sub(1)
    }

    /// Write to a file, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.buf)
    }
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut t = CsvTable::new(&["chunk", "total_s"]);
        t.row(&["none", "471.75"]);
        t.row_f64(&[1.0, 407.58], 2);
        assert_eq!(t.as_str(), "chunk,total_s\nnone,471.75\n1.00,407.58\n");
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let mut t = CsvTable::new(&["a"]);
        t.row(&["hello, world"]);
        assert!(t.as_str().contains("\"hello, world\""));
    }

    #[test]
    fn quotes_are_doubled() {
        let mut t = CsvTable::new(&["a"]);
        t.row(&[r#"say "hi""#]);
        assert!(t.as_str().contains(r#""say ""hi""""#));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_checked() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("supmr-csv-test");
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(&["x"]);
        t.row(&["1"]);
        t.write_to(&path).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
