//! Property tests for the discrete-event engine: conservation laws that
//! must hold for *any* task graph — work is neither created nor lost,
//! resources are never oversubscribed, and dependencies are respected.

use proptest::collection::vec;
use proptest::prelude::*;
use supmr_metrics::Phase;
use supmr_sim::{Demand, Device, MachineSpec, Sim, TaskSpec};

#[derive(Debug, Clone)]
struct ArbTask {
    cpu: Vec<f64>,
    flow: Option<(f64, usize)>,
    /// Dependency back-offsets (converted to valid earlier ids).
    dep_offsets: Vec<usize>,
}

fn arb_tasks() -> impl Strategy<Value = Vec<ArbTask>> {
    vec(
        (
            vec(0.0f64..5.0, 0..3),
            proptest::option::of((0.1f64..1000.0, 0usize..2)),
            vec(1usize..8, 0..3),
        )
            .prop_map(|(cpu, flow, dep_offsets)| ArbTask { cpu, flow, dep_offsets }),
        1..25,
    )
}

fn build(machine: &MachineSpec, tasks: &[ArbTask]) -> Sim {
    let mut sim = Sim::new(machine.clone());
    for (i, t) in tasks.iter().enumerate() {
        let mut demands: Vec<Demand> = t.cpu.iter().map(|&s| Demand::Cpu(s)).collect();
        if let Some((bytes, device)) = t.flow {
            demands.push(Demand::Flow { bytes, device: device % machine.devices.len() });
        }
        let deps: Vec<usize> = t
            .dep_offsets
            .iter()
            .filter_map(|&off| i.checked_sub(off))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        sim.add_task(TaskSpec { phase: Phase::Map, demands, deps });
    }
    sim
}

fn machine(contexts: usize) -> MachineSpec {
    MachineSpec {
        contexts,
        devices: vec![Device::new("disk", 500.0), Device::cpu_bound("mem", 1000.0)],
        thread_spawn_cost: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cpu_work_is_conserved(tasks in arb_tasks(), contexts in 1usize..9) {
        let m = machine(contexts);
        let report = build(&m, &tasks).run();
        let total_cpu: f64 = tasks.iter().flat_map(|t| t.cpu.iter()).sum();
        // busy_core_seconds counts pure-CPU demands plus cpu-bound flow
        // time; the CPU part alone must be accounted exactly, so the
        // total is at least the CPU work.
        prop_assert!(report.busy_core_seconds >= total_cpu - 1e-6,
            "busy {} < cpu work {}", report.busy_core_seconds, total_cpu);
    }

    #[test]
    fn makespan_lower_bounds_hold(tasks in arb_tasks(), contexts in 1usize..9) {
        let m = machine(contexts);
        let report = build(&m, &tasks).run();
        let total_cpu: f64 = tasks.iter().flat_map(|t| t.cpu.iter()).sum();
        // Can't finish faster than perfect parallelism allows.
        prop_assert!(report.makespan >= total_cpu / contexts as f64 - 1e-6);
        // Nor faster than any single task's critical path.
        for t in &tasks {
            let serial: f64 = t.cpu.iter().sum::<f64>()
                + t.flow.map_or(0.0, |(b, d)| b / m.devices[d % m.devices.len()].bandwidth);
            prop_assert!(report.makespan >= serial - 1e-6);
        }
        // Device throughput bound: all bytes through one device take at
        // least bytes/bandwidth.
        for dev in 0..m.devices.len() {
            let bytes: f64 = tasks
                .iter()
                .filter_map(|t| t.flow)
                .filter(|(_, d)| d % m.devices.len() == dev)
                .map(|(b, _)| b)
                .sum();
            prop_assert!(report.makespan >= bytes / m.devices[dev].bandwidth - 1e-6);
        }
    }

    #[test]
    fn every_task_completes_within_the_makespan(tasks in arb_tasks()) {
        let m = machine(4);
        let report = build(&m, &tasks).run();
        prop_assert_eq!(report.tasks.len(), tasks.len());
        for rec in &report.tasks {
            prop_assert!(rec.start >= 0.0);
            prop_assert!(rec.end >= rec.start - 1e-9);
            prop_assert!(rec.end <= report.makespan + 1e-9);
        }
    }

    #[test]
    fn dependencies_are_respected(tasks in arb_tasks()) {
        let m = machine(2);
        let report = build(&m, &tasks).run();
        for (i, t) in tasks.iter().enumerate() {
            for &off in &t.dep_offsets {
                if let Some(dep) = i.checked_sub(off) {
                    prop_assert!(
                        report.tasks[i].start >= report.tasks[dep].end - 1e-9,
                        "task {i} started before dep {dep} ended"
                    );
                }
            }
        }
    }

    #[test]
    fn utilization_never_exceeds_capacity(tasks in arb_tasks(), contexts in 1usize..6) {
        let m = machine(contexts);
        let report = build(&m, &tasks).run();
        for s in report.trace.samples() {
            prop_assert!(s.user <= 100.0 + 1e-6);
            prop_assert!(s.total() <= 200.0 + 1e-6); // user + iowait can stack
        }
        // Mean busy utilization is consistent with busy core-seconds.
        if report.makespan > 0.0 {
            let from_busy =
                report.busy_core_seconds / (contexts as f64 * report.makespan) * 100.0;
            let from_trace = report.trace.mean_busy_utilization();
            // The trace clamps at 100% per interval; busy can exceed
            // capacity only via cpu-bound flows, so trace <= busy-based
            // figure within tolerance.
            prop_assert!(from_trace <= from_busy + 1.0,
                "trace {from_trace} vs accounting {from_busy}");
        }
    }
}
