//! Discrete-event simulation of a scale-up node running MapReduce jobs.
//!
//! # Why a simulator exists in this reproduction
//!
//! The paper's measurements come from a 2×8-core hyperthreaded server
//! (32 hardware contexts, 384GB RAM) with a 3-disk RAID-0 sustaining
//! ≤384 MB/s, processing 60–155GB inputs. Reproducing the *figures* —
//! CPU-utilization-vs-time traces and multi-hundred-second phase
//! timings — requires that machine, which this environment does not
//! have. The phenomena, however, are entirely determined by resource
//! arithmetic: bytes over bandwidths, core-seconds over contexts, and
//! the dependency structure between phases. A discrete-event simulator
//! computes exactly those quantities, so the shapes the paper reports
//! (who wins, by what factor, where the step curves fall) are preserved
//! at paper scale while the real runtime in `supmr` demonstrates the
//! mechanisms at machine scale.
//!
//! # Structure
//!
//! * [`engine`] — the simulator core: tasks with sequential demands
//!   (CPU core-seconds, byte flows through shared-bandwidth devices),
//!   dependency edges, FCFS cores, processor-sharing devices, and exact
//!   utilization accounting.
//! * [`machine`] — machine descriptions (contexts, disk/memory/network
//!   devices), including the paper's testbed.
//! * [`model`] — job models that compile a (job, machine, parameters)
//!   triple into a task graph: the original runtime, the SupMR ingest
//!   chunk pipeline, and the OpenMP-style comparator; plus the
//!   [`model::AppProfile`] calibrations for the paper's two
//!   applications.

pub mod energy;
pub mod engine;
pub mod machine;
pub mod model;

pub use energy::{EnergyModel, EnergyReport};
pub use engine::{Demand, Sim, SimReport, TaskId, TaskSpec};
pub use machine::{BusyKind, Device, MachineSpec};
pub use model::{
    scaleout_machine, simulate, simulate_scaleout, AppProfile, JobModel, ModelOutput,
    PipelineParams, ScaleOutParams,
};
