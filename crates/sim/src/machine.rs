//! Machine descriptions for the simulator.

/// How a task waiting on a device shows up in a CPU utilization trace.
///
/// A thread blocked on disk or network IO is *iowait* to collectl; a
/// thread stalled on the memory bus is still *executing* — memory-bound
/// copying reports as user time. The distinction is what makes the
/// paper's merge phase appear as a busy-CPU step curve rather than an
/// IO trough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyKind {
    /// Flows block the thread (disk, network): counted as iowait.
    Io,
    /// Flows keep a thread busy (memory bus): counted as user time.
    Cpu,
}

/// A shared-bandwidth device (disk array, memory bus, network link).
/// Concurrent flows share the bandwidth equally (processor sharing).
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Name used in reports ("raid0", "mem", "1gbe").
    pub name: String,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Trace classification of flows on this device.
    pub busy: BusyKind,
}

impl Device {
    /// A named IO device (disk, network).
    ///
    /// # Panics
    /// Panics unless `bandwidth` is positive and finite.
    pub fn new(name: impl Into<String>, bandwidth: f64) -> Device {
        assert!(bandwidth.is_finite() && bandwidth > 0.0, "bandwidth must be positive");
        Device { name: name.into(), bandwidth, busy: BusyKind::Io }
    }

    /// A device whose flows keep threads CPU-busy (the memory bus).
    pub fn cpu_bound(name: impl Into<String>, bandwidth: f64) -> Device {
        Device { busy: BusyKind::Cpu, ..Device::new(name, bandwidth) }
    }
}

/// A scale-up machine: hardware contexts plus shared-bandwidth devices.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Hardware contexts (the 100% line of the utilization figures).
    pub contexts: usize,
    /// Devices addressable by index in task demands.
    pub devices: Vec<Device>,
    /// CPU cost of starting one worker thread, in seconds. Incurred per
    /// task by the job models — the recurring overhead behind the
    /// paper's chunk-size discussion.
    pub thread_spawn_cost: f64,
}

impl MachineSpec {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics if there are no contexts or the spawn cost is negative.
    pub fn validate(&self) {
        assert!(self.contexts > 0, "machine needs at least one context");
        assert!(
            self.thread_spawn_cost >= 0.0 && self.thread_spawn_cost.is_finite(),
            "spawn cost must be non-negative"
        );
    }

    /// Index of a device by name.
    pub fn device(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name == name)
    }

    /// The paper's testbed: 2×8-core with hyperthreading (32 contexts),
    /// 3-HDD RAID-0, plus a shared memory bus whose effective merge-scan
    /// bandwidth is calibrated from the paper's own sort numbers (six
    /// memory passes over 60GB in 191.23s ⇒ ≈1.88 GB/s; see
    /// EXPERIMENTS.md).
    ///
    /// `disk_bandwidth` is passed in because the paper's two applications
    /// achieve different effective RAID rates (384 MB/s for word count's
    /// streaming reads, ≈328 MB/s for sort).
    pub fn paper_testbed(disk_bandwidth: f64) -> MachineSpec {
        MachineSpec {
            contexts: 32,
            devices: vec![Device::new("disk", disk_bandwidth), Device::cpu_bound("mem", 1.88e9)],
            thread_spawn_cost: 100e-6,
        }
    }

    /// The paper's Fig. 7 case study: the same compute node ingesting
    /// from a 32-node HDFS behind one 1GbE link (~117 MB/s effective).
    pub fn paper_testbed_hdfs() -> MachineSpec {
        let mut m = MachineSpec::paper_testbed(384e6);
        m.devices.push(Device::new("1gbe", 117e6));
        m
    }

    /// Standard device index for primary storage in the presets.
    pub const DISK: usize = 0;
    /// Standard device index for the memory bus in the presets.
    pub const MEM: usize = 1;
    /// Device index for the network link in the HDFS preset.
    pub const NET: usize = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let m = MachineSpec::paper_testbed(384e6);
        m.validate();
        assert_eq!(m.contexts, 32);
        assert_eq!(m.device("disk"), Some(MachineSpec::DISK));
        assert_eq!(m.device("mem"), Some(MachineSpec::MEM));
        assert!(m.device("1gbe").is_none());
        let h = MachineSpec::paper_testbed_hdfs();
        assert_eq!(h.device("1gbe"), Some(MachineSpec::NET));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Device::new("dud", 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_rejected() {
        MachineSpec { contexts: 0, devices: vec![], thread_spawn_cost: 0.0 }.validate();
    }
}
