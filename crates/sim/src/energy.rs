//! Energy accounting for simulated runs.
//!
//! The paper flags energy as a first-class trade-off of the ingest
//! chunk pipeline: small chunks drive "long periods of very high CPU
//! utilizations", to the point that "CPU heat thresholds were
//! occasionally breached leading to throttling" (§VI-C1), and names
//! utilization/energy as factors for comparing against scale-out
//! (§VIII). This module attaches a simple linear server power model to
//! a [`SimReport`] so those trade-offs are quantifiable: chunked runs
//! finish sooner (less base+idle energy) but run hotter (higher average
//! power) — both sides of the paper's observation.

use crate::engine::SimReport;
use crate::machine::MachineSpec;

/// Linear server power model: `P(t) = base + busy(t)·busy_core +
/// idle(t)·idle_core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Chassis/DRAM/disk baseline draw, watts.
    pub base_watts: f64,
    /// Additional draw of one busy hardware context, watts.
    pub busy_core_watts: f64,
    /// Draw of an idle hardware context, watts.
    pub idle_core_watts: f64,
}

impl EnergyModel {
    /// A 2014-era dual-socket Xeon server: ~150W chassis baseline,
    /// ~6W per active hardware context, ~1.5W idle.
    pub fn paper_server() -> EnergyModel {
        EnergyModel { base_watts: 150.0, busy_core_watts: 6.0, idle_core_watts: 1.5 }
    }

    /// Energy breakdown for one simulated run.
    ///
    /// # Panics
    /// Panics if any wattage is negative.
    pub fn evaluate(&self, report: &SimReport, machine: &MachineSpec) -> EnergyReport {
        assert!(
            self.base_watts >= 0.0 && self.busy_core_watts >= 0.0 && self.idle_core_watts >= 0.0,
            "wattages must be non-negative"
        );
        let span = report.makespan;
        let busy_cs = report.busy_core_seconds;
        let idle_cs = (machine.contexts as f64 * span - busy_cs).max(0.0);
        let base_j = self.base_watts * span;
        let busy_j = self.busy_core_watts * busy_cs;
        let idle_j = self.idle_core_watts * idle_cs;
        let total_j = base_j + busy_j + idle_j;
        EnergyReport {
            total_joules: total_j,
            base_joules: base_j,
            busy_joules: busy_j,
            idle_joules: idle_j,
            average_watts: if span > 0.0 { total_j / span } else { 0.0 },
            peak_watts: self.base_watts + machine.contexts as f64 * self.busy_core_watts,
        }
    }
}

/// Energy breakdown of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total energy over the job, joules.
    pub total_joules: f64,
    /// Baseline (chassis) share.
    pub base_joules: f64,
    /// Active-core share.
    pub busy_joules: f64,
    /// Idle-core share.
    pub idle_joules: f64,
    /// Mean power over the job — the "heat" axis of the paper's
    /// small-chunk warning.
    pub average_watts: f64,
    /// Power if every context were busy (the throttling ceiling).
    pub peak_watts: f64,
}

impl EnergyReport {
    /// Total energy in watt-hours (convenience for reports).
    pub fn watt_hours(&self) -> f64 {
        self.total_joules / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Demand, Sim, TaskSpec};
    use crate::machine::{Device, MachineSpec};
    use supmr_metrics::Phase;

    fn machine(contexts: usize) -> MachineSpec {
        MachineSpec { contexts, devices: vec![Device::new("disk", 100.0)], thread_spawn_cost: 0.0 }
    }

    fn model() -> EnergyModel {
        EnergyModel { base_watts: 100.0, busy_core_watts: 10.0, idle_core_watts: 1.0 }
    }

    #[test]
    fn fully_busy_run_draws_peak_power() {
        let m = machine(2);
        let mut sim = Sim::new(m.clone());
        for _ in 0..2 {
            sim.add_task(TaskSpec {
                phase: Phase::Map,
                demands: vec![Demand::Cpu(10.0)],
                deps: vec![],
            });
        }
        let r = sim.run();
        let e = model().evaluate(&r, &m);
        // 10s at base 100W + 2 busy cores x 10W = 120W.
        assert!((e.average_watts - 120.0).abs() < 1e-6);
        assert!((e.total_joules - 1200.0).abs() < 1e-6);
        assert_eq!(e.peak_watts, 120.0);
        assert_eq!(e.idle_joules, 0.0);
    }

    #[test]
    fn idle_heavy_run_draws_near_base_power() {
        let m = machine(4);
        let mut sim = Sim::new(m.clone());
        sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 1000.0, device: 0 }],
            deps: vec![],
        });
        let r = sim.run(); // 10s of pure IO wait
        let e = model().evaluate(&r, &m);
        // base 100W + 4 idle x 1W = 104W.
        assert!((e.average_watts - 104.0).abs() < 1e-6);
        assert_eq!(e.busy_joules, 0.0);
    }

    #[test]
    fn faster_job_uses_less_total_energy_but_more_power() {
        // Same work, half the makespan (twice the cores busy): total
        // energy drops (base amortized), average power rises — the
        // paper's chunk-size energy trade-off in miniature.
        let m = machine(2);
        let slow = {
            let mut sim = Sim::new(m.clone());
            let a = sim.add_task(TaskSpec {
                phase: Phase::Map,
                demands: vec![Demand::Cpu(10.0)],
                deps: vec![],
            });
            sim.add_task(TaskSpec {
                phase: Phase::Map,
                demands: vec![Demand::Cpu(10.0)],
                deps: vec![a],
            });
            model().evaluate(&sim.run(), &m)
        };
        let fast = {
            let mut sim = Sim::new(m.clone());
            for _ in 0..2 {
                sim.add_task(TaskSpec {
                    phase: Phase::Map,
                    demands: vec![Demand::Cpu(10.0)],
                    deps: vec![],
                });
            }
            model().evaluate(&sim.run(), &m)
        };
        assert!(fast.total_joules < slow.total_joules);
        assert!(fast.average_watts > slow.average_watts);
        assert!((fast.watt_hours() - fast.total_joules / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn paper_server_constants_are_sane() {
        let e = EnergyModel::paper_server();
        let m = MachineSpec::paper_testbed(384e6);
        // All-busy draw: 150 + 32*6 = 342W; plausible for the era.
        assert!((e.base_watts + m.contexts as f64 * e.busy_core_watts - 342.0).abs() < 1e-9);
    }
}
