//! An "equivalent" scale-out cluster model — the comparison the paper's
//! conclusion points at: "we also identify utilization and energy
//! consumption as significant factors in comparing this approach to an
//! 'equivalent' scale-out implementation" (§VIII), with the mechanics
//! §III describes: "scale-out can circumvent these bottlenecks by
//! leveraging aggregate data channels in the system … in scale-out
//! Hadoop the ingest phase is parallelized across many disks."
//!
//! The model: N nodes, each with its own disk, NIC, memory bus, and
//! cores. Map tasks read their splits from the local disk (ingest is
//! inherently overlapped and N-wide — the aggregate-channel advantage);
//! the intermediate data shuffles all-to-all through per-node NICs; each
//! node then sorts/merges its key range locally. Cores are drawn from a
//! global pool, a fair approximation for the symmetric workloads
//! modeled here.

use super::{secs, AppProfile, ModelOutput};
use crate::engine::{Demand, Sim, TaskId, TaskSpec};
use crate::machine::{Device, MachineSpec};
use supmr_metrics::{Phase, PhaseTimings};

/// Shape of the scale-out cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOutParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Per-node disk bandwidth, bytes/second.
    pub disk_bandwidth: f64,
    /// Per-node NIC bandwidth, bytes/second.
    pub nic_bandwidth: f64,
    /// Per-node memory-bus bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Concurrent map tasks per core (task-level pipelining of read and
    /// compute, as Hadoop slots provide).
    pub tasks_per_core: usize,
}

impl ScaleOutParams {
    /// A 16-node commodity cluster roughly "equivalent" to the paper's
    /// 32-context scale-up box: 16 × 2 cores, one 128 MB/s disk and one
    /// 1GbE NIC per node, same per-node memory-bus class.
    pub fn equivalent_cluster() -> ScaleOutParams {
        ScaleOutParams {
            nodes: 16,
            cores_per_node: 2,
            disk_bandwidth: 128e6,
            nic_bandwidth: 117e6,
            mem_bandwidth: 1.88e9,
            tasks_per_core: 4,
        }
    }

    fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.cores_per_node > 0, "need at least one core per node");
        assert!(self.tasks_per_core > 0, "need at least one task slot per core");
        for (name, v) in [
            ("disk", self.disk_bandwidth),
            ("nic", self.nic_bandwidth),
            ("mem", self.mem_bandwidth),
        ] {
            assert!(v > 0.0 && v.is_finite(), "{name} bandwidth must be positive");
        }
    }
}

/// The machine spec the scale-out simulation runs on (device layout:
/// for node `i`, disk = `3i`, nic = `3i+1`, mem = `3i+2`).
pub fn scaleout_machine(params: &ScaleOutParams) -> MachineSpec {
    params.validate();
    let mut devices = Vec::with_capacity(params.nodes * 3);
    for i in 0..params.nodes {
        devices.push(Device::new(format!("disk{i}"), params.disk_bandwidth));
        devices.push(Device::new(format!("nic{i}"), params.nic_bandwidth));
        devices.push(Device::cpu_bound(format!("mem{i}"), params.mem_bandwidth));
    }
    MachineSpec {
        contexts: params.nodes * params.cores_per_node,
        devices,
        thread_spawn_cost: 100e-6,
    }
}

/// Simulate the application on the scale-out cluster.
pub fn simulate_scaleout(profile: &AppProfile, params: &ScaleOutParams) -> ModelOutput {
    let machine = scaleout_machine(params);
    let mut sim = Sim::new(machine.clone());
    let n = params.nodes;
    let node_bytes = profile.input_bytes / n as f64;
    let node_inter = profile.merge_bytes / n as f64;

    // Map phase: per node, cores*tasks_per_core map tasks, each reading
    // its split from the local disk then computing — task-level
    // read/compute pipelining across slots.
    let mut all_map: Vec<TaskId> = Vec::new();
    for node in 0..n {
        let disk = 3 * node;
        let slots = params.cores_per_node * params.tasks_per_core;
        let split_bytes = node_bytes / slots as f64;
        let split_cpu = split_bytes * profile.map_ns_per_byte * 1e-9;
        for _ in 0..slots {
            all_map.push(sim.add_task(TaskSpec {
                phase: Phase::Map,
                demands: vec![
                    Demand::Flow { bytes: split_bytes, device: disk },
                    Demand::Cpu(split_cpu),
                ],
                deps: vec![],
            }));
        }
    }

    // Shuffle: each node pushes its (N-1)/N share of intermediate data
    // through its NIC once its map tasks finish (barrier per the Hadoop
    // copy phase; modeled cluster-wide for simplicity).
    let mut shuffles: Vec<TaskId> = Vec::new();
    if node_inter > 0.0 {
        for node in 0..n {
            let nic = 3 * node + 1;
            let bytes = node_inter * (n as f64 - 1.0) / n as f64;
            shuffles.push(sim.add_task(TaskSpec {
                phase: Phase::Ingest, // network wait renders as iowait
                demands: vec![Demand::Flow { bytes, device: nic }],
                deps: all_map.clone(),
            }));
        }
    }

    // Reduce: per node, cores reduce tasks over the node's key range.
    let reduce_deps = if shuffles.is_empty() { all_map.clone() } else { shuffles.clone() };
    let mut reduces: Vec<TaskId> = Vec::new();
    for _node in 0..n {
        let per_core =
            profile.input_bytes * profile.reduce_ns_per_byte * 1e-9 / machine.contexts as f64;
        for _ in 0..params.cores_per_node {
            reduces.push(sim.add_task(TaskSpec {
                phase: Phase::Reduce,
                demands: vec![Demand::Cpu(per_core)],
                deps: reduce_deps.clone(),
            }));
        }
    }

    // Merge: each node sorts+merges its range locally (2 passes over
    // node_inter through the node's own memory bus — every node's bus
    // works in parallel, unlike the scale-up box's single shared bus).
    if node_inter > 0.0 {
        for node in 0..n {
            let mem = 3 * node + 2;
            let per_core = node_inter / params.cores_per_node as f64;
            for _ in 0..params.cores_per_node {
                for _pass in 0..2 {
                    sim.add_task(TaskSpec {
                        phase: Phase::Merge,
                        demands: vec![Demand::Flow { bytes: per_core, device: mem }],
                        deps: reduces.clone(),
                    });
                }
            }
        }
    }

    let report = sim.run();
    let mut timings = PhaseTimings::zero();
    for phase in [Phase::Ingest, Phase::Map, Phase::Reduce, Phase::Merge] {
        timings.set_phase(phase, secs(report.phase_duration(phase)));
    }
    timings.set_total(secs(report.makespan));
    ModelOutput {
        label: format!("{} scale-out {}x{}", profile.name, n, params.cores_per_node),
        timings,
        report,
        chunks: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simulate, JobModel, PipelineParams};

    #[test]
    fn scaleout_wordcount_beats_scale_up_on_time() {
        // Aggregate disk channels: 16 x 128 MB/s = 2 GB/s vs 384 MB/s —
        // "scale-out can circumvent these bottlenecks by leveraging
        // aggregate data channels".
        let profile = AppProfile::word_count_155gb();
        let params = ScaleOutParams::equivalent_cluster();
        let out = simulate_scaleout(&profile, &params);
        let scale_up = {
            let m = MachineSpec::paper_testbed(profile.disk_bandwidth);
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
                &profile,
                &m,
                MachineSpec::DISK,
            )
        };
        assert!(
            out.total_secs() < scale_up.total_secs() / 2.0,
            "scale-out {} vs scale-up {}",
            out.total_secs(),
            scale_up.total_secs()
        );
        // But bounded below by its own aggregate-disk time.
        let disk_bound = profile.input_bytes / (16.0 * 128e6);
        assert!(out.total_secs() >= disk_bound * 0.99);
    }

    #[test]
    fn scaleout_sort_pays_the_shuffle() {
        let profile = AppProfile::sort_60gb();
        let params = ScaleOutParams::equivalent_cluster();
        let out = simulate_scaleout(&profile, &params);
        // Shuffle: each NIC moves 60GB/16 * 15/16 ≈ 3.5GB at 117MB/s ≈ 30s,
        // rendered in the Ingest (network-wait) phase.
        let shuffle = out.timings.phase(Phase::Ingest).as_secs_f64();
        assert!(shuffle > 20.0 && shuffle < 45.0, "shuffle = {shuffle}");
        // Local merges run on 16 parallel memory buses: 2 passes over
        // 3.75GB each ≈ 4s, vs the scale-up box's 64s single-bus p-way.
        let merge = out.timings.phase(Phase::Merge).as_secs_f64();
        assert!(merge < 10.0, "merge = {merge}");
    }

    #[test]
    fn scaleout_energy_is_worse_despite_faster_time() {
        // The §VIII trade-off: 16 chassis draw more than 1.
        use crate::energy::EnergyModel;
        let profile = AppProfile::word_count_155gb();
        let params = ScaleOutParams::equivalent_cluster();
        let machine = scaleout_machine(&params);
        let out = simulate_scaleout(&profile, &params);
        let per_node = EnergyModel::paper_server();
        let cluster_model =
            EnergyModel { base_watts: per_node.base_watts * params.nodes as f64, ..per_node };
        let cluster_energy = cluster_model.evaluate(&out.report, &machine);

        let scale_up_machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let scale_up = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
            &profile,
            &scale_up_machine,
            MachineSpec::DISK,
        );
        let scale_up_energy = per_node.evaluate(&scale_up.report, &scale_up_machine);

        assert!(out.total_secs() < scale_up.total_secs());
        assert!(
            cluster_energy.average_watts > 4.0 * scale_up_energy.average_watts,
            "cluster {}W vs box {}W",
            cluster_energy.average_watts,
            scale_up_energy.average_watts
        );
    }

    #[test]
    fn device_layout_is_consistent() {
        let params = ScaleOutParams::equivalent_cluster();
        let m = scaleout_machine(&params);
        assert_eq!(m.contexts, 32);
        assert_eq!(m.devices.len(), 48);
        assert_eq!(m.devices[0].name, "disk0");
        assert_eq!(m.devices[46].name, "nic15");
        assert_eq!(m.devices[47].name, "mem15");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let mut p = ScaleOutParams::equivalent_cluster();
        p.nodes = 0;
        scaleout_machine(&p);
    }
}
