//! Application calibrations derived from the paper's Table II.
//!
//! Every constant below is computed from numbers the paper itself
//! reports (phase wall-clock times on a known machine), not tuned to
//! make tests pass. The arithmetic, with EXPERIMENTS.md carrying the
//! full derivation:
//!
//! * **word count, 155GB** — read 403.90s ⇒ effective RAID bandwidth
//!   155e9/403.90 ≈ 384 MB/s (the device's rated maximum: streaming
//!   reads). Map 67.41s on 32 contexts ⇒ 67.41·32/155e9 ≈ 13.9 ns/byte.
//!   Reduce 0.03s and merge 0.01s ⇒ effectively free (hash container +
//!   sum combiner shrink the intermediate set to the vocabulary).
//! * **sort, 60GB** — read 182.78s ⇒ 60e9/182.78 ≈ 328 MB/s (sort's
//!   100-byte-record parsing reads slightly slower than the rated max).
//!   Map 6.33s ⇒ 3.4 ns/byte; reduce 7.72s ⇒ 4.1 ns/byte. The merge is
//!   memory-bound: the baseline does one parallel run-sort pass plus
//!   log₂(32) = 5 iterative 2-way rounds = 6 passes over 60GB in
//!   191.23s ⇒ memory-bus effective bandwidth ≈ 1.88 GB/s; the p-way
//!   merge does sort pass + 1 merge pass = 2 passes ⇒ ≈ 64s, matching
//!   the paper's 61.14s and its 3.13× merge speedup.
//! * **OpenMP parse** — Fig. 3's comparator ingests and parses 60GB
//!   with one thread; calibrating its total to "192 seconds slower"
//!   gives ≈ 5.7 ns/byte of serial parse.

use super::AppProfile;

impl AppProfile {
    /// Word count over 155GB of text (Table II upper half, Fig. 5).
    pub fn word_count_155gb() -> AppProfile {
        AppProfile {
            name: "wordcount",
            input_bytes: 155e9,
            map_ns_per_byte: 67.41 * 32.0 / 155.0, // = 13.92 ns/byte
            reduce_ns_per_byte: 0.03 * 32.0 / 155.0,
            merge_bytes: 0.0,
            merge_cpu_ns_per_byte: 0.0,
            sort_runs: 32,
            disk_bandwidth: 155e9 / 403.90,
            parse_ns_per_byte: 20.0,
        }
    }

    /// Sort (Terasort) over 60GB (Table II lower half, Figs. 1 and 6).
    pub fn sort_60gb() -> AppProfile {
        AppProfile {
            name: "sort",
            input_bytes: 60e9,
            map_ns_per_byte: 6.33 * 32.0 / 60.0, // = 3.38 ns/byte
            reduce_ns_per_byte: 7.72 * 32.0 / 60.0, // = 4.12 ns/byte
            // Merge passes are memory-bandwidth-bound; compare CPU hides
            // under the bus stalls (modeled by the cpu-bound mem device).
            merge_bytes: 60e9,
            merge_cpu_ns_per_byte: 0.0,
            sort_runs: 32,
            disk_bandwidth: 60e9 / 182.78,
            parse_ns_per_byte: 5.7,
        }
    }

    /// Word count over 30GB ingested from HDFS behind one 1GbE link
    /// (the Fig. 7 case study). CPU constants match
    /// [`AppProfile::word_count_155gb`]; only the size and the ingest
    /// path change.
    pub fn word_count_30gb_hdfs() -> AppProfile {
        AppProfile { input_bytes: 30e9, ..AppProfile::word_count_155gb() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_constants_are_the_documented_arithmetic() {
        let p = AppProfile::word_count_155gb();
        assert!((p.map_ns_per_byte - 13.92).abs() < 0.05);
        assert!((p.disk_bandwidth - 383.76e6).abs() < 1e6);
        assert_eq!(p.merge_bytes, 0.0);
    }

    #[test]
    fn sort_constants_are_the_documented_arithmetic() {
        let p = AppProfile::sort_60gb();
        assert!((p.map_ns_per_byte - 3.376).abs() < 0.01);
        assert!((p.reduce_ns_per_byte - 4.117).abs() < 0.01);
        assert!((p.disk_bandwidth - 328.3e6).abs() < 1e6);
        assert_eq!(p.sort_runs, 32);
    }

    #[test]
    fn hdfs_profile_reuses_wordcount_cpu_costs() {
        let wc = AppProfile::word_count_155gb();
        let h = AppProfile::word_count_30gb_hdfs();
        assert_eq!(h.input_bytes, 30e9);
        assert_eq!(h.map_ns_per_byte, wc.map_ns_per_byte);
    }

    #[test]
    fn merge_pass_count_arithmetic_holds() {
        // 6 memory passes over 60GB at the calibrated 1.88 GB/s bus
        // should land on the paper's 191.23s within a few percent.
        let passes = 1.0 + (32f64).log2(); // sort pass + 5 rounds
        let t = passes * 60e9 / 1.88e9;
        assert!((t - 191.23).abs() < 191.23 * 0.03, "t = {t}");
    }
}
