//! Job models: compile (runtime, application, machine) into a task graph.
//!
//! Three runtimes are modeled, matching the paper's comparisons:
//!
//! * [`JobModel::Original`] — Phoenix++: serial whole-input ingest, one
//!   map wave, reduce wave, then a merge built from a parallel sort pass
//!   plus **iterative 2-way merge rounds** with halving width (the
//!   Fig. 1 step curve).
//! * [`JobModel::SupMr`] — the ingest chunk pipeline: per-chunk ingest
//!   flows overlapped with per-chunk map waves (double buffering), and a
//!   **single p-way merge round** after the sort pass.
//! * [`JobModel::OpenMp`] — the §II comparator: serial ingest *and*
//!   serial single-threaded parse, then a fully parallel sort+merge.
//!
//! # Calibration
//!
//! [`AppProfile`] holds per-application constants derived from the
//! paper's own Table II (see EXPERIMENTS.md for the arithmetic):
//! per-byte map/reduce CPU costs from phase times × contexts, effective
//! ingest bandwidth from read times, and the merge phase modeled as
//! memory-bandwidth-bound passes over the intermediate data — one pass
//! for the parallel run sort, one per 2-way round for the baseline
//! (log₂ runs), one for the p-way merge.

mod profiles;
mod scaleout;

pub use scaleout::{scaleout_machine, simulate_scaleout, ScaleOutParams};

use crate::engine::{Demand, Sim, SimReport, TaskId, TaskSpec};
use crate::machine::MachineSpec;
use std::time::Duration;
use supmr_metrics::{Phase, PhaseTimings};

/// Calibrated per-application constants.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name for reports.
    pub name: &'static str,
    /// Logical input size in bytes.
    pub input_bytes: f64,
    /// Map CPU cost per input byte (core-nanoseconds).
    pub map_ns_per_byte: f64,
    /// Reduce CPU cost per input byte (core-nanoseconds).
    pub reduce_ns_per_byte: f64,
    /// Bytes scanned per merge pass (≈ intermediate data size; 0 for
    /// jobs whose merge is trivial, like combined word count).
    pub merge_bytes: f64,
    /// Merge CPU cost per byte per pass (core-nanoseconds), on top of
    /// the memory-bus flow.
    pub merge_cpu_ns_per_byte: f64,
    /// Sorted runs entering the merge (the baseline does log₂ of this
    /// many rounds).
    pub sort_runs: usize,
    /// Effective ingest bandwidth this application achieves on the
    /// paper's RAID (bytes/second).
    pub disk_bandwidth: f64,
    /// OpenMP-comparator single-threaded parse cost per byte
    /// (core-nanoseconds).
    pub parse_ns_per_byte: f64,
}

/// Which runtime to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobModel {
    /// The unmodified runtime (Table II's "none" rows).
    Original,
    /// The SupMR ingest chunk pipeline + p-way merge.
    SupMr(PipelineParams),
    /// The OpenMP comparator of §II / Fig. 3.
    OpenMp,
}

/// Parameters of the ingest chunk pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineParams {
    /// Ingest chunk size in bytes.
    pub chunk_bytes: f64,
}

/// A simulated job run.
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Human-readable configuration label ("supmr 1GB chunks").
    pub label: String,
    /// Table II-style per-phase breakdown.
    pub timings: PhaseTimings,
    /// The raw simulation report (trace, task records, makespan).
    pub report: SimReport,
    /// Ingest chunks processed (1 for unchunked runtimes).
    pub chunks: usize,
}

impl ModelOutput {
    /// Total simulated job time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.report.makespan
    }
}

/// Simulate a job model. `ingest_device` selects which machine device
/// primary storage lives on (disk for the RAID experiments,
/// [`MachineSpec::NET`] for the HDFS case study); the profile's
/// `disk_bandwidth` is only used to *build* disk-device presets, the
/// simulation honours whatever bandwidth the machine's device has.
pub fn simulate(
    model: JobModel,
    profile: &AppProfile,
    machine: &MachineSpec,
    ingest_device: usize,
) -> ModelOutput {
    let mut sim = Sim::new(machine.clone());
    let chunks = match model {
        JobModel::Original => {
            build_original(&mut sim, profile, machine, ingest_device);
            1
        }
        JobModel::SupMr(params) => build_supmr(&mut sim, profile, machine, ingest_device, params),
        JobModel::OpenMp => {
            build_openmp(&mut sim, profile, machine, ingest_device);
            1
        }
    };
    let report = sim.run();

    let mut timings = PhaseTimings::zero();
    for phase in [Phase::Ingest, Phase::Map, Phase::Reduce, Phase::Merge] {
        timings.set_phase(phase, secs(report.phase_duration(phase)));
    }
    timings.set_total(secs(report.makespan));
    if matches!(model, JobModel::SupMr(_)) {
        let fused = report.fused_span(Phase::Ingest, Phase::Map).map_or(0.0, |(s, e)| e - s);
        timings.set_fused_ingest_map(secs(fused));
    }

    let label = match model {
        JobModel::Original => format!("{} original", profile.name),
        JobModel::SupMr(p) => {
            format!("{} supmr {:.0}MB chunks", profile.name, p.chunk_bytes / 1e6)
        }
        JobModel::OpenMp => format!("{} openmp", profile.name),
    };
    ModelOutput { label, timings, report, chunks }
}

pub(crate) fn secs(s: f64) -> Duration {
    Duration::from_secs_f64(s.max(0.0))
}

/// One map wave over `bytes` of resident input: a serial wave-setup
/// task (the launching thread spawns `contexts` workers one by one —
/// the recurring cost that makes very small ingest chunks
/// counter-productive, §III-A2), then `contexts` worker tasks each
/// taking an equal share of the map work.
fn map_wave(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    bytes: f64,
    deps: &[TaskId],
) -> Vec<TaskId> {
    let workers = machine.contexts;
    let setup = sim.add_task(TaskSpec {
        phase: Phase::Map,
        demands: vec![Demand::Cpu(machine.thread_spawn_cost * workers as f64)],
        deps: deps.to_vec(),
    });
    let per_task = bytes * profile.map_ns_per_byte * 1e-9 / workers as f64;
    (0..workers)
        .map(|_| {
            sim.add_task(TaskSpec {
                phase: Phase::Map,
                demands: vec![Demand::Cpu(per_task)],
                deps: vec![setup],
            })
        })
        .collect()
}

/// The reduce wave.
fn reduce_wave(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    deps: &[TaskId],
) -> Vec<TaskId> {
    let workers = machine.contexts;
    let per_task = profile.input_bytes * profile.reduce_ns_per_byte * 1e-9 / workers as f64;
    (0..workers)
        .map(|_| {
            sim.add_task(TaskSpec {
                phase: Phase::Reduce,
                demands: vec![Demand::Cpu(machine.thread_spawn_cost + per_task)],
                deps: deps.to_vec(),
            })
        })
        .collect()
}

/// One memory pass of the merge phase executed by `width` parallel
/// workers: each moves its share of the intermediate bytes through the
/// memory bus and spends its share of compare CPU.
fn merge_pass(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    width: usize,
    deps: &[TaskId],
) -> Vec<TaskId> {
    let width = width.max(1);
    let bytes_per = profile.merge_bytes / width as f64;
    let cpu_per = profile.merge_bytes * profile.merge_cpu_ns_per_byte * 1e-9 / width as f64;
    (0..width)
        .map(|_| {
            sim.add_task(TaskSpec {
                phase: Phase::Merge,
                demands: vec![
                    Demand::Cpu(machine.thread_spawn_cost + cpu_per),
                    Demand::Flow { bytes: bytes_per, device: MachineSpec::MEM },
                ],
                deps: deps.to_vec(),
            })
        })
        .collect()
}

/// The merge phase: a fully parallel run-sort pass, then either the
/// baseline's halving-width 2-way rounds or a single p-way round.
fn merge_phase(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    pway: bool,
    deps: &[TaskId],
) -> Vec<TaskId> {
    if profile.merge_bytes <= 0.0 {
        return deps.to_vec();
    }
    // "each round (1) sorts many small lists in parallel" — pass 1.
    let mut frontier = merge_pass(sim, profile, machine, machine.contexts, deps);
    if pway {
        // One single-round p-way merge at full width.
        frontier = merge_pass(sim, profile, machine, machine.contexts, &frontier);
    } else {
        // Iterative 2-way rounds: runs/2, runs/4, … 1 concurrent merges.
        let mut merges = profile.sort_runs / 2;
        while merges >= 1 {
            frontier = merge_pass(sim, profile, machine, merges, &frontier);
            if merges == 1 {
                break;
            }
            merges /= 2;
        }
    }
    frontier
}

fn build_original(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    ingest_device: usize,
) {
    let ingest = sim.add_task(TaskSpec {
        phase: Phase::Ingest,
        demands: vec![Demand::Flow { bytes: profile.input_bytes, device: ingest_device }],
        deps: vec![],
    });
    let maps = map_wave(sim, profile, machine, profile.input_bytes, &[ingest]);
    let reduces = reduce_wave(sim, profile, machine, &maps);
    merge_phase(sim, profile, machine, false, &reduces);
}

fn build_supmr(
    sim: &mut Sim,
    profile: &AppProfile,
    machine: &MachineSpec,
    ingest_device: usize,
    params: PipelineParams,
) -> usize {
    assert!(params.chunk_bytes > 0.0, "chunk size must be positive");
    let n = (profile.input_bytes / params.chunk_bytes).ceil().max(1.0) as usize;
    let chunk_bytes = |i: usize| {
        if i + 1 == n {
            profile.input_bytes - params.chunk_bytes * (n - 1) as f64
        } else {
            params.chunk_bytes
        }
    };

    // Round structure: ingest[i] may start once ingest[i-1] is done and
    // the map wave of chunk i-2 has finished (that wave's end is when
    // round i-1 starts, which is when the pipeline spawns the ingest
    // thread for chunk i). Map wave i needs chunk i resident and the
    // previous wave's workers back.
    let mut prev_ingest: Option<TaskId> = None;
    let mut prev_wave: Vec<TaskId> = Vec::new();
    let mut older_wave: Vec<TaskId> = Vec::new();
    let mut last_wave: Vec<TaskId> = Vec::new();
    for i in 0..n {
        let mut ingest_deps: Vec<TaskId> = Vec::new();
        if let Some(p) = prev_ingest {
            ingest_deps.push(p);
        }
        ingest_deps.extend_from_slice(&older_wave);
        let ingest = sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: chunk_bytes(i), device: ingest_device }],
            deps: ingest_deps,
        });
        let mut wave_deps = vec![ingest];
        wave_deps.extend_from_slice(&prev_wave);
        let wave = map_wave(sim, profile, machine, chunk_bytes(i), &wave_deps);

        older_wave = std::mem::take(&mut prev_wave);
        prev_wave.clone_from(&wave);
        last_wave = wave;
        prev_ingest = Some(ingest);
    }

    let reduces = reduce_wave(sim, profile, machine, &last_wave);
    merge_phase(sim, profile, machine, true, &reduces);
    n
}

fn build_openmp(sim: &mut Sim, profile: &AppProfile, machine: &MachineSpec, ingest_device: usize) {
    // Serial ingest + single-threaded parse: the whole reason OpenMP
    // loses on time-to-result despite a faster compute phase.
    let ingest = sim.add_task(TaskSpec {
        phase: Phase::Ingest,
        demands: vec![
            Demand::Flow { bytes: profile.input_bytes, device: ingest_device },
            Demand::Cpu(profile.input_bytes * profile.parse_ns_per_byte * 1e-9),
        ],
        deps: vec![],
    });
    merge_phase(sim, profile, machine, true, &[ingest]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol_frac: f64) -> bool {
        (a - b).abs() <= b.abs() * tol_frac
    }

    #[test]
    fn original_wordcount_matches_table2_row_none() {
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let out = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
        // Paper: total 471.75s, read 403.90s, map 67.41s.
        let read = out.timings.phase(Phase::Ingest).as_secs_f64();
        let map = out.timings.phase(Phase::Map).as_secs_f64();
        assert!(approx(read, 403.9, 0.02), "read = {read}");
        assert!(approx(map, 67.41, 0.05), "map = {map}");
        assert!(approx(out.total_secs(), 471.75, 0.03), "total = {}", out.total_secs());
    }

    #[test]
    fn supmr_wordcount_1gb_chunks_matches_table2() {
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let out = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
            &profile,
            &machine,
            MachineSpec::DISK,
        );
        // Paper: total 407.58s, read+map 406.14s, 155 chunks.
        assert_eq!(out.chunks, 155);
        assert!(approx(out.total_secs(), 407.58, 0.03), "total = {}", out.total_secs());
        let fused = out.timings.fused_ingest_map().unwrap().as_secs_f64();
        assert!(approx(fused, 406.14, 0.03), "fused = {fused}");
    }

    #[test]
    fn supmr_wordcount_50gb_chunks_is_slower_than_1gb_but_faster_than_none() {
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let run = |model| simulate(model, &profile, &machine, MachineSpec::DISK).total_secs();
        let none = run(JobModel::Original);
        let small = run(JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }));
        let large = run(JobModel::SupMr(PipelineParams { chunk_bytes: 50e9 }));
        // Paper ordering: 407.58 < 429.76 < 471.75.
        assert!(small < large, "small {small} vs large {large}");
        assert!(large < none, "large {large} vs none {none}");
        assert!(approx(large, 429.76, 0.05), "50GB total = {large}");
    }

    #[test]
    fn original_sort_matches_table2_and_has_step_down_merge() {
        let profile = AppProfile::sort_60gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let out = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
        // Paper: total 397.31, read 182.78, merge 191.23.
        let read = out.timings.phase(Phase::Ingest).as_secs_f64();
        let merge = out.timings.phase(Phase::Merge).as_secs_f64();
        assert!(approx(read, 182.78, 0.02), "read = {read}");
        assert!(approx(merge, 191.23, 0.05), "merge = {merge}");
        assert!(approx(out.total_secs(), 397.31, 0.05), "total = {}", out.total_secs());
    }

    #[test]
    fn supmr_sort_merge_speedup_matches_3x() {
        let profile = AppProfile::sort_60gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let base = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
        let supmr = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
            &profile,
            &machine,
            MachineSpec::DISK,
        );
        let merge_speedup = base.timings.phase(Phase::Merge).as_secs_f64()
            / supmr.timings.phase(Phase::Merge).as_secs_f64();
        // Paper: 3.12-3.13×.
        assert!(merge_speedup > 2.5 && merge_speedup < 3.6, "merge speedup = {merge_speedup}");
        let total_speedup = base.total_secs() / supmr.total_secs();
        // Paper: 1.46×.
        assert!(total_speedup > 1.3 && total_speedup < 1.6, "total speedup = {total_speedup}");
    }

    #[test]
    fn openmp_compute_fast_total_slow() {
        let profile = AppProfile::sort_60gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let mr = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
        let omp = simulate(JobModel::OpenMp, &profile, &machine, MachineSpec::DISK);
        // Fig. 3: OpenMP's compute (merge) phase is much shorter…
        assert!(
            omp.timings.phase(Phase::Merge) < mr.timings.phase(Phase::Merge),
            "OpenMP compute should beat MR compute"
        );
        // …but its serial ingest+parse makes total time-to-result worse
        // (paper: 192 seconds slower).
        let gap = omp.total_secs() - mr.total_secs();
        assert!(gap > 120.0 && gap < 260.0, "OpenMP slower by {gap}s");
    }

    #[test]
    fn hdfs_case_study_small_speedup_despite_high_utilization() {
        let profile = AppProfile::word_count_30gb_hdfs();
        let machine = MachineSpec::paper_testbed_hdfs();
        let base = simulate(JobModel::Original, &profile, &machine, MachineSpec::NET);
        let supmr = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
            &profile,
            &machine,
            MachineSpec::NET,
        );
        let speedup_secs = base.total_secs() - supmr.total_secs();
        // Paper: "only a 7 second speedup" on a ~260s job.
        assert!(speedup_secs > 2.0 && speedup_secs < 20.0, "speedup = {speedup_secs}s");
        assert!(base.total_secs() > 200.0);
        // Utilization during ingest is higher for SupMR (map overlays).
        assert!(supmr.report.mean_utilization() > base.report.mean_utilization());
    }

    #[test]
    fn pipeline_utilization_beats_original() {
        // Conclusion of Fig. 5: ingest chunks lift CPU utilization.
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let base = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
        let supmr = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
            &profile,
            &machine,
            MachineSpec::DISK,
        );
        assert!(
            supmr.report.trace.mean_busy_utilization() > base.report.trace.mean_busy_utilization()
        );
    }

    #[test]
    fn smaller_chunks_higher_utilization() {
        // Conclusion 2: utilization rises as chunks shrink.
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let util = |chunk: f64| {
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: chunk }),
                &profile,
                &machine,
                MachineSpec::DISK,
            )
            .report
            .trace
            .mean_busy_utilization()
        };
        let small = util(1e9);
        let large = util(50e9);
        assert!(small > large, "1GB util {small} vs 50GB util {large}");
    }

    #[test]
    fn chunk_count_and_labels() {
        let profile = AppProfile::word_count_155gb();
        let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
        let out = simulate(
            JobModel::SupMr(PipelineParams { chunk_bytes: 50e9 }),
            &profile,
            &machine,
            MachineSpec::DISK,
        );
        assert_eq!(out.chunks, 4); // 155 / 50 → 3 full + 1 short
        assert!(out.label.contains("supmr"));
        assert!(simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK)
            .label
            .contains("original"));
    }
}
