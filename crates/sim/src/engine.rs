//! The discrete-event simulation engine.
//!
//! A simulation is a DAG of [`TaskSpec`]s. Each task executes a sequence
//! of demands: **CPU** demands occupy one hardware context exclusively
//! for a fixed number of core-seconds (FCFS dispatch from a ready
//! queue), and **flow** demands move bytes through a shared-bandwidth
//! device under processor sharing (all concurrent flows on a device
//! progress at `bandwidth / n_flows`). A task becomes ready when all its
//! dependencies complete.
//!
//! The engine advances time event-by-event: the next event is the
//! earliest CPU completion or flow completion; between events all flow
//! remainders decrease linearly, so completions are computed exactly.
//! Every inter-event interval contributes one utilization record
//! (contexts busy / tasks blocked on IO), which is how the paper's
//! collectl figures are regenerated without a wall clock.

use crate::machine::MachineSpec;
use std::collections::VecDeque;
use supmr_metrics::trace::TraceBuilder;
use supmr_metrics::{Phase, UtilTrace};

/// Identifies a task within one simulation.
pub type TaskId = usize;

/// One unit of sequential work inside a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Demand {
    /// Occupy one context for this many core-seconds.
    Cpu(f64),
    /// Move this many bytes through device `device` (processor shared).
    Flow {
        /// Bytes to transfer.
        bytes: f64,
        /// Index into [`MachineSpec::devices`].
        device: usize,
    },
}

/// A task: an ordered list of demands gated on dependencies.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Job phase this task belongs to (for per-phase spans and traces).
    pub phase: Phase,
    /// Demands executed in order.
    pub demands: Vec<Demand>,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

/// Execution record of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Simulated start time (first demand dispatched), seconds.
    pub start: f64,
    /// Simulated completion time, seconds.
    pub end: f64,
    /// The task's phase.
    pub phase: Phase,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-task records, indexed by [`TaskId`].
    pub tasks: Vec<TaskRecord>,
    /// Total simulated time.
    pub makespan: f64,
    /// Exact utilization trace (user = CPU-busy contexts, iowait =
    /// flow-blocked tasks).
    pub trace: UtilTrace,
    /// Total CPU core-seconds consumed.
    pub busy_core_seconds: f64,
}

impl SimReport {
    /// Wall-clock span `[start, end]` of all tasks in `phase`, or `None`
    /// if the phase had no tasks.
    pub fn phase_span(&self, phase: Phase) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = None;
        for t in self.tasks.iter().filter(|t| t.phase == phase) {
            span = Some(match span {
                None => (t.start, t.end),
                Some((s, e)) => (s.min(t.start), e.max(t.end)),
            });
        }
        span
    }

    /// Duration of a phase span (0 if the phase had no tasks).
    pub fn phase_duration(&self, phase: Phase) -> f64 {
        self.phase_span(phase).map_or(0.0, |(s, e)| e - s)
    }

    /// Wall-clock span of the union of two phases (the pipeline's fused
    /// ingest+map span).
    pub fn fused_span(&self, a: Phase, b: Phase) -> Option<(f64, f64)> {
        match (self.phase_span(a), self.phase_span(b)) {
            (Some((s1, e1)), Some((s2, e2))) => Some((s1.min(s2), e1.max(e2))),
            (one, None) => one,
            (None, one) => one,
        }
    }

    /// Mean total utilization (%) over the whole run.
    pub fn mean_utilization(&self) -> f64 {
        self.trace.mean_total_utilization()
    }

    /// Mean busy utilization (%) over one phase's wall-clock span
    /// (0 when the phase is absent or empty). This is the per-window
    /// figure the paper's "+50-100% utilization" claims are about.
    pub fn phase_mean_busy(&self, phase: Phase) -> f64 {
        let Some((start, end)) = self.phase_span(phase) else {
            return 0.0;
        };
        if end <= start {
            return 0.0;
        }
        let samples: Vec<_> =
            self.trace.samples().iter().filter(|s| s.t >= start && s.t <= end).copied().collect();
        if samples.len() < 2 {
            return 0.0;
        }
        supmr_metrics::UtilTrace::from_samples(samples).mean_busy_utilization()
    }
}

const EPS: f64 = 1e-9;

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting on `usize` more dependencies.
    Blocked(usize),
    /// In the CPU ready queue for demand `demand_idx`.
    ReadyCpu,
    /// Running a CPU demand that finishes at `f64`.
    RunningCpu(f64),
    /// Flowing on a device with `f64` bytes remaining.
    Flowing(f64),
    Done,
}

struct TaskRt {
    spec: TaskSpec,
    state: TaskState,
    demand_idx: usize,
    dependents: Vec<TaskId>,
    start: Option<f64>,
    end: f64,
}

/// A configured simulation ready to run.
pub struct Sim {
    machine: MachineSpec,
    tasks: Vec<TaskRt>,
}

impl Sim {
    /// New simulation on `machine`.
    pub fn new(machine: MachineSpec) -> Sim {
        machine.validate();
        Sim { machine, tasks: Vec::new() }
    }

    /// Add a task; returns its id. Dependencies must already exist.
    ///
    /// # Panics
    /// Panics on forward/self dependencies, unknown devices, or
    /// non-finite/negative demand magnitudes.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        let id = self.tasks.len();
        for &d in &spec.deps {
            assert!(d < id, "dependency {d} must precede task {id}");
        }
        for demand in &spec.demands {
            match *demand {
                Demand::Cpu(s) => {
                    assert!(s.is_finite() && s >= 0.0, "cpu demand must be >= 0");
                }
                Demand::Flow { bytes, device } => {
                    assert!(bytes.is_finite() && bytes >= 0.0, "flow bytes must be >= 0");
                    assert!(device < self.machine.devices.len(), "unknown device {device}");
                }
            }
        }
        let blocked = spec.deps.len();
        for &d in &spec.deps {
            self.tasks[d].dependents.push(id);
        }
        self.tasks.push(TaskRt {
            spec,
            state: TaskState::Blocked(blocked),
            demand_idx: 0,
            dependents: Vec::new(),
            start: None,
            end: 0.0,
        });
        id
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Run to completion.
    ///
    /// # Panics
    /// Panics if the task graph cannot make progress (should be
    /// impossible for a well-formed DAG).
    pub fn run(mut self) -> SimReport {
        let contexts = self.machine.contexts;
        let mut now = 0.0f64;
        let mut free_cores = contexts;
        let mut cpu_ready: VecDeque<TaskId> = VecDeque::new();
        // Per-device active flow lists.
        let mut flows: Vec<Vec<TaskId>> = vec![Vec::new(); self.machine.devices.len()];
        let mut running_cpu: Vec<TaskId> = Vec::new();
        let mut done = 0usize;
        let total = self.tasks.len();
        let mut busy_core_seconds = 0.0f64;
        let mut tracer = TraceBuilder::new(contexts);

        // Seed: unblock tasks with no dependencies. Completion of
        // zero-demand tasks cascades through `instant` below.
        let mut instant: VecDeque<TaskId> = VecDeque::new();
        for id in 0..total {
            if self.tasks[id].state == TaskState::Blocked(0) {
                instant.push_back(id);
            }
        }

        loop {
            // Drain zero-time transitions: start demands, finish empty
            // tasks, unblock dependents — all at the current instant.
            while let Some(id) = instant.pop_front() {
                let demand = self.tasks[id].spec.demands.get(self.tasks[id].demand_idx).copied();
                match demand {
                    None => {
                        // Task complete.
                        self.tasks[id].start.get_or_insert(now);
                        self.tasks[id].state = TaskState::Done;
                        self.tasks[id].end = now;
                        done += 1;
                        let deps = std::mem::take(&mut self.tasks[id].dependents);
                        for dep in &deps {
                            if let TaskState::Blocked(n) = self.tasks[*dep].state {
                                let n = n - 1;
                                self.tasks[*dep].state = TaskState::Blocked(n);
                                if n == 0 {
                                    instant.push_back(*dep);
                                }
                            }
                        }
                        self.tasks[id].dependents = deps;
                    }
                    Some(Demand::Cpu(s)) if s <= EPS => {
                        self.tasks[id].start.get_or_insert(now);
                        self.tasks[id].demand_idx += 1;
                        instant.push_back(id);
                    }
                    Some(Demand::Flow { bytes, .. }) if bytes <= EPS => {
                        self.tasks[id].start.get_or_insert(now);
                        self.tasks[id].demand_idx += 1;
                        instant.push_back(id);
                    }
                    Some(Demand::Cpu(_)) => {
                        // Start time is stamped at dispatch, not enqueue:
                        // a queued task has not begun service.
                        self.tasks[id].state = TaskState::ReadyCpu;
                        cpu_ready.push_back(id);
                    }
                    Some(Demand::Flow { bytes, device }) => {
                        self.tasks[id].start.get_or_insert(now);
                        self.tasks[id].state = TaskState::Flowing(bytes);
                        flows[device].push(id);
                    }
                }
            }

            // Dispatch ready CPU demands onto free cores (FCFS).
            while free_cores > 0 {
                let Some(id) = cpu_ready.pop_front() else { break };
                let Demand::Cpu(s) = self.tasks[id].spec.demands[self.tasks[id].demand_idx] else {
                    unreachable!("ReadyCpu task must face a Cpu demand");
                };
                self.tasks[id].start.get_or_insert(now);
                self.tasks[id].state = TaskState::RunningCpu(now + s);
                running_cpu.push(id);
                free_cores -= 1;
            }

            if done == total {
                break;
            }

            // Find the next event time.
            let mut t_next = f64::INFINITY;
            for &id in &running_cpu {
                if let TaskState::RunningCpu(end) = self.tasks[id].state {
                    t_next = t_next.min(end);
                }
            }
            for (dev, dev_flows) in flows.iter().enumerate() {
                if dev_flows.is_empty() {
                    continue;
                }
                let rate = self.machine.devices[dev].bandwidth / dev_flows.len() as f64;
                for &id in dev_flows {
                    if let TaskState::Flowing(remaining) = self.tasks[id].state {
                        t_next = t_next.min(now + remaining / rate);
                    }
                }
            }
            assert!(
                t_next.is_finite(),
                "simulation deadlock: {done}/{total} tasks done, nothing runnable"
            );
            let dt = (t_next - now).max(0.0);

            // Account the interval. Flows on CPU-bound devices (the
            // memory bus) keep threads busy; flows on IO devices are
            // iowait — the collectl distinction the figures rely on.
            let mut cpu_flows = 0usize;
            let mut io_flows = 0usize;
            for (dev, dev_flows) in flows.iter().enumerate() {
                match self.machine.devices[dev].busy {
                    crate::machine::BusyKind::Cpu => cpu_flows += dev_flows.len(),
                    crate::machine::BusyKind::Io => io_flows += dev_flows.len(),
                }
            }
            let busy = (running_cpu.len() + cpu_flows) as f64;
            tracer.interval(now, t_next, busy, 0.0, io_flows as f64);
            busy_core_seconds += busy * dt;

            // Advance flows.
            for (dev, dev_flows) in flows.iter_mut().enumerate() {
                if dev_flows.is_empty() {
                    continue;
                }
                let rate = self.machine.devices[dev].bandwidth / dev_flows.len() as f64;
                for &id in dev_flows.iter() {
                    if let TaskState::Flowing(remaining) = &mut self.tasks[id].state {
                        *remaining -= rate * dt;
                    }
                }
                dev_flows.retain(|&id| {
                    if let TaskState::Flowing(remaining) = self.tasks[id].state {
                        if remaining <= self.machine.devices[dev].bandwidth * EPS {
                            self.tasks[id].demand_idx += 1;
                            instant.push_back(id);
                            return false;
                        }
                    }
                    true
                });
            }

            // Complete CPU demands.
            now = t_next;
            running_cpu.retain(|&id| {
                if let TaskState::RunningCpu(end) = self.tasks[id].state {
                    if end <= now + EPS {
                        self.tasks[id].demand_idx += 1;
                        free_cores += 1;
                        instant.push_back(id);
                        return false;
                    }
                }
                true
            });
        }

        let records = self
            .tasks
            .iter()
            .map(|t| TaskRecord {
                start: t.start.unwrap_or(t.end),
                end: t.end,
                phase: t.spec.phase,
            })
            .collect();
        SimReport { tasks: records, makespan: now, trace: tracer.build(), busy_core_seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Device, MachineSpec};

    fn machine(contexts: usize, bws: &[f64]) -> MachineSpec {
        MachineSpec {
            contexts,
            devices: bws
                .iter()
                .enumerate()
                .map(|(i, &b)| Device::new(format!("d{i}"), b))
                .collect(),
            thread_spawn_cost: 0.0,
        }
    }

    fn cpu_task(s: f64, deps: Vec<TaskId>) -> TaskSpec {
        TaskSpec { phase: Phase::Map, demands: vec![Demand::Cpu(s)], deps }
    }

    #[test]
    fn single_cpu_task_takes_its_duration() {
        let mut sim = Sim::new(machine(4, &[]));
        sim.add_task(cpu_task(2.5, vec![]));
        let r = sim.run();
        assert!((r.makespan - 2.5).abs() < 1e-9);
        assert!((r.busy_core_seconds - 2.5).abs() < 1e-9);
        assert_eq!(r.tasks[0].start, 0.0);
    }

    #[test]
    fn parallel_cpu_tasks_use_all_contexts() {
        let mut sim = Sim::new(machine(4, &[]));
        for _ in 0..8 {
            sim.add_task(cpu_task(1.0, vec![]));
        }
        let r = sim.run();
        // 8 core-seconds on 4 cores = 2 seconds, two full waves.
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.mean_utilization() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn fcfs_queueing_when_oversubscribed() {
        let mut sim = Sim::new(machine(1, &[]));
        let a = sim.add_task(cpu_task(1.0, vec![]));
        let b = sim.add_task(cpu_task(1.0, vec![]));
        let r = sim.run();
        assert!((r.tasks[a].end - 1.0).abs() < 1e-9);
        assert!((r.tasks[b].start - 1.0).abs() < 1e-9);
        assert!((r.tasks[b].end - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize() {
        let mut sim = Sim::new(machine(8, &[]));
        let a = sim.add_task(cpu_task(1.0, vec![]));
        let b = sim.add_task(cpu_task(1.0, vec![a]));
        let c = sim.add_task(cpu_task(1.0, vec![b]));
        let r = sim.run();
        assert!((r.makespan - 3.0).abs() < 1e-9);
        assert!(r.tasks[c].start >= r.tasks[b].end - 1e-9);
    }

    #[test]
    fn single_flow_takes_bytes_over_bandwidth() {
        let mut sim = Sim::new(machine(2, &[100.0]));
        sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 250.0, device: 0 }],
            deps: vec![],
        });
        let r = sim.run();
        assert!((r.makespan - 2.5).abs() < 1e-9);
        assert_eq!(r.busy_core_seconds, 0.0);
    }

    #[test]
    fn concurrent_flows_share_bandwidth_fairly() {
        // Two equal flows on one device: both finish at the same time,
        // total time = total bytes / bandwidth.
        let mut sim = Sim::new(machine(2, &[100.0]));
        for _ in 0..2 {
            sim.add_task(TaskSpec {
                phase: Phase::Ingest,
                demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
                deps: vec![],
            });
        }
        let r = sim.run();
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.tasks[0].end - r.tasks[1].end).abs() < 1e-9);
    }

    #[test]
    fn unequal_flows_processor_share() {
        // Flow A = 100 bytes, flow B = 300 bytes, bandwidth 100 B/s.
        // Shared until A finishes: A needs 100 at 50 B/s => 2s; B then
        // has 200 left at 100 B/s => finishes at 4s (= total/bw).
        let mut sim = Sim::new(machine(1, &[100.0]));
        let a = sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
            deps: vec![],
        });
        let b = sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 300.0, device: 0 }],
            deps: vec![],
        });
        let r = sim.run();
        assert!((r.tasks[a].end - 2.0).abs() < 1e-9, "A at {}", r.tasks[a].end);
        assert!((r.tasks[b].end - 4.0).abs() < 1e-9, "B at {}", r.tasks[b].end);
    }

    #[test]
    fn io_and_cpu_overlap() {
        // The double-buffering primitive: a 10s flow and a 10s of CPU in
        // parallel => 10s total, not 20.
        let mut sim = Sim::new(machine(2, &[10.0]));
        sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
            deps: vec![],
        });
        sim.add_task(cpu_task(10.0, vec![]));
        let r = sim.run();
        assert!((r.makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_demands_within_a_task() {
        // Flow then CPU: 1s + 2s.
        let mut sim = Sim::new(machine(1, &[100.0]));
        sim.add_task(TaskSpec {
            phase: Phase::Map,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }, Demand::Cpu(2.0)],
            deps: vec![],
        });
        let r = sim.run();
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_tasks_complete_instantly() {
        let mut sim = Sim::new(machine(1, &[]));
        let a = sim.add_task(TaskSpec { phase: Phase::Setup, demands: vec![], deps: vec![] });
        let b = sim.add_task(TaskSpec {
            phase: Phase::Setup,
            demands: vec![Demand::Cpu(0.0)],
            deps: vec![a],
        });
        let c = sim.add_task(cpu_task(1.0, vec![b]));
        let r = sim.run();
        assert_eq!(r.tasks[a].end, 0.0);
        assert_eq!(r.tasks[b].end, 0.0);
        assert!((r.tasks[c].end - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_spans_and_fusion() {
        let mut sim = Sim::new(machine(2, &[100.0]));
        sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
            deps: vec![],
        });
        let m = sim.add_task(cpu_task(0.5, vec![]));
        let _ = m;
        let r = sim.run();
        assert_eq!(r.phase_span(Phase::Ingest), Some((0.0, 1.0)));
        let (s, e) = r.fused_span(Phase::Ingest, Phase::Map).unwrap();
        assert_eq!(s, 0.0);
        assert!((e - 1.0).abs() < 1e-9);
        assert_eq!(r.phase_duration(Phase::Merge), 0.0);
    }

    #[test]
    fn utilization_trace_reflects_busy_cores() {
        // 2 contexts, one 1s CPU task: 50% for 1s.
        let mut sim = Sim::new(machine(2, &[]));
        sim.add_task(cpu_task(1.0, vec![]));
        let r = sim.run();
        assert!((r.trace.mean_busy_utilization() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn trace_shows_iowait_during_flows() {
        let mut sim = Sim::new(machine(4, &[100.0]));
        sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
            deps: vec![],
        });
        let r = sim.run();
        let s = r.trace.samples().first().unwrap();
        assert_eq!(s.user, 0.0);
        assert!((s.iowait - 25.0).abs() < 1e-6); // 1 blocked of 4 contexts
    }

    #[test]
    fn phase_mean_busy_is_windowed() {
        // Ingest (flow, idle CPU) for 10s then a 1-core map for 2s on a
        // 2-context machine: map-window busy = 50%, ingest-window ~0%.
        let mut sim = Sim::new(machine(2, &[10.0]));
        let ingest = sim.add_task(TaskSpec {
            phase: Phase::Ingest,
            demands: vec![Demand::Flow { bytes: 100.0, device: 0 }],
            deps: vec![],
        });
        sim.add_task(TaskSpec {
            phase: Phase::Map,
            demands: vec![Demand::Cpu(2.0)],
            deps: vec![ingest],
        });
        let r = sim.run();
        assert!(r.phase_mean_busy(Phase::Ingest) < 1.0);
        assert!((r.phase_mean_busy(Phase::Map) - 50.0).abs() < 1e-6);
        assert_eq!(r.phase_mean_busy(Phase::Merge), 0.0);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_dependency_rejected() {
        let mut sim = Sim::new(machine(1, &[]));
        sim.add_task(TaskSpec { phase: Phase::Map, demands: vec![], deps: vec![5] });
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_rejected() {
        let mut sim = Sim::new(machine(1, &[]));
        sim.add_task(TaskSpec {
            phase: Phase::Map,
            demands: vec![Demand::Flow { bytes: 1.0, device: 0 }],
            deps: vec![],
        });
    }

    #[test]
    fn diamond_dag() {
        let mut sim = Sim::new(machine(4, &[]));
        let a = sim.add_task(cpu_task(1.0, vec![]));
        let b = sim.add_task(cpu_task(2.0, vec![a]));
        let c = sim.add_task(cpu_task(3.0, vec![a]));
        let d = sim.add_task(cpu_task(1.0, vec![b, c]));
        let r = sim.run();
        assert!((r.tasks[d].start - 4.0).abs() < 1e-9); // after a(1) + c(3)
        assert!((r.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn large_fanout_is_exact() {
        // 100 tasks of 1 core-second on 10 cores: exactly 10 seconds.
        let mut sim = Sim::new(machine(10, &[]));
        for _ in 0..100 {
            sim.add_task(cpu_task(1.0, vec![]));
        }
        let r = sim.run();
        assert!((r.makespan - 10.0).abs() < 1e-6);
        assert!((r.busy_core_seconds - 100.0).abs() < 1e-6);
    }
}
