//! Criterion bench: the SWAR/zero-copy map path vs the scalar
//! byte-at-a-time + String-per-token path it replaced.
//!
//! Two workload shapes (see `supmr_bench::map_path`): case-sensitive
//! word count and the case-folding variant (fold-during-tokenization
//! scratch buffer). Each runs the full tokenize + emit + absorb + drain
//! cycle on both paths over the same deterministic corpus, so the
//! measured ratio is the same speedup `bench_report` records in
//! `BENCH_baseline.json`'s `map` rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use supmr_bench::map_path::{run_scalar, run_swar, MapWorkload};

fn bench_map_path(c: &mut Criterion) {
    for workload in [MapWorkload::wordcount(), MapWorkload::wordcount_ci()] {
        let data = workload.data();
        let mut group = c.benchmark_group(format!("map_path/{}", workload.name));
        group.throughput(Throughput::Bytes(workload.bytes as u64));
        group.bench_function("scalar_string_baseline", |b| {
            b.iter(|| run_scalar(black_box(&workload), black_box(&data)));
        });
        group.bench_function("swar_zero_copy", |b| {
            b.iter(|| run_swar(black_box(&workload), black_box(&data)));
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_map_path
}
criterion_main!(benches);
