//! Criterion bench: chunking machinery costs — boundary adjustment,
//! chunk streaming, and split computation. These are the per-round
//! overheads that make very small ingest chunks counter-productive
//! (§III-A2), so they deserve their own numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use supmr::chunk::{Chunker, InterFileChunker, IntraFileChunker};
use supmr::split::split_ranges;
use supmr_storage::{MemFileSet, MemSource, RecordFormat};
use supmr_workloads::{small_files_corpus, TeraGen, TextGen, TextGenConfig};

fn bench_inter_chunking(c: &mut Criterion) {
    let data = TextGen::new(TextGenConfig::default()).generate_bytes(3, 8 * 1024 * 1024);
    let mut group = c.benchmark_group("inter_file_chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for chunk_kb in [64usize, 512, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{chunk_kb}KiB")),
            &chunk_kb,
            |b, &chunk_kb| {
                b.iter(|| {
                    let mut chunker = InterFileChunker::new(
                        MemSource::from(black_box(data.clone())),
                        (chunk_kb * 1024) as u64,
                        RecordFormat::Newline,
                    );
                    let mut chunks = 0usize;
                    while let Some(ch) = chunker.next_chunk().unwrap() {
                        chunks += ch.len();
                    }
                    chunks
                });
            },
        );
    }
    group.finish();
}

fn bench_crlf_boundary_adjustment(c: &mut Criterion) {
    let data = TeraGen::with_total_bytes(5, 4 * 1024 * 1024).generate_all();
    let mut group = c.benchmark_group("crlf_chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("teragen_4MiB_into_128KiB", |b| {
        b.iter(|| {
            let mut chunker = InterFileChunker::new(
                MemSource::from(black_box(data.clone())),
                128 * 1024,
                RecordFormat::CrLf,
            );
            let mut n = 0;
            while let Some(ch) = chunker.next_chunk().unwrap() {
                n += ch.len();
            }
            n
        });
    });
    group.finish();
}

fn bench_intra_chunking(c: &mut Criterion) {
    let files = small_files_corpus(9, 128, 16 * 1024);
    let mut group = c.benchmark_group("intra_file_chunking");
    group.throughput(Throughput::Bytes(files.iter().map(|f| f.len() as u64).sum()));
    for per_chunk in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{per_chunk}_files")),
            &per_chunk,
            |b, &per_chunk| {
                b.iter(|| {
                    let mut chunker =
                        IntraFileChunker::new(MemFileSet::new(black_box(files.clone())), per_chunk);
                    let mut n = 0;
                    while let Some(ch) = chunker.next_chunk().unwrap() {
                        n += ch.len();
                    }
                    n
                });
            },
        );
    }
    group.finish();
}

fn bench_split_computation(c: &mut Criterion) {
    let data = TextGen::new(TextGenConfig::default()).generate_bytes(1, 4 * 1024 * 1024);
    let mut group = c.benchmark_group("split_ranges");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("newline_64KiB_splits", |b| {
        b.iter(|| split_ranges(black_box(&data), 64 * 1024, RecordFormat::Newline));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inter_chunking, bench_crlf_boundary_adjustment, bench_intra_chunking, bench_split_computation
}
criterion_main!(benches);
