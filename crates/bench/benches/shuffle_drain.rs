//! Criterion bench: the rebuilt shuffle path vs the per-key-lock
//! baseline it replaced.
//!
//! Two workload shapes (see `supmr_bench::shuffle`): word-count-shaped
//! (hot key universe, absorb-heavy, contended shard locks) and
//! sort-shaped (all keys unique, shard maps only grow). Each runs the
//! full emit + absorb + drain cycle on both paths, so the measured
//! ratio is the same speedup `bench_report` records in
//! `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use supmr_bench::shuffle::{run_baseline, run_sharded, ShuffleWorkload};

fn bench_shuffle(c: &mut Criterion) {
    for workload in [ShuffleWorkload::wordcount(), ShuffleWorkload::sort()] {
        let mut group = c.benchmark_group(format!("shuffle_drain/{}", workload.name));
        group.throughput(Throughput::Elements(workload.total_pairs()));
        group.bench_function("per_key_lock_baseline", |b| {
            b.iter(|| run_baseline(black_box(&workload)));
        });
        group.bench_function("sharded_batched", |b| {
            b.iter(|| run_sharded(black_box(&workload)));
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shuffle
}
criterion_main!(benches);
