//! Criterion bench: every paper experiment as a benchmark target, so
//! `cargo bench` alone regenerates the full evaluation (Table II and
//! Figs. 1, 3, 5, 6, 7 at paper scale via the simulator, plus scaled
//! real runs of the two headline configurations).
//!
//! The per-target console output of the dedicated binaries
//! (`cargo run -p supmr-bench --bin table2` etc.) carries the actual
//! tables and charts; this harness tracks that the regeneration stays
//! cheap and deterministic.

use criterion::{criterion_group, criterion_main, Criterion};
use supmr::runtime::MergeMode;
use supmr_bench::RealScale;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};

fn bench_sim_experiments(c: &mut Criterion) {
    let wc = AppProfile::word_count_155gb();
    let sort = AppProfile::sort_60gb();
    let hdfs = AppProfile::word_count_30gb_hdfs();
    let wc_machine = MachineSpec::paper_testbed(wc.disk_bandwidth);
    let sort_machine = MachineSpec::paper_testbed(sort.disk_bandwidth);
    let hdfs_machine = MachineSpec::paper_testbed_hdfs();

    let mut group = c.benchmark_group("paper_scale_sim");
    group.sample_size(10);
    group.bench_function("fig1_sort_original", |b| {
        b.iter(|| simulate(JobModel::Original, &sort, &sort_machine, MachineSpec::DISK));
    });
    group.bench_function("fig3_sort_openmp", |b| {
        b.iter(|| simulate(JobModel::OpenMp, &sort, &sort_machine, MachineSpec::DISK));
    });
    group.bench_function("fig5b_wc_1gb_chunks", |b| {
        b.iter(|| {
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
                &wc,
                &wc_machine,
                MachineSpec::DISK,
            )
        });
    });
    group.bench_function("fig6_sort_supmr", |b| {
        b.iter(|| {
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
                &sort,
                &sort_machine,
                MachineSpec::DISK,
            )
        });
    });
    group.bench_function("fig7_hdfs_supmr", |b| {
        b.iter(|| {
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
                &hdfs,
                &hdfs_machine,
                MachineSpec::NET,
            )
        });
    });
    group.finish();
}

fn bench_real_headline_configs(c: &mut Criterion) {
    let scale = RealScale {
        wordcount_bytes: 2 * 1024 * 1024,
        sort_bytes: 1024 * 1024,
        disk_rate: 16.0 * 1024.0 * 1024.0,
        workers: 2,
    };
    let wc_data = scale.wordcount_data();
    let sort_data = scale.sort_data();

    let mut group = c.benchmark_group("real_scaled");
    group.sample_size(10);
    group.bench_function("table2_wc_pipeline", |b| {
        b.iter(|| scale.run_wordcount(wc_data.clone(), Some(256 * 1024)));
    });
    group.bench_function("table2_sort_supmr", |b| {
        b.iter(|| scale.run_sort(sort_data.clone(), Some(256 * 1024), MergeMode::PWay { ways: 2 }));
    });
    group.bench_function("table2_sort_baseline", |b| {
        b.iter(|| scale.run_sort(sort_data.clone(), None, MergeMode::PairwiseRounds));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_experiments, bench_real_headline_configs
}
criterion_main!(benches);
