//! Criterion bench: the merge-phase comparison at algorithm level.
//!
//! Measures the paper's §IV claim directly: single-pass p-way merging vs
//! iterative 2-way rounds, across run counts (fan-in) and data sizes.
//! The pairwise baseline's cost grows with log₂(runs) extra passes over
//! the data; the loser-tree merge pays log₂(runs) only in comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use supmr_merge::{
    kway_merge, pairwise_merge_rounds, parallel_kway_merge, parallel_sort, MergeBackend,
};

fn sorted_runs(k: usize, total: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut run: Vec<u64> = (0..total / k).map(|_| rng.gen()).collect();
            run.sort_unstable();
            run
        })
        .collect()
}

fn bench_merge_fanin(c: &mut Criterion) {
    let total = 200_000;
    let mut group = c.benchmark_group("merge_fanin");
    group.throughput(Throughput::Elements(total as u64));
    for k in [4usize, 16, 64, 256] {
        let runs = sorted_runs(k, total, 7);
        group.bench_with_input(BenchmarkId::new("pairwise_rounds", k), &runs, |b, runs| {
            b.iter(|| pairwise_merge_rounds(black_box(runs.clone()), false));
        });
        group.bench_with_input(BenchmarkId::new("pway_loser_tree", k), &runs, |b, runs| {
            b.iter(|| kway_merge(black_box(runs.clone())));
        });
        group.bench_with_input(BenchmarkId::new("pway_parallel", k), &runs, |b, runs| {
            b.iter(|| parallel_kway_merge(black_box(runs.clone()), 4));
        });
    }
    group.finish();
}

fn bench_sort_backends(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let data: Vec<u64> = (0..400_000).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("parallel_sort_backend");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("pairwise_rounds", |b| {
        b.iter(|| parallel_sort(black_box(data.clone()), 32, MergeBackend::PairwiseRounds));
    });
    group.bench_function("pway", |b| {
        b.iter(|| parallel_sort(black_box(data.clone()), 32, MergeBackend::PWay { ways: 4 }));
    });
    group.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut d = black_box(data.clone());
            d.sort_unstable();
            d
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_merge_fanin, bench_sort_backends
}
criterion_main!(benches);
