//! Criterion bench: real ingest-chunk-pipeline vs original runtime on a
//! bandwidth-throttled source — the mechanism of Table II's word count
//! rows, scaled to seconds. The pipeline should approach
//! `max(ingest, map)` while the baseline pays `ingest + map`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use supmr_bench::RealScale;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};

fn bench_real_pipeline(c: &mut Criterion) {
    // Small + fast so criterion can sample: 2MB at 16MB/s ≈ 0.13s/run.
    let scale = RealScale {
        wordcount_bytes: 2 * 1024 * 1024,
        sort_bytes: 0,
        disk_rate: 16.0 * 1024.0 * 1024.0,
        workers: 2,
    };
    let data = scale.wordcount_data();
    let mut group = c.benchmark_group("real_wordcount_throttled");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("original", |b| {
        b.iter(|| scale.run_wordcount(data.clone(), None));
    });
    group.bench_function("pipeline_256k_chunks", |b| {
        b.iter(|| scale.run_wordcount(data.clone(), Some(256 * 1024)));
    });
    group.finish();
}

fn bench_simulated_paper_scale(c: &mut Criterion) {
    // The simulator itself is also benchmarked: full paper-scale Table II
    // reproductions complete in milliseconds, which is what makes the
    // chunk-size sweeps cheap.
    let profile = AppProfile::word_count_155gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let mut group = c.benchmark_group("simulator");
    group.bench_function("wordcount_155gb_original", |b| {
        b.iter(|| simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK));
    });
    group.bench_function("wordcount_155gb_supmr_1gb", |b| {
        b.iter(|| {
            simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
                &profile,
                &machine,
                MachineSpec::DISK,
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_real_pipeline, bench_simulated_paper_scale
}
criterion_main!(benches);
