//! Criterion bench: per-wave thread spawn/join vs persistent-pool
//! dispatch — the overhead the paper's pipeline pays once per ingest
//! chunk ("create thread / destroy thread" each round, §III-A2). Tasks
//! are deliberately trivial so the measurement isolates provisioning
//! cost rather than map work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use supmr::pool::{run_wave, WorkerPool};

const TASKS_PER_WAVE: usize = 64;

fn trivial_task(i: usize, x: u64) -> u64 {
    black_box(x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left((i % 64) as u32))
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch");
    for workers in [1usize, 2, 4, 8] {
        let tasks: Vec<u64> = (0..TASKS_PER_WAVE as u64).collect();
        group.bench_with_input(BenchmarkId::new("wave_spawn_join", workers), &workers, |b, &w| {
            b.iter(|| {
                run_wave(w, tasks.clone(), |i, x| {
                    black_box(trivial_task(i, x));
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("persistent_pool", workers), &workers, |b, &w| {
            let pool = WorkerPool::new(w);
            b.iter(|| {
                pool.run(tasks.clone(), |i, x| {
                    black_box(trivial_task(i, x));
                })
            });
        });
    }
    group.finish();
}

fn bench_many_rounds(c: &mut Criterion) {
    // The pipeline shape: many small waves back to back (one per ingest
    // chunk). This is where spawn/join overhead compounds.
    const ROUNDS: usize = 16;
    let mut group = c.benchmark_group("pool_dispatch_rounds");
    group.sample_size(10);
    for workers in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("wave_spawn_join", workers), &workers, |b, &w| {
            b.iter(|| {
                for _ in 0..ROUNDS {
                    run_wave(w, (0..w as u64).collect(), |i, x| {
                        black_box(trivial_task(i, x));
                    });
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("persistent_pool", workers), &workers, |b, &w| {
            let pool = WorkerPool::new(w);
            b.iter(|| {
                for _ in 0..ROUNDS {
                    pool.run((0..w as u64).collect(), |i, x| {
                        black_box(trivial_task(i, x));
                    });
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dispatch, bench_many_rounds
}
criterion_main!(benches);
