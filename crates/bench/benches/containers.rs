//! Criterion bench: intermediate-container comparison (§V-B).
//!
//! Phoenix++'s container choice is workload-dependent: the hash
//! container wins when combining collapses the data (word count); the
//! unlocked container wins for unique keys (sort) because it skips the
//! pointless key lookups; the array container wins for small dense key
//! universes (histogram). This bench quantifies those trade-offs by
//! running each container against both key distributions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use supmr::api::Emit;
use supmr::combiner::{Identity, Sum};
use supmr::container::{ArrayContainer, Container, HashContainer, UnlockedContainer};

const PAIRS: usize = 100_000;

/// Skewed keys: Zipf-flavoured, many repeats (word count shape).
fn skewed_keys() -> Vec<usize> {
    (0..PAIRS).map(|i| (i * i + i / 3) % 512).collect()
}

/// Unique keys (sort shape).
fn unique_keys() -> Vec<usize> {
    (0..PAIRS).collect()
}

fn insert_hash(keys: &[usize]) -> usize {
    let c: HashContainer<usize, u64, Sum> = HashContainer::new();
    let mut local = c.local();
    for &k in keys {
        local.emit(k, 1);
    }
    c.absorb(local);
    c.distinct_keys()
}

fn insert_unlocked(keys: &[usize]) -> usize {
    let c: UnlockedContainer<usize, u64> = UnlockedContainer::new();
    let mut local = <UnlockedContainer<usize, u64> as Container<usize, u64, Identity>>::local(&c);
    for &k in keys {
        local.emit(k, 1);
    }
    <UnlockedContainer<usize, u64> as Container<usize, u64, Identity>>::absorb(&c, local);
    c.run_count()
}

fn insert_array(keys: &[usize], universe: usize) -> usize {
    let c: ArrayContainer<u64, Sum> = ArrayContainer::new(universe);
    let mut local = c.local();
    for &k in keys {
        local.emit(k, 1);
    }
    c.absorb(local);
    c.distinct_keys()
}

fn bench_containers(c: &mut Criterion) {
    let skewed = skewed_keys();
    let unique = unique_keys();

    let mut group = c.benchmark_group("container_insert");
    group.throughput(Throughput::Elements(PAIRS as u64));
    group.bench_function("hash/skewed_keys", |b| {
        b.iter(|| insert_hash(black_box(&skewed)));
    });
    group.bench_function("hash/unique_keys", |b| {
        b.iter(|| insert_hash(black_box(&unique)));
    });
    group.bench_function("unlocked/unique_keys", |b| {
        b.iter(|| insert_unlocked(black_box(&unique)));
    });
    group.bench_function("array/skewed_keys", |b| {
        b.iter(|| insert_array(black_box(&skewed), 512));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_containers
}
criterion_main!(benches);
