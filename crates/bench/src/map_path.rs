//! Map-path micro-harness: the SWAR/zero-copy word-count map against
//! the scalar byte-at-a-time path it replaced.
//!
//! The baseline reimplements the pre-SWAR map exactly as it used to
//! work — a per-byte word-class test driving the tokenizer and one
//! `String::from_utf8_lossy(..).into_owned()` heap allocation per token
//! emitted into the container. The current path tokenizes eight bytes
//! at a time (`supmr_storage::scan`), emits every token as a borrowed
//! slice ([`Emit::emit_bytes`]), and keys the container with
//! [`CompactKey`], so a repeated word allocates nothing after its first
//! insert. [`measure`] times both over identical corpora and reports
//! input bytes/second; the rows land in `BENCH_baseline.json` (see
//! [`crate::report`]) so the speedup is a tracked regression surface,
//! and `benches/map_path.rs` covers the same comparison under criterion.
//!
//! Both runs drain their containers and the results are asserted equal
//! key-for-key and count-for-count, so the harness doubles as an
//! end-to-end equivalence check of the rewritten map path.

use std::time::Instant;
use supmr::api::{Emit, MapReduce};
use supmr::combiner::Sum;
use supmr::container::{Container, HashContainer};
use supmr::CompactKey;
use supmr_apps::WordCount;
use supmr_workloads::{TextGen, TextGenConfig};

/// One map-path workload shape: a deterministic text corpus pushed
/// through both tokenizer/emit paths split by split.
#[derive(Debug, Clone)]
pub struct MapWorkload {
    /// Row label (`"wordcount"` / `"wordcount_ci"`).
    pub name: &'static str,
    /// Corpus size in bytes.
    pub bytes: usize,
    /// Map-task split size in bytes.
    pub split_bytes: usize,
    /// Fold tokens to lowercase during tokenization.
    pub case_insensitive: bool,
}

impl MapWorkload {
    /// The canonical word-count shape: case-sensitive counting over the
    /// generator's Zipf-flavored vocabulary.
    pub fn wordcount() -> MapWorkload {
        MapWorkload {
            name: "wordcount",
            bytes: 8 * 1024 * 1024,
            split_bytes: 256 * 1024,
            case_insensitive: false,
        }
    }

    /// The case-folding variant: exercises the fold-during-tokenization
    /// scratch-buffer path.
    pub fn wordcount_ci() -> MapWorkload {
        MapWorkload { name: "wordcount_ci", case_insensitive: true, ..MapWorkload::wordcount() }
    }

    /// Shrink to a sub-second size for tests and `--quick` reports.
    pub fn quick(mut self) -> MapWorkload {
        self.bytes = 256 * 1024;
        self.split_bytes = 64 * 1024;
        self
    }

    /// Deterministic corpus for this shape.
    pub fn data(&self) -> Vec<u8> {
        TextGen::new(TextGenConfig::default()).generate_bytes(42, self.bytes)
    }
}

/// The pre-SWAR word-count map, preserved as a measured baseline:
/// byte-at-a-time word-class scanning and one owned `String` per token.
fn scalar_map(split: &[u8], case_insensitive: bool, emit: &mut dyn Emit<String, u64>) {
    fn is_word_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'\''
    }
    fn emit_word(word: &[u8], case_insensitive: bool, emit: &mut dyn Emit<String, u64>) {
        let mut w = String::from_utf8_lossy(word).into_owned();
        if case_insensitive {
            w.make_ascii_lowercase();
        }
        emit.emit(w, 1);
    }
    let mut start = None;
    for (i, &b) in split.iter().enumerate() {
        if is_word_byte(b) {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            emit_word(&split[s..i], case_insensitive, emit);
        }
    }
    if let Some(s) = start {
        emit_word(&split[s..], case_insensitive, emit);
    }
}

/// Drained `(word bytes, count)` pairs, sorted — the comparable result
/// of either path.
type Counts = Vec<(Vec<u8>, u64)>;

/// Run `w` through the scalar baseline; returns input bytes/second and
/// the drained counts.
pub fn run_scalar(w: &MapWorkload, data: &[u8]) -> (f64, Counts) {
    let start = Instant::now();
    let c: HashContainer<String, u64, Sum> = HashContainer::new();
    for split in data.chunks(w.split_bytes) {
        let mut local = c.local();
        scalar_map(split, w.case_insensitive, &mut local);
        c.absorb(local);
    }
    let mut out: Counts =
        c.into_partitions(1).into_iter().flatten().map(|(k, v)| (k.into_bytes(), v)).collect();
    let elapsed = start.elapsed().as_secs_f64();
    out.sort();
    (data.len() as f64 / elapsed, out)
}

/// Run `w` through the SWAR/zero-copy path ([`WordCount::map`]);
/// returns input bytes/second and the drained counts.
pub fn run_swar(w: &MapWorkload, data: &[u8]) -> (f64, Counts) {
    let job = if w.case_insensitive { WordCount::case_insensitive() } else { WordCount::new() };
    let start = Instant::now();
    let c: HashContainer<CompactKey, u64, Sum> = job.make_container();
    for split in data.chunks(w.split_bytes) {
        let mut local = c.local();
        job.map(split, &mut local);
        c.absorb(local);
    }
    let mut out: Counts = c
        .into_partitions(1)
        .into_iter()
        .flatten()
        .map(|(k, v)| (k.as_bytes().to_vec(), v))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    out.sort();
    (data.len() as f64 / elapsed, out)
}

/// One measured comparison row, as written into the bench report's
/// `map` section.
#[derive(Debug, Clone)]
pub struct MapRow {
    /// Workload label.
    pub workload: &'static str,
    /// Input bytes pushed through each path.
    pub bytes: u64,
    /// Scalar-baseline throughput, input bytes/second.
    pub scalar_bytes_per_s: f64,
    /// SWAR/zero-copy throughput, input bytes/second.
    pub swar_bytes_per_s: f64,
}

impl MapRow {
    /// SWAR over scalar throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.swar_bytes_per_s / self.scalar_bytes_per_s
    }
}

/// Measure both paths over both workload shapes, asserting their
/// outputs identical. Each path runs best-of-3 (1 rep under `quick`) so
/// a stray scheduling hiccup does not land in the committed baseline.
pub fn measure(quick: bool) -> Vec<MapRow> {
    let workloads = [MapWorkload::wordcount(), MapWorkload::wordcount_ci()];
    workloads
        .into_iter()
        .map(|w| {
            let w = if quick { w.quick() } else { w };
            let data = w.data();
            let reps = if quick { 1 } else { 3 };
            let mut scalar_best = 0.0f64;
            let mut swar_best = 0.0f64;
            for _ in 0..reps {
                let (scalar_rate, scalar_counts) = run_scalar(&w, &data);
                let (swar_rate, swar_counts) = run_swar(&w, &data);
                assert_eq!(
                    scalar_counts, swar_counts,
                    "{}: SWAR map path diverged from the scalar reference",
                    w.name
                );
                scalar_best = scalar_best.max(scalar_rate);
                swar_best = swar_best.max(swar_rate);
            }
            MapRow {
                workload: w.name,
                bytes: w.bytes as u64,
                scalar_bytes_per_s: scalar_best,
                swar_bytes_per_s: swar_best,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_on_counts() {
        for w in [MapWorkload::wordcount().quick(), MapWorkload::wordcount_ci().quick()] {
            let data = w.data();
            let (scalar_rate, scalar_counts) = run_scalar(&w, &data);
            let (swar_rate, swar_counts) = run_swar(&w, &data);
            assert!(scalar_rate > 0.0 && swar_rate > 0.0);
            assert!(!scalar_counts.is_empty());
            assert_eq!(scalar_counts, swar_counts, "{}", w.name);
        }
    }

    #[test]
    fn measure_produces_both_rows() {
        let rows = measure(true);
        let names: Vec<&str> = rows.iter().map(|r| r.workload).collect();
        assert_eq!(names, ["wordcount", "wordcount_ci"]);
        for r in &rows {
            assert!(r.bytes > 0);
            assert!(r.scalar_bytes_per_s > 0.0);
            assert!(r.swar_bytes_per_s > 0.0);
            assert!(r.speedup() > 0.0);
        }
    }
}
