//! The adaptive-governor throttle-matrix ablation behind the bench
//! report's `"adaptive"` rows.
//!
//! Each cell of the matrix runs the canonical word count under one
//! storage throttle with several hand-tuned static configurations plus
//! the feedback governor (`--adaptive`), and records how close the
//! governor lands to the best static choice ([`ratio_to_best`]) and how
//! much it beats the worst one ([`worst_over_adaptive`]). The point of
//! the matrix: no single static config wins every cell. `mono` — one
//! chunk spanning the whole input, i.e. the paper's non-overlapped
//! baseline — is harmless when ingest is either free or utterly
//! dominant, but pays `ingest + map` instead of `max(ingest, map)` in
//! the `matched` cell where the two rates cross; `starved` caps wave
//! width at one worker. The governor, which retunes from the live
//! diagnosis, stays near the best choice everywhere.
//!
//! [`ratio_to_best`]: AblationCell::ratio_to_best
//! [`worst_over_adaptive`]: AblationCell::worst_over_adaptive

use crate::RealScale;
use std::time::Duration;
use supmr::runtime::{GovernorConfig, Input, Job, JobConfig, MergeMode};
use supmr::Chunking;
use supmr_apps::WordCount;
use supmr_storage::{MemSource, ThrottledSource, TokenBucket};

/// One hand-tuned static run inside a cell.
#[derive(Debug, Clone)]
pub struct StaticRun {
    /// Variant name (`lean`, `deep`, `starved`, `mono`).
    pub config: &'static str,
    /// Measured wall time, microseconds.
    pub wall_us: u64,
}

/// One throttle cell: every static variant plus the adaptive run.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// Cell name (`choked`, `rated`, `matched`, `open`).
    pub cell: &'static str,
    /// The cell's storage bandwidth cap, bytes/second.
    pub disk_rate: f64,
    /// The hand-tuned static runs.
    pub statics: Vec<StaticRun>,
    /// The governor run's wall time, microseconds.
    pub adaptive_wall_us: u64,
    /// Governor decisions taken during the adaptive run.
    pub governor_actions: u64,
}

impl AblationCell {
    /// Fastest static wall time in this cell.
    pub fn best_static_us(&self) -> u64 {
        self.statics.iter().map(|s| s.wall_us).min().unwrap_or(0).max(1)
    }

    /// Slowest static wall time in this cell.
    pub fn worst_static_us(&self) -> u64 {
        self.statics.iter().map(|s| s.wall_us).max().unwrap_or(0).max(1)
    }

    /// Adaptive wall over the best static wall (1.0 = matched the best
    /// hand-tuned config; the acceptance target is ≤ 1.05 per cell).
    pub fn ratio_to_best(&self) -> f64 {
        self.adaptive_wall_us.max(1) as f64 / self.best_static_us() as f64
    }

    /// Worst static wall over the adaptive wall (the headline: how
    /// badly a mistuned static config loses to the governor).
    pub fn worst_over_adaptive(&self) -> f64 {
        self.worst_static_us() as f64 / self.adaptive_wall_us.max(1) as f64
    }
}

/// The hand-tuned static variants:
/// `(name, workers, prefetch_depth, monolithic_chunk)`.
/// `workers == 0` means "the scale's worker count"; `monolithic_chunk`
/// spans the whole input with a single ingest chunk, forfeiting the
/// ingest/map overlap entirely.
const STATIC_VARIANTS: [(&str, usize, usize, bool); 4] =
    [("lean", 0, 1, false), ("deep", 0, 4, false), ("starved", 1, 1, false), ("mono", 0, 1, true)];

fn wordcount_config(scale: &RealScale, workers: usize, prefetch: usize, mono: bool) -> JobConfig {
    let chunk = if mono {
        scale.wordcount_bytes as u64
    } else {
        (scale.wordcount_bytes as u64 / 8).max(64 * 1024)
    };
    JobConfig {
        map_workers: workers,
        reduce_workers: workers,
        split_bytes: 256 * 1024,
        prefetch_depth: prefetch,
        chunking: Chunking::Inter { chunk_bytes: chunk },
        merge: MergeMode::Unsorted,
        ..JobConfig::default()
    }
}

fn throttled(data: Vec<u8>, rate: f64) -> Input {
    // The 256 KiB burst matches `RealScale::throttled_input`; smaller
    // bursts get so choppy at high rates that scheduler hiccups read
    // as ingest stalls and draw spurious governor actions.
    Input::stream(ThrottledSource::with_bucket(
        MemSource::from(data),
        TokenBucket::with_burst(rate, 256.0 * 1024.0),
    ))
}

/// Run one configuration `repeats` times and return the best
/// `(wall_us, governor_actions)` by wall time. Single-shot walls on a
/// busy host swing ±15%, and `best_static_us` takes a min across
/// several near-tied variants — which is biased low against any
/// single-sample run — so every config gets the same best-of-N
/// treatment.
fn run_best_of(
    data: &[u8],
    rate: f64,
    config: &JobConfig,
    adaptive: bool,
    quick: bool,
    repeats: u32,
) -> (u64, u64) {
    (0..repeats.max(1))
        .map(|_| run_once(data.to_vec(), rate, config.clone(), adaptive, quick))
        .min_by_key(|&(wall, _)| wall)
        .expect("at least one repeat")
}

/// Run one configuration and return `(wall_us, governor_actions)`.
fn run_once(
    data: Vec<u8>,
    rate: f64,
    mut config: JobConfig,
    adaptive: bool,
    quick: bool,
) -> (u64, u64) {
    // Every run gets a live registry — the governor needs one to
    // sample, and leaving the statics unmetered would bill the cost of
    // metrics recording to the governor column.
    config.metrics = Some(supmr::Registry::new());
    if adaptive {
        // 5 ms keeps sub-second CI cells ticking; 10 ms at full scale
        // keeps the convergence transient (hysteresis + per-knob
        // cooldowns between steps) small next to even the fastest
        // (~0.35 s) cell, at ~1.5% sampling cost. Single-tick
        // hysteresis and cooldown suit the matrix: every cell holds
        // one steady throttle, so the flap protection the defaults
        // buy under shifting load only stretches the convergence
        // transient here (the defaults are tuned for multi-second
        // production jobs; these cells finish in 0.3-4 s).
        config.governor = Some(GovernorConfig {
            interval: Duration::from_millis(if quick { 5 } else { 10 }),
            hysteresis: 1,
            cooldown_ticks: 1,
        });
    }
    let result = Job::new(WordCount::new())
        .config(config)
        .run(throttled(data, rate))
        .expect("ablation word count run failed");
    let wall = result.report.timings.total().as_micros().min(u64::MAX as u128) as u64;
    let actions =
        result.report.governor.as_ref().map_or(0, |g| g.actions.len() as u64 + g.dropped_actions);
    (wall.max(1), actions)
}

/// Execute the full throttle matrix at `scale`. `quick` shortens the
/// governor's sampling interval so sub-second CI runs still tick.
pub fn measure(scale: &RealScale, quick: bool) -> Vec<AblationCell> {
    let data = scale.wordcount_data();
    // `matched` sits near the single-core map bandwidth so ingest and
    // map take comparable time — the regime where forfeiting the
    // overlap (the `mono` variant) hurts the most.
    let cells: [(&'static str, f64); 4] = [
        ("choked", scale.disk_rate / 4.0),
        ("rated", scale.disk_rate),
        ("matched", scale.disk_rate * 3.5),
        ("open", scale.disk_rate * 64.0),
    ];
    cells
        .iter()
        .map(|&(cell, rate)| {
            // Throttled cells are paced by the token bucket and repeat
            // within ±1%; the fast cells are scheduler-noisy (±15%) and
            // need a deeper best-of-N on both sides of the comparison.
            let repeats = if quick {
                1
            } else if rate > scale.disk_rate {
                3
            } else {
                2
            };
            let statics = STATIC_VARIANTS
                .iter()
                .map(|&(config, workers, prefetch, mono)| {
                    let workers = if workers == 0 { scale.workers } else { workers };
                    let job = wordcount_config(scale, workers, prefetch, mono);
                    let (wall_us, _) = run_best_of(&data, rate, &job, false, quick, repeats);
                    StaticRun { config, wall_us }
                })
                .collect();
            let job = wordcount_config(scale, scale.workers, 1, false);
            let (adaptive_wall_us, governor_actions) =
                run_best_of(&data, rate, &job, true, quick, repeats);
            AblationCell { cell, disk_rate: rate, statics, adaptive_wall_us, governor_actions }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_runs_every_cell_and_variant() {
        let cells = measure(&RealScale::tiny(), true);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert_eq!(cell.statics.len(), STATIC_VARIANTS.len(), "{}", cell.cell);
            assert!(cell.adaptive_wall_us > 0);
            assert!(cell.ratio_to_best() > 0.0);
            assert!(cell.worst_over_adaptive() > 0.0);
        }
        // The choked cell is ingest-bound long enough for the governor
        // to classify and actuate at least once.
        let choked = &cells[0];
        assert!(
            choked.governor_actions >= 1,
            "governor took no action in the choked cell: {choked:?}"
        );
    }
}
