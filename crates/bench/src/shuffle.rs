//! Shuffle-path micro-harness: the sharded hash container against the
//! per-key-lock design it replaced.
//!
//! The baseline reimplements the pre-overhaul shuffle exactly as it
//! used to work — SipHash for both the local map and shard selection
//! (every key hashed twice more on absorb), shard chosen by `hash % 64`,
//! and one lock acquisition per key moved. The current path hashes each
//! key once at emit, picks the shard from the hash's high bits, and
//! takes each shard lock once per absorbed batch. [`measure`] times
//! both over identical workloads and reports pairs-per-second; the rows
//! land in `BENCH_baseline.json` (see [`crate::report`]) so the speedup
//! is a tracked regression surface, and `benches/shuffle_drain.rs`
//! covers the same comparison under criterion.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::Mutex;
use std::time::Instant;
use supmr::api::Emit;
use supmr::combiner::Sum;
use supmr::container::{Container, HashContainer};

/// Shard count of the old design (and, coincidentally, the new one).
const BASELINE_SHARDS: usize = 64;

/// The pre-overhaul intermediate table, preserved as a measured
/// baseline: a `% 64`-sharded map that re-hashes every key with SipHash
/// twice per absorb (once for shard choice, once inside the shard map)
/// and locks the destination shard once per key.
struct PerKeyLockTable {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    state: RandomState,
}

impl PerKeyLockTable {
    fn new() -> PerKeyLockTable {
        PerKeyLockTable {
            shards: (0..BASELINE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            state: RandomState::new(),
        }
    }

    fn absorb(&self, local: HashMap<u64, u64>) {
        for (k, v) in local {
            let shard = (self.state.hash_one(k) % BASELINE_SHARDS as u64) as usize;
            let mut map = self.shards[shard].lock().expect("baseline shard lock");
            *map.entry(k).or_insert(0) += v;
        }
    }

    fn drain(self) -> Vec<Vec<(u64, u64)>> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().expect("baseline shard lock").into_iter().collect())
            .filter(|v: &Vec<_>| !v.is_empty())
            .collect()
    }
}

/// One shuffle workload shape: how many mapper threads emit how many
/// batches of how many pairs, over which key distribution.
#[derive(Debug, Clone)]
pub struct ShuffleWorkload {
    /// Row label (`"wordcount"` / `"sort"`).
    pub name: &'static str,
    /// Concurrent mapper threads.
    pub threads: usize,
    /// Emit-then-absorb rounds per thread.
    pub batches_per_thread: usize,
    /// Pairs emitted per round.
    pub pairs_per_batch: usize,
    /// Key universe size; `0` means every key is globally unique.
    pub distinct_keys: u64,
}

impl ShuffleWorkload {
    /// Word-count shape: a hot vocabulary hit over and over, so absorb
    /// moves a combined map of hot keys every round and shard locks are
    /// contended.
    pub fn wordcount() -> ShuffleWorkload {
        ShuffleWorkload {
            name: "wordcount",
            threads: 8,
            batches_per_thread: 32,
            pairs_per_batch: 4096,
            distinct_keys: 1024,
        }
    }

    /// Sort shape: every key unique, no combining anywhere — absorb
    /// moves every emitted pair and the shard maps only grow.
    pub fn sort() -> ShuffleWorkload {
        ShuffleWorkload {
            name: "sort",
            threads: 8,
            batches_per_thread: 32,
            pairs_per_batch: 4096,
            distinct_keys: 0,
        }
    }

    /// Shrink to a sub-second size for tests and `--quick` reports.
    pub fn quick(mut self) -> ShuffleWorkload {
        self.threads = 2;
        self.batches_per_thread = 4;
        self.pairs_per_batch = 512;
        if self.distinct_keys != 0 {
            self.distinct_keys = 128;
        }
        self
    }

    /// Total pairs emitted across all threads and batches.
    pub fn total_pairs(&self) -> u64 {
        (self.threads * self.batches_per_thread * self.pairs_per_batch) as u64
    }

    /// Deterministic key for pair `i` of `(thread, batch)`.
    fn key(&self, thread: usize, batch: usize, i: usize) -> u64 {
        let seq = ((batch * self.pairs_per_batch + i) as u64) << 8 | thread as u64;
        match self.distinct_keys {
            0 => seq,
            d => {
                // Cheap mix so hot keys are not emit-ordered.
                let x = seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                (x ^ (x >> 32)) % d
            }
        }
    }

    /// Check a drained key count: the unique shape must preserve every
    /// pair; the hot shape lands within its universe (a handful of
    /// buckets may go unhit).
    fn check_drained(&self, drained: u64) {
        match self.distinct_keys {
            0 => assert_eq!(drained, self.total_pairs(), "unique-key shuffle lost pairs"),
            d => assert!(
                drained > 0 && drained <= d.min(self.total_pairs()),
                "hot-key shuffle drained {drained} of {d}"
            ),
        }
    }
}

/// Run `w` through the per-key-lock baseline; returns pairs/second over
/// the full emit + absorb + drain cycle. Emit is timed on purpose: the
/// old design hashes at emit too (SipHash in the local map), and
/// replacing that with one reusable FxHash per key is part of the
/// shuffle path under comparison.
pub fn run_baseline(w: &ShuffleWorkload) -> f64 {
    let start = Instant::now();
    let table = PerKeyLockTable::new();
    std::thread::scope(|s| {
        for t in 0..w.threads {
            let table = &table;
            s.spawn(move || {
                for b in 0..w.batches_per_thread {
                    let mut local: HashMap<u64, u64> = HashMap::new();
                    for i in 0..w.pairs_per_batch {
                        *local.entry(w.key(t, b, i)).or_insert(0) += 1;
                    }
                    table.absorb(local);
                }
            });
        }
    });
    let drained: u64 = table.drain().iter().map(|p| p.len() as u64).sum();
    let elapsed = start.elapsed().as_secs_f64();
    w.check_drained(drained);
    w.total_pairs() as f64 / elapsed
}

/// Run `w` through the sharded [`HashContainer`]; returns pairs/second
/// over the full emit + absorb + drain cycle.
pub fn run_sharded(w: &ShuffleWorkload) -> f64 {
    let start = Instant::now();
    let c: HashContainer<u64, u64, Sum> = HashContainer::new();
    std::thread::scope(|s| {
        for t in 0..w.threads {
            let c = &c;
            s.spawn(move || {
                for b in 0..w.batches_per_thread {
                    let mut local = c.local();
                    for i in 0..w.pairs_per_batch {
                        local.emit(w.key(t, b, i), 1);
                    }
                    c.absorb(local);
                }
            });
        }
    });
    let drained: u64 = c.into_partitions(w.threads.max(1)).iter().map(|p| p.len() as u64).sum();
    let elapsed = start.elapsed().as_secs_f64();
    w.check_drained(drained);
    w.total_pairs() as f64 / elapsed
}

/// One measured comparison row, as written into the bench report's
/// `shuffle` section.
#[derive(Debug, Clone)]
pub struct ShuffleRow {
    /// Workload label.
    pub workload: &'static str,
    /// Pairs pushed through each path.
    pub pairs: u64,
    /// Per-key-lock baseline throughput, pairs/second.
    pub baseline_pairs_per_s: f64,
    /// Sharded-container throughput, pairs/second.
    pub sharded_pairs_per_s: f64,
}

impl ShuffleRow {
    /// Sharded over baseline throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.sharded_pairs_per_s / self.baseline_pairs_per_s
    }
}

/// Measure both paths over both workload shapes. Each path runs
/// best-of-3 so a stray scheduling hiccup does not land in the
/// committed baseline.
pub fn measure(quick: bool) -> Vec<ShuffleRow> {
    let workloads = [ShuffleWorkload::wordcount(), ShuffleWorkload::sort()];
    workloads
        .into_iter()
        .map(|w| {
            let w = if quick { w.quick() } else { w };
            let reps = if quick { 1 } else { 3 };
            let best = |f: &dyn Fn(&ShuffleWorkload) -> f64| {
                (0..reps).map(|_| f(&w)).fold(0.0f64, f64::max)
            };
            ShuffleRow {
                workload: w.name,
                pairs: w.total_pairs(),
                baseline_pairs_per_s: best(&run_baseline),
                sharded_pairs_per_s: best(&run_sharded),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_on_key_counts() {
        // The asserts inside the run functions are the real check.
        for w in [ShuffleWorkload::wordcount().quick(), ShuffleWorkload::sort().quick()] {
            assert!(run_baseline(&w) > 0.0);
            assert!(run_sharded(&w) > 0.0);
        }
    }

    #[test]
    fn measure_produces_both_rows() {
        let rows = measure(true);
        let names: Vec<&str> = rows.iter().map(|r| r.workload).collect();
        assert_eq!(names, ["wordcount", "sort"]);
        for r in &rows {
            assert!(r.pairs > 0);
            assert!(r.baseline_pairs_per_s > 0.0);
            assert!(r.sharded_pairs_per_s > 0.0);
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn unique_and_hot_key_generators_behave() {
        let hot = ShuffleWorkload::wordcount().quick();
        for t in 0..hot.threads {
            for b in 0..hot.batches_per_thread {
                for i in 0..hot.pairs_per_batch {
                    assert!(hot.key(t, b, i) < hot.distinct_keys);
                }
            }
        }
        let unique = ShuffleWorkload::sort().quick();
        // Unique keys really are unique across threads and batches.
        let mut seen = std::collections::HashSet::new();
        for t in 0..unique.threads {
            for b in 0..unique.batches_per_thread {
                for i in 0..unique.pairs_per_batch {
                    assert!(seen.insert(unique.key(t, b, i)));
                }
            }
        }
    }
}
