//! Ablations of the design choices DESIGN.md calls out, on the real
//! runtime with a throttled source:
//!
//! 1. **Prefetch depth** — the paper double-buffers (depth 1, one
//!    ingest thread created/destroyed per round). Does buffering more
//!    chunks ahead help? (Prediction: no, when ingest is the
//!    bottleneck — the device is already saturated — but it smooths
//!    variance when map time fluctuates around ingest time.)
//! 2. **Adaptive vs fixed chunk size** — the paper's future-work
//!    feedback loop against the best and worst fixed sizes.
//! 3. **Merge backend × container** — p-way vs pairwise on the sort
//!    workload (work counters, since wall-clock parallel gains need
//!    more hardware contexts than this machine has).
//! 4. **Worker provisioning** — per-wave spawn/join vs one persistent
//!    pool per job, unthrottled so the provisioning overhead is not
//!    hidden behind the device.

use supmr::chunk::AdaptiveConfig;
use supmr::pool::PoolMode;
use supmr::runtime::{Input, Job, JobConfig, MergeMode};
use supmr::Chunking;
use supmr_apps::{TeraSort, WordCount};
use supmr_bench::results_dir;
use supmr_metrics::csv::CsvTable;
use supmr_storage::{MemSource, ThrottledSource, TokenBucket};
use supmr_workloads::{TeraGen, TextGen, TextGenConfig};

const DISK_RATE: f64 = 24.0 * 1024.0 * 1024.0;

fn throttled(data: Vec<u8>) -> Input {
    Input::stream(ThrottledSource::with_bucket(
        MemSource::from(data),
        TokenBucket::with_burst(DISK_RATE, 256.0 * 1024.0),
    ))
}

fn wc_config() -> JobConfig {
    JobConfig { map_workers: 4, reduce_workers: 4, split_bytes: 256 * 1024, ..JobConfig::default() }
}

fn main() {
    let corpus = TextGen::new(TextGenConfig::default()).generate_bytes(1, 16 * 1024 * 1024);
    let mut csv = CsvTable::new(&["ablation", "variant", "total_s", "chunks", "threads"]);

    // --- 1: prefetch depth ---
    println!("== Ablation 1: prefetch depth (word count, 16MB @ 24MB/s) ==");
    println!(
        "{:>8} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "depth", "total_s", "chunks", "threads", "map_wait", "ing_wait"
    );
    for depth in [1usize, 2, 4, 8] {
        let mut cfg = wc_config();
        cfg.chunking = Chunking::Inter { chunk_bytes: 1024 * 1024 };
        cfg.prefetch_depth = depth;
        let r = Job::new(WordCount::new()).config(cfg).run(throttled(corpus.clone())).unwrap();
        let total = r.report.timings.total().as_secs_f64();
        let stalls = r.report.stalls();
        println!(
            "{:>8} {:>9.2} {:>8} {:>9} {:>9.2}s {:>9.2}s",
            depth,
            total,
            r.report.stats.ingest_chunks,
            r.report.stats.threads_spawned,
            stalls.map_waiting.as_secs_f64(),
            stalls.ingest_waiting.as_secs_f64(),
        );
        csv.row(&[
            "prefetch_depth".into(),
            format!("{depth}"),
            format!("{total:.3}"),
            format!("{}", r.report.stats.ingest_chunks),
            format!("{}", r.report.stats.threads_spawned),
        ]);
    }
    println!(
        "(ingest-bound: deeper prefetch cannot beat the device — map_wait stays dominated by \
         the throttle; depth>1 saves one thread create/destroy per round)"
    );

    // --- 2: adaptive vs fixed chunk size ---
    println!("\n== Ablation 2: adaptive vs fixed chunk size (same workload) ==");
    println!("{:>12} {:>9} {:>8}", "chunking", "total_s", "chunks");
    let fixed_sizes: [(&str, u64); 3] =
        [("64KB", 64 * 1024), ("1MB", 1024 * 1024), ("8MB", 8 * 1024 * 1024)];
    for (label, chunk_bytes) in fixed_sizes {
        let mut cfg = wc_config();
        cfg.chunking = Chunking::Inter { chunk_bytes };
        let r = Job::new(WordCount::new()).config(cfg).run(throttled(corpus.clone())).unwrap();
        let total = r.report.timings.total().as_secs_f64();
        println!("{:>12} {:>9.2} {:>8}", label, total, r.report.stats.ingest_chunks);
        csv.row(&[
            "chunk_size".into(),
            label.into(),
            format!("{total:.3}"),
            format!("{}", r.report.stats.ingest_chunks),
            String::new(),
        ]);
    }
    let mut cfg = wc_config();
    cfg.chunking = Chunking::Adaptive(AdaptiveConfig {
        initial_chunk_bytes: 4 * 1024 * 1024,
        min_chunk_bytes: 64 * 1024,
        max_chunk_bytes: 8 * 1024 * 1024,
        overhead_fraction: 0.05,
    });
    let r = Job::new(WordCount::new()).config(cfg).run(throttled(corpus.clone())).unwrap();
    let total = r.report.timings.total().as_secs_f64();
    println!(
        "{:>12} {:>9.2} {:>8}  (feedback-tuned)",
        "adaptive", total, r.report.stats.ingest_chunks
    );
    csv.row(&[
        "chunk_size".into(),
        "adaptive".into(),
        format!("{total:.3}"),
        format!("{}", r.report.stats.ingest_chunks),
        String::new(),
    ]);

    // --- 3: merge backend work accounting ---
    println!("\n== Ablation 3: merge backend (sort, 4MB) ==");
    let sort_data = TeraGen::with_total_bytes(7, 4 * 1024 * 1024).generate_all();
    println!("{:>16} {:>9} {:>8} {:>14}", "backend", "merge_s", "rounds", "elements_moved");
    for (label, merge) in
        [("pairwise_rounds", MergeMode::PairwiseRounds), ("pway", MergeMode::PWay { ways: 4 })]
    {
        let mut cfg = wc_config();
        cfg.record_format = TeraSort::record_format();
        cfg.split_bytes = 64 * 1024;
        cfg.merge = merge;
        let r = Job::new(TeraSort::new()).config(cfg).run(throttled(sort_data.clone())).unwrap();
        println!(
            "{:>16} {:>9.3} {:>8} {:>14}",
            label,
            r.report.timings.phase(supmr_metrics::Phase::Merge).as_secs_f64(),
            r.report.stats.merge_rounds,
            r.report.stats.merge_elements_moved
        );
        csv.row(&[
            "merge_backend".into(),
            label.into(),
            format!("{:.3}", r.report.timings.phase(supmr_metrics::Phase::Merge).as_secs_f64()),
            format!("{}", r.report.stats.merge_rounds),
            format!("{}", r.report.stats.merge_elements_moved),
        ]);
    }

    // --- 4: worker provisioning (spawn/join vs persistent pool) ---
    println!("\n== Ablation 4: pool mode (word count, 8MB unthrottled, 128KB chunks) ==");
    println!("{:>12} {:>9} {:>8} {:>9} {:>8}", "pool", "total_s", "rounds", "spawned", "reused");
    let small_corpus = TextGen::new(TextGenConfig::default()).generate_bytes(3, 8 * 1024 * 1024);
    for pool in [PoolMode::WavePerRound, PoolMode::Persistent] {
        let mut cfg = wc_config();
        cfg.split_bytes = 32 * 1024;
        cfg.chunking = Chunking::Inter { chunk_bytes: 128 * 1024 };
        cfg.pool = pool;
        let r = Job::new(WordCount::new())
            .config(cfg)
            .run(Input::stream(MemSource::from(small_corpus.clone())))
            .unwrap();
        let total = r.report.timings.total().as_secs_f64();
        println!(
            "{:>12} {:>9.3} {:>8} {:>9} {:>8}",
            format!("{pool}"),
            total,
            r.report.stats.map_rounds,
            r.report.stats.threads_spawned,
            r.report.stats.threads_reused
        );
        csv.row(&[
            "pool_mode".into(),
            format!("{pool}"),
            format!("{total:.3}"),
            format!("{}", r.report.stats.ingest_chunks),
            format!("{}", r.report.stats.threads_spawned),
        ]);
    }
    println!("(64 rounds: the wave baseline re-provisions every round, the pool is built once)");

    let path = results_dir().join("ablations.csv");
    csv.write_to(&path).expect("write ablations CSV");
    println!("\n  data: {}", path.display());
}
