//! Regenerates **Table II**: per-phase execution times showing how SupMR
//! mitigates the ingest (word count) and merge (sort) bottlenecks.
//!
//! Default mode simulates the paper's testbed at paper scale (155GB word
//! count, 60GB sort, 32 contexts, RAID-0). `--real` additionally runs
//! the actual runtime on scaled, bandwidth-throttled inputs on this
//! machine.

use supmr::runtime::MergeMode;
use supmr_bench::{print_timing_block, results_dir, RealScale};
use supmr_metrics::csv::CsvTable;
use supmr_metrics::{Json, Phase};
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, ModelOutput, PipelineParams};

fn phase_cols(out: &ModelOutput) -> [f64; 5] {
    let t = &out.timings;
    [
        t.total().as_secs_f64(),
        t.phase(Phase::Ingest).as_secs_f64(),
        t.phase(Phase::Map).as_secs_f64(),
        t.phase(Phase::Reduce).as_secs_f64(),
        t.phase(Phase::Merge).as_secs_f64(),
    ]
}

fn main() {
    let real = std::env::args().any(|a| a == "--real");

    println!("== Table II (simulated at paper scale) ==");
    let mut csv =
        CsvTable::new(&["app", "chunking", "total_s", "read_s", "map_s", "reduce_s", "merge_s"]);

    // --- Word count: mitigate the ingest bottleneck ---
    let wc = AppProfile::word_count_155gb();
    let machine = MachineSpec::paper_testbed(wc.disk_bandwidth);
    let wc_none = simulate(JobModel::Original, &wc, &machine, MachineSpec::DISK);
    let wc_1g = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        &wc,
        &machine,
        MachineSpec::DISK,
    );
    let wc_50g = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 50e9 }),
        &wc,
        &machine,
        MachineSpec::DISK,
    );
    for (label, out) in [("none", &wc_none), ("1GB", &wc_1g), ("50GB", &wc_50g)] {
        csv.row(&[
            "wordcount".to_string(),
            label.to_string(),
            format!("{:.2}", phase_cols(out)[0]),
            format!("{:.2}", phase_cols(out)[1]),
            format!("{:.2}", phase_cols(out)[2]),
            format!("{:.2}", phase_cols(out)[3]),
            format!("{:.2}", phase_cols(out)[4]),
        ]);
    }
    print_timing_block(
        "Word Count (155GB): mitigate ingest bottleneck",
        &[
            ("none".to_string(), wc_none.timings.clone()),
            ("1GB".to_string(), wc_1g.timings.clone()),
            ("50GB".to_string(), wc_50g.timings.clone()),
        ],
    );
    println!(
        "  total speedup: 1GB {:.2}x, 50GB {:.2}x   (paper: 1.16x, 1.10x)",
        wc_1g.timings.total_speedup_vs(&wc_none.timings),
        wc_50g.timings.total_speedup_vs(&wc_none.timings),
    );
    println!(
        "  read+map speedup: 1GB {:.2}x, 50GB {:.2}x   (paper: 1.16x, 1.12x)",
        wc_1g.timings.ingest_map_speedup_vs(&wc_none.timings),
        wc_50g.timings.ingest_map_speedup_vs(&wc_none.timings),
    );
    println!("  paper row none: 471.75s total / 403.90s read / 67.41s map");
    println!("  paper row 1GB:  407.58s total / 406.14s read+map");
    println!("  paper row 50GB: 429.76s total / 423.51s read+map");

    // --- Sort: mitigate the merge bottleneck ---
    let sort = AppProfile::sort_60gb();
    let machine = MachineSpec::paper_testbed(sort.disk_bandwidth);
    let sort_none = simulate(JobModel::Original, &sort, &machine, MachineSpec::DISK);
    let sort_1g = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        &sort,
        &machine,
        MachineSpec::DISK,
    );
    for (label, out) in [("none", &sort_none), ("1GB", &sort_1g)] {
        let c = phase_cols(out);
        csv.row(&[
            "sort".to_string(),
            label.to_string(),
            format!("{:.2}", c[0]),
            format!("{:.2}", c[1]),
            format!("{:.2}", c[2]),
            format!("{:.2}", c[3]),
            format!("{:.2}", c[4]),
        ]);
    }
    print_timing_block(
        "Sort (60GB): mitigate merge bottleneck",
        &[
            ("none".to_string(), sort_none.timings.clone()),
            ("1GB".to_string(), sort_1g.timings.clone()),
        ],
    );
    println!(
        "  total speedup {:.2}x (paper: 1.46x), merge speedup {:.2}x (paper: 3.12x)",
        sort_1g.timings.total_speedup_vs(&sort_none.timings),
        sort_1g.timings.phase_speedup_vs(&sort_none.timings, Phase::Merge),
    );
    println!("  paper row none: 397.31s total / 182.78s read / 191.23s merge");
    println!("  paper row 1GB:  272.58s total / 196.86s read+map / 61.14s merge");

    let path = results_dir().join("table2_sim.csv");
    csv.write_to(&path).expect("write table2 CSV");
    println!("\n  data: {}", path.display());

    if real {
        run_real();
    } else {
        println!("\n(re-run with --real for a scaled real execution on this machine)");
    }
}

fn run_real() {
    println!("\n== Table II (real execution, scaled to this machine) ==");
    let scale = RealScale::default();
    println!(
        "  word count {}MB, sort {}MB, disk throttled to {:.0} MB/s, {} workers",
        scale.wordcount_bytes / (1024 * 1024),
        scale.sort_bytes / (1024 * 1024),
        scale.disk_rate / (1024.0 * 1024.0),
        scale.workers
    );

    let wc_data = scale.wordcount_data();
    let wc_none = scale.run_wordcount(wc_data.clone(), None);
    let wc_small = scale.run_wordcount(wc_data.clone(), Some(1024 * 1024));
    let wc_large = scale.run_wordcount(wc_data, Some(8 * 1024 * 1024));
    print_timing_block(
        "Word Count (real, scaled)",
        &[
            ("none".to_string(), wc_none.report.timings.clone()),
            ("1MB".to_string(), wc_small.report.timings.clone()),
            ("8MB".to_string(), wc_large.report.timings.clone()),
        ],
    );
    println!(
        "  total speedup: 1MB {:.2}x, 8MB {:.2}x",
        wc_small.report.timings.total_speedup_vs(&wc_none.report.timings),
        wc_large.report.timings.total_speedup_vs(&wc_none.report.timings),
    );

    let sort_data = scale.sort_data();
    let s_none = scale.run_sort(sort_data.clone(), None, MergeMode::PairwiseRounds);
    let s_supmr = scale.run_sort(sort_data, Some(1024 * 1024), MergeMode::PWay { ways: 4 });
    print_timing_block(
        "Sort (real, scaled)",
        &[
            ("none".to_string(), s_none.report.timings.clone()),
            ("1MB".to_string(), s_supmr.report.timings.clone()),
        ],
    );
    println!(
        "  total speedup {:.2}x; merge rounds {} -> {}; merge elements moved {} -> {}",
        s_supmr.report.timings.total_speedup_vs(&s_none.report.timings),
        s_none.report.stats.merge_rounds,
        s_supmr.report.stats.merge_rounds,
        s_none.report.stats.merge_elements_moved,
        s_supmr.report.stats.merge_elements_moved,
    );

    // Full machine-readable reports (stable supmr.job_report.v1 schema).
    let reports = Json::obj(vec![
        ("wordcount_none", wc_none.report.to_json()),
        ("wordcount_1mb", wc_small.report.to_json()),
        ("wordcount_8mb", wc_large.report.to_json()),
        ("sort_none", s_none.report.to_json()),
        ("sort_1mb", s_supmr.report.to_json()),
    ]);
    let path = results_dir().join("table2_real_reports.json");
    std::fs::write(&path, reports.render()).expect("write table2 reports JSON");
    println!("  reports: {}", path.display());
}
