//! Ablation: ingest chunk size sweep (the paper's §III-A2 discussion
//! and "Conclusion 2"). The paper only reports 1GB and 50GB; this sweep
//! fills in the curve, showing the two failure modes it predicts:
//! chunks too large forfeit overlap, chunks too small drown in
//! per-round thread overhead.
//!
//! Two columns are produced: the discrete-event simulation (exact, but
//! task graphs below ~8MB chunks get too large to materialize) and a
//! closed-form steady-state pipeline model that extends the curve into
//! the tiny-chunk region where per-wave thread-spawn cost exceeds the
//! per-chunk ingest time and the U-curve turns upward:
//!
//! ```text
//! total ≈ ingest(c₀) + (n−1)·max(ingest(c), spawn + map(c)) + spawn + map(c) + tail
//! ```

use supmr_bench::results_dir;
use supmr_metrics::csv::CsvTable;
use supmr_sim::{simulate, AppProfile, EnergyModel, JobModel, MachineSpec, PipelineParams};

/// Closed-form steady-state estimate of the pipeline's total time.
fn analytic_total(profile: &AppProfile, machine: &MachineSpec, chunk_bytes: f64) -> f64 {
    let n = (profile.input_bytes / chunk_bytes).ceil().max(1.0);
    let disk = machine.devices[MachineSpec::DISK].bandwidth;
    let ingest_chunk = chunk_bytes / disk;
    let spawn = machine.thread_spawn_cost * machine.contexts as f64;
    let map_chunk = chunk_bytes * profile.map_ns_per_byte * 1e-9 / machine.contexts as f64;
    let round = f64::max(ingest_chunk, spawn + map_chunk);
    let reduce = profile.input_bytes * profile.reduce_ns_per_byte * 1e-9 / machine.contexts as f64;
    ingest_chunk + (n - 1.0) * round + spawn + map_chunk + reduce
}

fn main() {
    let profile = AppProfile::word_count_155gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let baseline = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);

    println!("== Ablation: ingest chunk size sweep (word count, 155GB, simulated) ==\n");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>9} {:>10} {:>9} {:>9}",
        "chunk", "chunks", "sim_s", "analytic_s", "speedup", "busy_util%", "avg_W", "energy_Wh"
    );
    let mut csv = CsvTable::new(&[
        "chunk_bytes",
        "chunks",
        "sim_total_s",
        "analytic_total_s",
        "speedup",
        "busy_util_pct",
        "avg_watts",
        "energy_wh",
    ]);
    let power = EnergyModel::paper_server();

    // DES below ~8MB chunks would need millions of simulated tasks;
    // those points carry the analytic column only.
    let sizes: [f64; 14] =
        [64e3, 256e3, 1e6, 4e6, 8e6, 16e6, 64e6, 256e6, 1e9, 4e9, 10e9, 25e9, 50e9, 100e9];
    const DES_MIN_CHUNK: f64 = 8e6;
    for &chunk_bytes in &sizes {
        let analytic = analytic_total(&profile, &machine, chunk_bytes);
        let n = (profile.input_bytes / chunk_bytes).ceil();
        if chunk_bytes >= DES_MIN_CHUNK {
            let out = simulate(
                JobModel::SupMr(PipelineParams { chunk_bytes }),
                &profile,
                &machine,
                MachineSpec::DISK,
            );
            let speedup = baseline.total_secs() / out.total_secs();
            let util = out.report.trace.mean_busy_utilization();
            let energy = power.evaluate(&out.report, &machine);
            println!(
                "{:>9.2}M {:>8} {:>10.1} {:>10.1} {:>8.3}x {:>10.1} {:>9.1} {:>9.1}",
                chunk_bytes / 1e6,
                out.chunks,
                out.total_secs(),
                analytic,
                speedup,
                util,
                energy.average_watts,
                energy.watt_hours(),
            );
            csv.row_f64(
                &[
                    chunk_bytes,
                    out.chunks as f64,
                    out.total_secs(),
                    analytic,
                    speedup,
                    util,
                    energy.average_watts,
                    energy.watt_hours(),
                ],
                3,
            );
        } else {
            println!(
                "{:>9.2}M {:>8} {:>10} {:>10.1} {:>8.3}x {:>10} {:>9} {:>9}",
                chunk_bytes / 1e6,
                n,
                "-",
                analytic,
                baseline.total_secs() / analytic,
                "-",
                "-",
                "-"
            );
            csv.row(&[
                format!("{chunk_bytes}"),
                format!("{n}"),
                String::new(),
                format!("{analytic:.3}"),
                format!("{:.3}", baseline.total_secs() / analytic),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
    }
    let base_energy = power.evaluate(&baseline.report, &machine);
    println!(
        "\nbaseline (no chunks): {:.1}s, {:.1}W avg, {:.1}Wh — chunked runs finish sooner \
         (less total energy) but run hotter (higher average power), the §VI-C1 heat trade-off.",
        baseline.total_secs(),
        base_energy.average_watts,
        base_energy.watt_hours(),
    );
    println!(
        "Paper's observations reproduced: speedup grows as chunks shrink (1GB beats 50GB), \
         then collapses once per-round thread spawn ({}x{:.0}us per wave) exceeds the \
         per-chunk ingest time — the U-curve of §III-A2.",
        machine.contexts,
        machine.thread_spawn_cost * 1e6,
    );
    let path = results_dir().join("chunk_sweep.csv");
    csv.write_to(&path).expect("write sweep CSV");
    println!("  data: {}", path.display());
}
