//! Regenerates **Fig. 5a–c**: word count (155GB) CPU utilization without
//! ingest chunks, with small (1GB) chunks, and with large (50GB) chunks.
//! Small chunks produce dense high-utilization spikes and the best
//! performance; large chunks produce sparse, well-defined spikes.

use supmr_bench::{emit_figure, trace_with_phase_marks};
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};

fn main() {
    let profile = AppProfile::word_count_155gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);

    let runs = [
        ("fig5a_wc_none", "Fig. 5a: word count, no ingest chunks", JobModel::Original),
        (
            "fig5b_wc_1gb",
            "Fig. 5b: word count, 1GB ingest chunks",
            JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        ),
        (
            "fig5c_wc_50gb",
            "Fig. 5c: word count, 50GB ingest chunks",
            JobModel::SupMr(PipelineParams { chunk_bytes: 50e9 }),
        ),
    ];

    println!("== Fig. 5: word count utilization across ingest chunk sizes ==");
    let mut totals = Vec::new();
    for (name, title, model) in runs {
        let out = simulate(model, &profile, &machine, MachineSpec::DISK);
        println!();
        let trace = trace_with_phase_marks(&out);
        emit_figure(name, title, &trace);
        println!(
            "  total {:.1}s, chunks {}, mean busy {:.0}% (ingest-window busy {:.1}%)",
            out.total_secs(),
            out.chunks,
            out.report.trace.mean_busy_utilization(),
            out.report.phase_mean_busy(supmr_metrics::Phase::Ingest),
        );
        totals.push((title, out.total_secs(), out.report.trace.mean_busy_utilization()));
    }

    println!("\nsummary (paper: smaller chunks -> denser spikes, higher utilization, faster):");
    for (title, total, util) in &totals {
        println!("  {title}: {total:.1}s, {util:.0}% mean busy");
    }
    let base = totals[0].1;
    println!(
        "speedups vs none: 1GB {:.2}x (paper 1.16x), 50GB {:.2}x (paper 1.10x)",
        base / totals[1].1,
        base / totals[2].1
    );
}
