//! Regenerates **Fig. 1**: CPU utilization of a scale-up MapReduce sort
//! (60GB) on the *original* runtime — the long IO-wait ingest trough,
//! the short compute burst, and the "step" curve as the iterative merge
//! halves its thread count each round.

use supmr_bench::{emit_figure, trace_with_phase_marks};
use supmr_metrics::Phase;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec};

fn main() {
    let profile = AppProfile::sort_60gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let out = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);

    println!("== Fig. 1: original-runtime sort (60GB), CPU utilization ==\n");
    let trace = trace_with_phase_marks(&out);
    emit_figure("fig1_sort_original", "sort 60GB, original runtime", &trace);

    let compute = out.timings.phase(Phase::Map).as_secs_f64()
        + out.timings.phase(Phase::Reduce).as_secs_f64();
    println!(
        "total {:.1}s; ingest {:.1}s ({:.0}% of job), compute {:.1}s ({:.1}% of job), merge {:.1}s",
        out.total_secs(),
        out.timings.phase(Phase::Ingest).as_secs_f64(),
        out.timings.phase(Phase::Ingest).as_secs_f64() / out.total_secs() * 100.0,
        compute,
        compute / out.total_secs() * 100.0,
        out.timings.phase(Phase::Merge).as_secs_f64(),
    );
    println!(
        "paper claim: \"the actual compute phase takes less than 25% of the total execution \
         time\" -> map+reduce here is {:.1}%; ingest+merge consume the remaining {:.1}%",
        compute / out.total_secs() * 100.0,
        (out.timings.phase(Phase::Ingest).as_secs_f64()
            + out.timings.phase(Phase::Merge).as_secs_f64())
            / out.total_secs()
            * 100.0
    );
    println!("mean utilization {:.0}%", out.report.mean_utilization());
}
