//! Regenerates **Fig. 6**: sort (60GB) on SupMR. The p-way merge runs
//! as a single fully-parallel round, so the merge tail holds high
//! utilization instead of the original runtime's step-down (Fig. 1).

use supmr_bench::{emit_figure, trace_with_phase_marks};
use supmr_metrics::Phase;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};

fn main() {
    let profile = AppProfile::sort_60gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let base = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
    let supmr = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        &profile,
        &machine,
        MachineSpec::DISK,
    );

    println!("== Fig. 6: sort (60GB) on SupMR, CPU utilization ==\n");
    let trace = trace_with_phase_marks(&supmr);
    emit_figure("fig6_sort_supmr", "sort 60GB, SupMR (p-way merge)", &trace);

    let merge_speedup = supmr.timings.phase_speedup_vs(&base.timings, Phase::Merge);
    println!(
        "merge: original {:.1}s (step-down rounds) vs SupMR {:.1}s (single p-way round)",
        base.timings.phase(Phase::Merge).as_secs_f64(),
        supmr.timings.phase(Phase::Merge).as_secs_f64(),
    );
    println!("merge speedup {merge_speedup:.2}x   (paper: 3.13x)");
    println!(
        "total {:.1}s vs {:.1}s = {:.2}x   (paper: 1.46x)",
        base.total_secs(),
        supmr.total_secs(),
        supmr.timings.total_speedup_vs(&base.timings)
    );
}
