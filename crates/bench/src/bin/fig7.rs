//! Regenerates **Fig. 7**: the HDFS case study. Word count over 30GB
//! ingested from a 32-node HDFS behind one 1GbE link. SupMR overlays
//! map computation with the network ingest — utilization rises — but
//! because the map phase is a tiny fraction of the ingest-bound job,
//! the end-to-end speedup is only a few seconds.
//!
//! `--real` also drives the actual runtime through the simulated-HDFS
//! `DataSource` (32 datanode buckets behind one shared link bucket) at
//! a scaled size.

use supmr::runtime::{Input, Job, JobConfig};
use supmr::Chunking;
use supmr_apps::WordCount;
use supmr_bench::{emit_figure, trace_with_phase_marks};
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec, PipelineParams};
use supmr_storage::{HdfsConfig, HdfsSource, MemSource};
use supmr_workloads::{TextGen, TextGenConfig};

fn main() {
    let profile = AppProfile::word_count_30gb_hdfs();
    let machine = MachineSpec::paper_testbed_hdfs();
    let base = simulate(JobModel::Original, &profile, &machine, MachineSpec::NET);
    let supmr = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        &profile,
        &machine,
        MachineSpec::NET,
    );

    println!("== Fig. 7: word count (30GB) over HDFS behind one 1GbE link ==\n");
    emit_figure(
        "fig7a_hdfs_original",
        "Fig. 7 (top): original — copy 30GB, then compute",
        &trace_with_phase_marks(&base),
    );
    println!();
    emit_figure(
        "fig7b_hdfs_supmr",
        "Fig. 7 (bottom): SupMR — ingest chunks overlap the copy",
        &trace_with_phase_marks(&supmr),
    );

    println!(
        "original {:.1}s vs SupMR {:.1}s -> speedup {:.1}s   (paper: ~7s)",
        base.total_secs(),
        supmr.total_secs(),
        base.total_secs() - supmr.total_secs()
    );
    println!(
        "mean utilization: original {:.0}%, SupMR {:.0}% (high utilization, little gain: \
         the map phase is too small a fraction of this ingest-bound job)",
        base.report.mean_utilization(),
        supmr.report.mean_utilization()
    );

    if std::env::args().any(|a| a == "--real") {
        run_real();
    } else {
        println!("\n(re-run with --real to drive the real runtime through the HDFS-sim source)");
    }
}

fn run_real() {
    println!("\n== real runtime through the simulated HDFS source (scaled) ==");
    let data = TextGen::new(TextGenConfig::default()).generate_bytes(7, 8 * 1024 * 1024);
    let cluster = |payload: Vec<u8>| {
        HdfsSource::new(
            MemSource::from(payload),
            HdfsConfig {
                datanodes: 32,
                node_disk_rate: 64.0 * 1024.0 * 1024.0,
                link_rate: 12.0 * 1024.0 * 1024.0, // scaled "1GbE"
                block_size: 256 * 1024,
            },
        )
    };
    let mut config = JobConfig { map_workers: 4, reduce_workers: 4, ..JobConfig::default() };
    let original = Job::new(WordCount::new())
        .config(config.clone())
        .run(Input::stream(cluster(data.clone())))
        .unwrap();
    config.chunking = Chunking::Inter { chunk_bytes: 512 * 1024 };
    let piped =
        Job::new(WordCount::new()).config(config).run(Input::stream(cluster(data))).unwrap();

    assert_eq!(original.sorted_pairs(), piped.sorted_pairs());
    println!(
        "original {:.2}s vs SupMR {:.2}s over {} chunks -> speedup {:.2}s (ingest-bound, as in the paper)",
        original.report.timings.total().as_secs_f64(),
        piped.report.timings.total().as_secs_f64(),
        piped.report.stats.ingest_chunks,
        original.report.timings.total().as_secs_f64() - piped.report.timings.total().as_secs_f64(),
    );
}
