//! Write the `BENCH_baseline.json` regression baseline.
//!
//! Runs the canonical word count and sort workloads under both runtimes
//! with a live metrics registry attached, measures the shuffle-path
//! speedup (`supmr_bench::shuffle`), and serializes the results as
//! `supmr.bench_report.v1` (see `supmr_bench::report`). Committed at
//! the repo root, the file is the baseline the CI regression job — and
//! any human comparing two checkouts — diffs against. A sibling `.svg`
//! renders every run's latency histograms as small-multiple panels.

use std::path::PathBuf;
use supmr_bench::report::{
    check_adaptive_regression, check_map_regression, collect, to_json, validate, BenchRun,
};
use supmr_bench::{ablation, map_path, shuffle, RealScale};
use supmr_metrics::svg::{render_histogram_panels, PanelOptions};
use supmr_metrics::{Json, MetricsSnapshot};

const USAGE: &str = "\
usage: bench_report [--quick] [--out PATH] [--check BASELINE]

  --quick           run at the tiny test scale (sub-second; CI fixture)
  --out PATH        where to write the report [default: BENCH_baseline.json]
  --check BASELINE  after measuring, fail (exit 1) if this report's mean
                    supmr.map.task_us exceeds BASELINE's by more than 10%,
                    or an adaptive cell's ratio-to-best-static regresses
                    past the same headroom

Also writes histogram panels for every run next to the report, as
<out stem>.svg.
";

/// Flatten every run's histogram families into one snapshot, with a
/// `run` label telling the panels apart.
fn merged_metrics(runs: &[BenchRun]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for run in runs {
        if let Some(m) = &run.report.metrics {
            for entry in &m.entries {
                let mut entry = entry.clone();
                entry.labels.push(("run".into(), format!("{}/{}", run.workload, run.runtime)));
                merged.entries.push(entry);
            }
        }
    }
    merged
}

fn main() {
    let mut out = PathBuf::from("BENCH_baseline.json");
    let mut quick = false;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("bench_report: --out needs a path\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--check" => match args.next() {
                Some(p) => check = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_report: --check needs a baseline path\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("bench_report: unknown flag '{other}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let scale = if quick { RealScale::tiny() } else { RealScale::default() };
    println!(
        "bench_report: {} scale (wordcount {} KiB, sort {} KiB, {} workers)",
        if quick { "quick" } else { "full" },
        scale.wordcount_bytes / 1024,
        scale.sort_bytes / 1024,
        scale.workers
    );
    let runs = collect(&scale);
    for run in &runs {
        println!(
            "  {:>9}/{:<8} wall {:>8.3}s  {:>8} pairs  {:>3} chunks",
            run.workload,
            run.runtime,
            run.report.timings.total().as_secs_f64(),
            run.report.stats.output_pairs,
            run.report.stats.ingest_chunks
        );
    }
    let rows = shuffle::measure(quick);
    for row in &rows {
        println!(
            "  shuffle/{:<9} {:>9} pairs  baseline {:>10.0}/s  sharded {:>10.0}/s  {:>5.2}x",
            row.workload,
            row.pairs,
            row.baseline_pairs_per_s,
            row.sharded_pairs_per_s,
            row.speedup()
        );
    }
    let map_rows = map_path::measure(quick);
    for row in &map_rows {
        println!(
            "  map/{:<13} {:>9} bytes  scalar {:>12.0} B/s  swar {:>12.0} B/s  {:>5.2}x",
            row.workload,
            row.bytes,
            row.scalar_bytes_per_s,
            row.swar_bytes_per_s,
            row.speedup()
        );
    }
    let cells = ablation::measure(&scale, quick);
    for cell in &cells {
        println!(
            "  adaptive/{:<7} {:>8.2} MiB/s  best {:>8.3}s  worst {:>8.3}s  \
             adaptive {:>8.3}s ({} actions)  ratio {:.3}  worst/adaptive {:.2}x",
            cell.cell,
            cell.disk_rate / (1024.0 * 1024.0),
            cell.best_static_us() as f64 / 1e6,
            cell.worst_static_us() as f64 / 1e6,
            cell.adaptive_wall_us as f64 / 1e6,
            cell.governor_actions,
            cell.ratio_to_best(),
            cell.worst_over_adaptive()
        );
    }
    let json = to_json(&scale, &runs, &rows, &map_rows, &cells, quick);
    validate(&json).expect("generated report validates");
    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
        let baseline = Json::parse(&text).expect("baseline parses as JSON");
        let checks = check_map_regression(&json, &baseline).and_then(|mut lines| {
            check_adaptive_regression(&json, &baseline).map(|more| {
                lines.extend(more);
                lines
            })
        });
        match checks {
            Ok(lines) => lines.iter().for_each(|l| println!("{l}")),
            Err(msg) => {
                eprintln!("bench_report: {msg}");
                std::process::exit(1);
            }
        }
    }
    std::fs::write(&out, json.render() + "\n").expect("write bench report");
    let svg_out = out.with_extension("svg");
    let svg = render_histogram_panels(
        &merged_metrics(&runs),
        &PanelOptions { title: "bench_report latency histograms".into(), ..Default::default() },
    );
    std::fs::write(&svg_out, svg).expect("write histogram panels");
    println!("wrote {} and {}", out.display(), svg_out.display());
}
