//! Write the `BENCH_baseline.json` regression baseline.
//!
//! Runs the canonical word count and sort workloads under both runtimes
//! with a live metrics registry attached and serializes the results as
//! `supmr.bench_report.v1` (see `supmr_bench::report`). Committed at
//! the repo root, the file is the baseline the CI regression job — and
//! any human comparing two checkouts — diffs against.

use std::path::PathBuf;
use supmr_bench::report::{collect, to_json, validate};
use supmr_bench::RealScale;

const USAGE: &str = "\
usage: bench_report [--quick] [--out PATH]

  --quick     run at the tiny test scale (sub-second; CI fixture)
  --out PATH  where to write the report [default: BENCH_baseline.json]
";

fn main() {
    let mut out = PathBuf::from("BENCH_baseline.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("bench_report: --out needs a path\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("bench_report: unknown flag '{other}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let scale = if quick { RealScale::tiny() } else { RealScale::default() };
    println!(
        "bench_report: {} scale (wordcount {} KiB, sort {} KiB, {} workers)",
        if quick { "quick" } else { "full" },
        scale.wordcount_bytes / 1024,
        scale.sort_bytes / 1024,
        scale.workers
    );
    let runs = collect(&scale);
    for run in &runs {
        println!(
            "  {:>9}/{:<8} wall {:>8.3}s  {:>8} pairs  {:>3} chunks",
            run.workload,
            run.runtime,
            run.report.timings.total().as_secs_f64(),
            run.report.stats.output_pairs,
            run.report.stats.ingest_chunks
        );
    }
    let json = to_json(&scale, &runs, quick);
    validate(&json).expect("generated report validates");
    std::fs::write(&out, json.render() + "\n").expect("write bench report");
    println!("wrote {}", out.display());
}
