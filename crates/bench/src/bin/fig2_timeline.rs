//! Regenerates the **Fig. 2 / Fig. 4 mechanism** as *measured* data: a
//! per-round Gantt of the real pipeline showing ingest of chunk `i+1`
//! proceeding while mappers work on chunk `i` — the "ingest chunk
//! pipeline" schematic of the paper, drawn from the job's recorded
//! event trace instead of a diagram.
//!
//! The rounds come out of the typed trace (`JobReport::trace`): each
//! `MapWave` span is paired with the `ChunkIngest` span that overlapped
//! it, and the per-round stall events say which side idled. The same
//! trace is also rendered as a per-thread ASCII timeline and exported
//! as Chrome `trace_event` JSON for chrome://tracing.

use supmr_bench::results_dir;
use supmr_bench::RealScale;
use supmr_metrics::ascii::{render_timeline, ChartOptions};
use supmr_metrics::chrome::to_chrome_json;
use supmr_metrics::csv::CsvTable;

fn bar(secs: f64, scale: f64, ch: char) -> String {
    let cells = (secs * scale).round().max(0.0) as usize;
    std::iter::repeat_n(ch, cells.min(60)).collect()
}

fn main() {
    let scale = RealScale::default();
    println!(
        "== Fig. 2/4: measured pipeline rounds (word count, {}MB @ {:.0} MB/s, 1MB chunks) ==\n",
        scale.wordcount_bytes / (1024 * 1024),
        scale.disk_rate / (1024.0 * 1024.0),
    );
    let result = scale.run_wordcount_traced(scale.wordcount_data(), Some(1024 * 1024));
    let trace = result.report.trace.as_ref().expect("tracing requested");
    trace.validate().expect("trace invariants");
    let rounds = trace.rounds();
    assert!(!rounds.is_empty(), "pipeline must record rounds");

    let max_secs = rounds
        .iter()
        .map(|r| r.ingest.as_secs_f64().max(r.map.as_secs_f64()))
        .fold(0.0, f64::max)
        .max(1e-9);
    let chart_scale = 48.0 / max_secs;

    println!("{:>5} {:>8}  {:<50}", "round", "chunk", "I = ingest next chunk, M = map this chunk");
    let mut csv = CsvTable::new(&[
        "round",
        "ingest_bytes",
        "ingest_s",
        "map_s",
        "overlap_s",
        "map_wait_s",
        "ingest_wait_s",
    ]);
    let (mut sum_i, mut sum_m, mut sum_overlap) = (0.0, 0.0, 0.0);
    for (i, r) in rounds.iter().enumerate() {
        let ingest = r.ingest.as_secs_f64();
        let map = r.map.as_secs_f64();
        let overlap = ingest.min(map);
        sum_i += ingest;
        sum_m += map;
        sum_overlap += overlap;
        if i < 12 || i + 3 >= rounds.len() {
            println!(
                "{:>5} {:>7}K  I|{:<48}| {:>7.3}s",
                i,
                r.ingest_bytes / 1024,
                bar(ingest, chart_scale, '#'),
                ingest
            );
            println!("{:>5} {:>8}  M|{:<48}| {:>7.3}s", "", "", bar(map, chart_scale, '='), map);
        } else if i == 12 {
            println!("  ... {} more rounds ...", rounds.len() - 15);
        }
        csv.row_f64(
            &[
                i as f64,
                r.ingest_bytes as f64,
                ingest,
                map,
                overlap,
                r.map_wait.as_secs_f64(),
                r.ingest_wait.as_secs_f64(),
            ],
            4,
        );
    }

    let stalls = trace.stall_totals();
    println!(
        "\nrounds: {}   Σingest {:.2}s   Σmap {:.2}s   Σoverlap {:.2}s hidden by the pipeline",
        rounds.len(),
        sum_i,
        sum_m,
        sum_overlap
    );
    println!(
        "stalls: mappers waited {:.2}s for chunks, ingest waited {:.2}s for mappers",
        stalls.map_waiting.as_secs_f64(),
        stalls.ingest_waiting.as_secs_f64(),
    );
    println!(
        "fused read+map span: {:.2}s  vs  serial sum {:.2}s  (total job {:.2}s)",
        result.report.timings.fused_ingest_map().unwrap().as_secs_f64(),
        sum_i + sum_m,
        result.report.timings.total().as_secs_f64(),
    );

    println!(
        "\n{}",
        render_timeline(
            trace,
            &ChartOptions { title: "pipeline event timeline".to_string(), ..Default::default() }
        )
    );

    let path = results_dir().join("fig2_rounds.csv");
    csv.write_to(&path).expect("write rounds CSV");
    let trace_path = results_dir().join("fig2_trace.json");
    std::fs::write(&trace_path, to_chrome_json(trace)).expect("write Chrome trace");
    println!("  data: {}   trace (chrome://tracing): {}", path.display(), trace_path.display());
}
