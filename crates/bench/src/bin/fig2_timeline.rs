//! Regenerates the **Fig. 2 / Fig. 4 mechanism** as *measured* data: a
//! per-round Gantt of the real pipeline showing ingest of chunk `i+1`
//! proceeding while mappers work on chunk `i` — the "ingest chunk
//! pipeline" schematic of the paper, drawn from actual timings instead
//! of a diagram.

use supmr_bench::results_dir;
use supmr_bench::RealScale;
use supmr_metrics::csv::CsvTable;

fn bar(secs: f64, scale: f64, ch: char) -> String {
    let cells = (secs * scale).round().max(0.0) as usize;
    std::iter::repeat_n(ch, cells.min(60)).collect()
}

fn main() {
    let scale = RealScale::default();
    println!(
        "== Fig. 2/4: measured pipeline rounds (word count, {}MB @ {:.0} MB/s, 1MB chunks) ==\n",
        scale.wordcount_bytes / (1024 * 1024),
        scale.disk_rate / (1024.0 * 1024.0),
    );
    let result = scale.run_wordcount(scale.wordcount_data(), Some(1024 * 1024));
    let rounds = &result.stats.rounds;
    assert!(!rounds.is_empty(), "pipeline must record rounds");

    let max_secs = rounds
        .iter()
        .map(|r| r.ingest.as_secs_f64().max(r.map.as_secs_f64()))
        .fold(0.0, f64::max)
        .max(1e-9);
    let chart_scale = 48.0 / max_secs;

    println!("{:>5} {:>8}  {:<50}", "round", "chunk", "I = ingest next chunk, M = map this chunk");
    let mut csv = CsvTable::new(&["round", "chunk_bytes", "ingest_s", "map_s", "overlap_s"]);
    let (mut sum_i, mut sum_m, mut sum_overlap) = (0.0, 0.0, 0.0);
    for (i, r) in rounds.iter().enumerate() {
        let ingest = r.ingest.as_secs_f64();
        let map = r.map.as_secs_f64();
        let overlap = ingest.min(map);
        sum_i += ingest;
        sum_m += map;
        sum_overlap += overlap;
        if i < 12 || i + 3 >= rounds.len() {
            println!(
                "{:>5} {:>7}K  I|{:<48}| {:>7.3}s",
                i,
                r.chunk_bytes / 1024,
                bar(ingest, chart_scale, '#'),
                ingest
            );
            println!("{:>5} {:>8}  M|{:<48}| {:>7.3}s", "", "", bar(map, chart_scale, '='), map);
        } else if i == 12 {
            println!("  ... {} more rounds ...", rounds.len() - 15);
        }
        csv.row_f64(&[i as f64, r.chunk_bytes as f64, ingest, map, overlap], 4);
    }

    println!(
        "\nrounds: {}   Σingest {:.2}s   Σmap {:.2}s   Σoverlap {:.2}s hidden by the pipeline",
        rounds.len(),
        sum_i,
        sum_m,
        sum_overlap
    );
    println!(
        "fused read+map span: {:.2}s  vs  serial sum {:.2}s  (total job {:.2}s)",
        result.timings.fused_ingest_map().unwrap().as_secs_f64(),
        sum_i + sum_m,
        result.timings.total().as_secs_f64(),
    );
    let path = results_dir().join("fig2_rounds.csv");
    csv.write_to(&path).expect("write rounds CSV");
    println!("  data: {}", path.display());
}
