//! Regenerates **Fig. 3**: the OpenMP sort comparator. Its compute
//! phase beats scale-up MapReduce, but single-threaded ingest+parse
//! makes the total time-to-result *slower* — the motivating observation
//! for keeping the MapReduce model on scale-up.

use supmr_bench::{emit_figure, trace_with_phase_marks};
use supmr_metrics::Phase;
use supmr_sim::{simulate, AppProfile, JobModel, MachineSpec};

fn main() {
    let profile = AppProfile::sort_60gb();
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let mr = simulate(JobModel::Original, &profile, &machine, MachineSpec::DISK);
    let omp = simulate(JobModel::OpenMp, &profile, &machine, MachineSpec::DISK);

    println!("== Fig. 3: OpenMP sort (60GB), CPU utilization ==\n");
    let trace = trace_with_phase_marks(&omp);
    emit_figure("fig3_sort_openmp", "sort 60GB, OpenMP comparator", &trace);

    let mr_compute = mr.total_secs() - mr.timings.phase(Phase::Ingest).as_secs_f64();
    let omp_compute = omp.timings.phase(Phase::Merge).as_secs_f64();
    println!(
        "MapReduce: total {:.1}s (ingest {:.1}s, compute-after-ingest {:.1}s)",
        mr.total_secs(),
        mr.timings.phase(Phase::Ingest).as_secs_f64(),
        mr_compute,
    );
    println!(
        "OpenMP:    total {:.1}s (serial ingest+parse {:.1}s, parallel sort {:.1}s)",
        omp.total_secs(),
        omp.timings.phase(Phase::Ingest).as_secs_f64(),
        omp_compute,
    );
    println!("compute advantage OpenMP: {:.0}s   (paper: 214s)", mr_compute - omp_compute);
    println!(
        "total-time advantage MapReduce: {:.0}s   (paper: 192s)",
        omp.total_secs() - mr.total_secs()
    );
}
