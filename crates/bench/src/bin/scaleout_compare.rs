//! The §VIII comparison: SupMR on one scale-up box vs an "equivalent"
//! scale-out cluster (16 × 2-core nodes, per-node disks/NICs/memory
//! buses), on time-to-result, utilization, and energy — the axes the
//! paper's conclusion says matter for this comparison.

use supmr_bench::results_dir;
use supmr_metrics::csv::CsvTable;
use supmr_sim::{
    scaleout_machine, simulate, simulate_scaleout, AppProfile, EnergyModel, JobModel, MachineSpec,
    ModelOutput, PipelineParams, ScaleOutParams,
};

struct Row {
    label: String,
    total_s: f64,
    busy_util: f64,
    avg_watts: f64,
    energy_wh: f64,
}

fn scale_up_row(profile: &AppProfile) -> Row {
    let machine = MachineSpec::paper_testbed(profile.disk_bandwidth);
    let out = simulate(
        JobModel::SupMr(PipelineParams { chunk_bytes: 1e9 }),
        profile,
        &machine,
        MachineSpec::DISK,
    );
    let energy = EnergyModel::paper_server().evaluate(&out.report, &machine);
    row(&out, energy.average_watts, energy.watt_hours())
}

fn scale_out_row(profile: &AppProfile, params: &ScaleOutParams) -> Row {
    let machine = scaleout_machine(params);
    let out = simulate_scaleout(profile, params);
    let per_node = EnergyModel::paper_server();
    // N chassis: N× the base draw; per-context draws unchanged.
    let cluster = EnergyModel { base_watts: per_node.base_watts * params.nodes as f64, ..per_node };
    let energy = cluster.evaluate(&out.report, &machine);
    row(&out, energy.average_watts, energy.watt_hours())
}

fn row(out: &ModelOutput, avg_watts: f64, energy_wh: f64) -> Row {
    Row {
        label: out.label.clone(),
        total_s: out.total_secs(),
        busy_util: out.report.trace.mean_busy_utilization(),
        avg_watts,
        energy_wh,
    }
}

fn main() {
    let params = ScaleOutParams::equivalent_cluster();
    println!(
        "== SupMR (1 box, 32 ctx, RAID-0) vs scale-out ({} nodes x {} cores, per-node disk/NIC) ==\n",
        params.nodes, params.cores_per_node
    );
    println!(
        "{:<32} {:>9} {:>10} {:>9} {:>10}",
        "configuration", "total_s", "busy_util%", "avg_W", "energy_Wh"
    );
    let mut csv = CsvTable::new(&[
        "app",
        "configuration",
        "total_s",
        "busy_util_pct",
        "avg_watts",
        "energy_wh",
    ]);
    for profile in [AppProfile::word_count_155gb(), AppProfile::sort_60gb()] {
        let rows = [scale_up_row(&profile), scale_out_row(&profile, &params)];
        for r in &rows {
            println!(
                "{:<32} {:>9.1} {:>10.1} {:>9.0} {:>10.1}",
                r.label, r.total_s, r.busy_util, r.avg_watts, r.energy_wh
            );
            csv.row(&[
                profile.name.to_string(),
                r.label.clone(),
                format!("{:.2}", r.total_s),
                format!("{:.2}", r.busy_util),
                format!("{:.1}", r.avg_watts),
                format!("{:.2}", r.energy_wh),
            ]);
        }
        println!(
            "  -> scale-out is {:.1}x faster but draws {:.1}x the power\n",
            rows[0].total_s / rows[1].total_s,
            rows[1].avg_watts / rows[0].avg_watts
        );
    }
    println!(
        "the paper's §VIII point: raw aggregate channels favour scale-out on wall-clock,\n\
         while utilization-per-watt favours the chunk-pipelined scale-up box."
    );
    let path = results_dir().join("scaleout_compare.csv");
    csv.write_to(&path).expect("write comparison CSV");
    println!("  data: {}", path.display());
}
