//! Spawn-per-wave vs persistent-pool ablation.
//!
//! Two measurements:
//!
//! 1. **Raw dispatch cost** — many tiny waves of trivial tasks, timing
//!    only thread provisioning + handoff. This is the §III-A2 "create
//!    thread / destroy thread" overhead the pipeline pays once per
//!    ingest chunk.
//! 2. **End-to-end word count** — unthrottled in-memory input (so
//!    compute, not the device, dominates) across chunk sizes. Small
//!    chunks mean many rounds, which is exactly where per-wave
//!    spawning compounds and a persistent pool should win.

use std::time::Instant;
use supmr::pool::{run_wave, PoolMode, WorkerPool};
use supmr::runtime::{Input, Job, JobConfig};
use supmr::Chunking;
use supmr_apps::WordCount;
use supmr_bench::results_dir;
use supmr_metrics::csv::CsvTable;
use supmr_storage::MemSource;
use supmr_workloads::{TextGen, TextGenConfig};

fn main() {
    let mut csv = CsvTable::new(&["experiment", "variant", "workers", "metric", "value"]);

    // --- 1: raw dispatch loop ---
    println!("== Spawn/join vs pool dispatch (1000 waves of trivial tasks) ==");
    println!("{:>8} {:>14} {:>14} {:>8}", "workers", "wave_us/round", "pool_us/round", "ratio");
    const ROUNDS: usize = 1000;
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            run_wave(workers, (0..workers as u64).collect(), |_, x| {
                std::hint::black_box(x);
            });
        }
        let wave_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;

        let pool = WorkerPool::new(workers);
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            pool.run((0..workers as u64).collect(), |_, x| {
                std::hint::black_box(x);
            });
        }
        let pool_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;

        println!("{:>8} {:>14.1} {:>14.1} {:>7.1}x", workers, wave_us, pool_us, wave_us / pool_us);
        csv.row(&[
            "dispatch".into(),
            "wave".into(),
            format!("{workers}"),
            "us_per_round".into(),
            format!("{wave_us:.2}"),
        ]);
        csv.row(&[
            "dispatch".into(),
            "pool".into(),
            format!("{workers}"),
            "us_per_round".into(),
            format!("{pool_us:.2}"),
        ]);
    }

    // --- 2: end-to-end word count, unthrottled ---
    println!("\n== End-to-end word count, 16MB in-memory (compute-bound) ==");
    println!(
        "{:>10} {:>12} {:>9} {:>8} {:>9} {:>8}",
        "chunk", "pool", "total_s", "rounds", "spawned", "reused"
    );
    let corpus = TextGen::new(TextGenConfig::default()).generate_bytes(1, 16 * 1024 * 1024);
    for chunk_kb in [64u64, 256, 1024] {
        for pool in [PoolMode::WavePerRound, PoolMode::Persistent] {
            let mut cfg = JobConfig {
                map_workers: 4,
                reduce_workers: 4,
                split_bytes: 16 * 1024,
                ..JobConfig::default()
            };
            cfg.chunking = Chunking::Inter { chunk_bytes: chunk_kb * 1024 };
            cfg.pool = pool;
            let r = Job::new(WordCount::new())
                .config(cfg)
                .run(Input::stream(MemSource::from(corpus.clone())))
                .unwrap();
            let total = r.report.timings.total().as_secs_f64();
            println!(
                "{:>9}K {:>12} {:>9.3} {:>8} {:>9} {:>8}",
                chunk_kb,
                format!("{pool}"),
                total,
                r.report.stats.map_rounds,
                r.report.stats.threads_spawned,
                r.report.stats.threads_reused
            );
            csv.row(&[
                "wordcount_e2e".into(),
                format!("{pool}"),
                format!("{chunk_kb}K"),
                "total_s".into(),
                format!("{total:.4}"),
            ]);
        }
    }
    println!("(small chunks = many rounds = many waves; the pool amortizes provisioning)");

    let path = results_dir().join("spawn_vs_pool.csv");
    csv.write_to(&path).expect("write spawn_vs_pool CSV");
    println!("\n  data: {}", path.display());
}
