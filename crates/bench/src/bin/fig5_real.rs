//! Real-execution counterpart of **Fig. 5**: run the actual runtime on
//! this machine with a throttled source and a live `/proc/stat`
//! sampler, and render the measured utilization traces for no-chunks
//! vs small-chunks vs large-chunks word count. The absolute numbers are
//! this machine's; the *shapes* should echo the paper: an IO-wait
//! trough then a compute block without chunking, interleaved
//! ingest+map activity with chunking.

use supmr_bench::{emit_figure, RealScale};
use supmr_metrics::trace::shape_correlation;

fn main() {
    let scale = RealScale {
        wordcount_bytes: 32 * 1024 * 1024,
        sort_bytes: 0,
        disk_rate: 16.0 * 1024.0 * 1024.0,
        workers: 4,
    };
    println!(
        "== Fig. 5 (real execution): word count {}MB @ {:.0} MB/s on this machine ==",
        scale.wordcount_bytes / (1024 * 1024),
        scale.disk_rate / (1024.0 * 1024.0)
    );
    let data = scale.wordcount_data();

    let runs = [
        ("fig5a_real_none", "real: no ingest chunks", None),
        ("fig5b_real_small", "real: 1MB ingest chunks", Some(1024 * 1024u64)),
        ("fig5c_real_large", "real: 8MB ingest chunks", Some(8 * 1024 * 1024u64)),
    ];
    let mut traces = Vec::new();
    for (name, title, chunk) in runs {
        let result = scale.run_wordcount(data.clone(), chunk);
        let trace = result.report.util.expect("sampling requested");
        println!();
        if trace.samples().len() < 4 {
            println!("{title}: (too few samples on this platform — skipping chart)");
        } else {
            emit_figure(name, title, &trace);
        }
        println!(
            "  total {:.2}s, chunks {}, mean busy {:.0}%, mean iowait-inclusive {:.0}%",
            result.report.timings.total().as_secs_f64(),
            result.report.stats.ingest_chunks,
            trace.mean_busy_utilization(),
            trace.mean_total_utilization(),
        );
        traces.push(trace);
    }

    if traces.iter().all(|t| t.samples().len() >= 4) {
        if let Some(r) = shape_correlation(&traces[1], &traces[2], 64) {
            println!("\nshape correlation small-vs-large chunk traces: {r:.2}");
        }
        if let Some(r) = shape_correlation(&traces[0], &traces[1], 64) {
            println!("shape correlation none-vs-small: {r:.2} (lower: different structure)");
        }
    }
}
