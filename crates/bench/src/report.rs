//! The `BENCH_*.json` regression harness.
//!
//! [`collect`] runs the canonical word count and sort workloads under
//! both runtimes (original and ingest pipeline) with a live metrics
//! [`Registry`] attached; [`to_json`] renders the results as
//! schema-stable JSON (`supmr.bench_report.v1`) so a committed baseline
//! (`BENCH_baseline.json` at the repo root, written by the
//! `bench_report` binary) diffs cleanly against future runs, and
//! [`validate`] rejects anything that drifts from the schema.
//!
//! Values (wall times, latency percentiles) vary run to run; the
//! *shape* — key names, run set, metric families — must not.

use crate::ablation::AblationCell;
use crate::map_path::MapRow;
use crate::shuffle::ShuffleRow;
use crate::RealScale;
use std::time::Duration;
use supmr::runtime::{Input, Job, JobConfig, JobReport, MergeMode};
use supmr::{Chunking, Registry};
use supmr_apps::{TeraSort, WordCount};
use supmr_metrics::Json;
use supmr_storage::{MemSource, ThrottledSource, TokenBucket};

/// Schema identifier written into (and required of) every report.
pub const BENCH_SCHEMA: &str = "supmr.bench_report.v1";

/// The four canonical runs, in report order.
pub const RUN_MATRIX: [(&str, &str); 4] = [
    ("wordcount", "original"),
    ("wordcount", "pipeline"),
    ("sort", "original"),
    ("sort", "pipeline"),
];

/// One benchmark execution: which cell of [`RUN_MATRIX`] it is, plus
/// the job's full report (with the final metrics snapshot attached).
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// `"wordcount"` or `"sort"`.
    pub workload: &'static str,
    /// `"original"` or `"pipeline"`.
    pub runtime: &'static str,
    /// The run's report; `report.metrics` is always `Some`.
    pub report: JobReport,
}

fn throttled(scale: &RealScale, data: Vec<u8>) -> Input {
    Input::stream(ThrottledSource::with_bucket(
        MemSource::from(data),
        TokenBucket::with_burst(scale.disk_rate, 256.0 * 1024.0),
    ))
}

fn run_cell(scale: &RealScale, workload: &'static str, runtime: &'static str) -> BenchRun {
    let pipeline = runtime == "pipeline";
    let registry = Registry::new();
    let report = match workload {
        "wordcount" => {
            let chunk = (scale.wordcount_bytes as u64 / 8).max(64 * 1024);
            let config = JobConfig {
                map_workers: scale.workers,
                reduce_workers: scale.workers,
                split_bytes: 256 * 1024,
                chunking: if pipeline {
                    Chunking::Inter { chunk_bytes: chunk }
                } else {
                    Chunking::None
                },
                merge: MergeMode::Unsorted,
                metrics: Some(registry),
                ..JobConfig::default()
            };
            Job::new(WordCount::new())
                .config(config)
                .run(throttled(scale, scale.wordcount_data()))
                .expect("bench word count run failed")
                .report
        }
        _ => {
            let chunk = (scale.sort_bytes as u64 / 8).max(64 * 1024);
            let config = JobConfig {
                map_workers: scale.workers,
                reduce_workers: scale.workers,
                split_bytes: 128 * 1024,
                record_format: TeraSort::record_format(),
                chunking: if pipeline {
                    Chunking::Inter { chunk_bytes: chunk }
                } else {
                    Chunking::None
                },
                merge: if pipeline {
                    MergeMode::PWay { ways: scale.workers.max(2) }
                } else {
                    MergeMode::PairwiseRounds
                },
                metrics: Some(registry),
                ..JobConfig::default()
            };
            Job::new(TeraSort::new())
                .config(config)
                .run(throttled(scale, scale.sort_data()))
                .expect("bench sort run failed")
                .report
        }
    };
    BenchRun { workload, runtime, report }
}

/// Execute the full [`RUN_MATRIX`] at `scale`.
pub fn collect(scale: &RealScale) -> Vec<BenchRun> {
    RUN_MATRIX.iter().map(|&(w, r)| run_cell(scale, w, r)).collect()
}

fn us(d: Duration) -> Json {
    Json::from(d.as_micros().min(u64::MAX as u128) as u64)
}

/// Render a report. `quick` records which scale produced it so a CI
/// fixture baseline is never diffed against a full-scale one. The
/// `shuffle` rows come from [`crate::shuffle::measure`], the `map` rows
/// from [`crate::map_path::measure`].
pub fn to_json(
    scale: &RealScale,
    runs: &[BenchRun],
    shuffle: &[ShuffleRow],
    map: &[MapRow],
    adaptive: &[AblationCell],
    quick: bool,
) -> Json {
    let scale_obj = Json::obj(vec![
        ("wordcount_bytes", Json::from(scale.wordcount_bytes as u64)),
        ("sort_bytes", Json::from(scale.sort_bytes as u64)),
        ("disk_rate", Json::Num(scale.disk_rate)),
        ("workers", Json::from(scale.workers as u64)),
    ]);
    let runs_json = runs
        .iter()
        .map(|r| {
            let metrics =
                r.report.metrics.as_ref().map(|m| m.to_json()).unwrap_or(Json::Arr(Vec::new()));
            let verdict = r.report.diag.as_ref().map_or("unclassified", |d| d.verdict.as_str());
            Json::obj(vec![
                ("workload", Json::str(r.workload)),
                ("runtime", Json::str(r.runtime)),
                ("verdict", Json::str(verdict)),
                ("wall_us", us(r.report.timings.total())),
                ("output_pairs", Json::from(r.report.stats.output_pairs)),
                ("ingest_chunks", Json::from(u64::from(r.report.stats.ingest_chunks))),
                ("map_waiting_us", us(r.report.stats.map_waiting)),
                ("ingest_waiting_us", us(r.report.stats.ingest_waiting)),
                ("metrics", metrics),
            ])
        })
        .collect();
    let shuffle_json = shuffle
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("workload", Json::str(r.workload)),
                ("pairs", Json::from(r.pairs)),
                ("baseline_pairs_per_s", Json::Num(r.baseline_pairs_per_s)),
                ("sharded_pairs_per_s", Json::Num(r.sharded_pairs_per_s)),
                ("speedup", Json::Num(r.speedup())),
            ])
        })
        .collect();
    let map_json = map
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("workload", Json::str(r.workload)),
                ("bytes", Json::from(r.bytes)),
                ("scalar_bytes_per_s", Json::Num(r.scalar_bytes_per_s)),
                ("swar_bytes_per_s", Json::Num(r.swar_bytes_per_s)),
                ("speedup", Json::Num(r.speedup())),
            ])
        })
        .collect();
    let adaptive_json = adaptive
        .iter()
        .map(|cell| {
            let statics = cell
                .statics
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("config", Json::str(s.config)),
                        ("wall_us", Json::from(s.wall_us)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("cell", Json::str(cell.cell)),
                ("disk_rate", Json::Num(cell.disk_rate)),
                ("static", Json::Arr(statics)),
                ("adaptive_wall_us", Json::from(cell.adaptive_wall_us)),
                ("governor_actions", Json::from(cell.governor_actions)),
                ("best_static_us", Json::from(cell.best_static_us())),
                ("worst_static_us", Json::from(cell.worst_static_us())),
                ("ratio_to_best", Json::Num(cell.ratio_to_best())),
                ("worst_over_adaptive", Json::Num(cell.worst_over_adaptive())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str(BENCH_SCHEMA)),
        ("quick", Json::Bool(quick)),
        ("scale", scale_obj),
        ("runs", Json::Arr(runs_json)),
        ("shuffle", Json::Arr(shuffle_json)),
        ("map", Json::Arr(map_json)),
        ("adaptive", Json::Arr(adaptive_json)),
    ])
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key).and_then(Json::as_f64).ok_or_else(|| format!("{ctx}: missing numeric '{key}'"))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key).and_then(Json::as_str).ok_or_else(|| format!("{ctx}: missing string '{key}'"))
}

/// Check that `json` is a structurally valid `supmr.bench_report.v1`
/// document: schema tag, scale block, the full run matrix, and
/// well-formed per-run metrics (histogram percentiles ordered
/// p50 ≤ p90 ≤ p99 ≤ max).
pub fn validate(json: &Json) -> Result<(), String> {
    if require_str(json, "schema", "report")? != BENCH_SCHEMA {
        return Err(format!("schema is not {BENCH_SCHEMA}"));
    }
    let scale = json.get("scale").ok_or("report: missing 'scale'")?;
    for key in ["wordcount_bytes", "sort_bytes", "disk_rate", "workers"] {
        require_num(scale, key, "scale")?;
    }
    let runs = json.get("runs").and_then(Json::as_arr).ok_or("report: missing 'runs' array")?;
    let mut seen: Vec<(String, String)> = Vec::new();
    for run in runs {
        let workload = require_str(run, "workload", "run")?;
        let runtime = require_str(run, "runtime", "run")?;
        let ctx = format!("run {workload}/{runtime}");
        // `verdict` (the supmr.diag classification) is optional so
        // baselines from before the diagnosis era still validate, but
        // when present it must be a non-empty string.
        if let Some(v) = run.get("verdict") {
            match v.as_str() {
                Some(s) if !s.is_empty() => {}
                _ => return Err(format!("{ctx}: 'verdict' must be a non-empty string")),
            }
        }
        for key in
            ["wall_us", "output_pairs", "ingest_chunks", "map_waiting_us", "ingest_waiting_us"]
        {
            require_num(run, key, &ctx)?;
        }
        let metrics =
            run.get("metrics").and_then(Json::as_arr).ok_or(format!("{ctx}: missing metrics"))?;
        if metrics.is_empty() {
            return Err(format!("{ctx}: empty metrics snapshot"));
        }
        for entry in metrics {
            let name = require_str(entry, "name", &ctx)?;
            let kind = require_str(entry, "kind", &ctx)?;
            let value = entry.get("value").ok_or(format!("{ctx}: {name}: missing value"))?;
            if kind == "histogram" {
                let ectx = format!("{ctx}: {name}");
                let (p50, p90) =
                    (require_num(value, "p50", &ectx)?, require_num(value, "p90", &ectx)?);
                let (p99, max) =
                    (require_num(value, "p99", &ectx)?, require_num(value, "max", &ectx)?);
                require_num(value, "count", &ectx)?;
                require_num(value, "sum", &ectx)?;
                require_num(value, "mean", &ectx)?;
                if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
                    return Err(format!("{ectx}: percentiles not ordered"));
                }
            } else if value.as_f64().is_none() {
                return Err(format!("{ctx}: {name}: non-numeric {kind}"));
            }
        }
        seen.push((workload.to_string(), runtime.to_string()));
    }
    for (w, r) in RUN_MATRIX {
        if !seen.iter().any(|(sw, sr)| sw == w && sr == r) {
            return Err(format!("run matrix incomplete: missing {w}/{r}"));
        }
    }
    let shuffle =
        json.get("shuffle").and_then(Json::as_arr).ok_or("report: missing 'shuffle' array")?;
    let mut shuffled: Vec<&str> = Vec::new();
    for row in shuffle {
        let workload = require_str(row, "workload", "shuffle")?;
        let ctx = format!("shuffle {workload}");
        for key in ["pairs", "baseline_pairs_per_s", "sharded_pairs_per_s", "speedup"] {
            if require_num(row, key, &ctx)? <= 0.0 {
                return Err(format!("{ctx}: '{key}' must be positive"));
            }
        }
        shuffled.push(workload);
    }
    for w in ["wordcount", "sort"] {
        if !shuffled.contains(&w) {
            return Err(format!("shuffle rows incomplete: missing {w}"));
        }
    }
    let map = json.get("map").and_then(Json::as_arr).ok_or("report: missing 'map' array")?;
    let mut mapped: Vec<&str> = Vec::new();
    for row in map {
        let workload = require_str(row, "workload", "map")?;
        let ctx = format!("map {workload}");
        for key in ["bytes", "scalar_bytes_per_s", "swar_bytes_per_s", "speedup"] {
            if require_num(row, key, &ctx)? <= 0.0 {
                return Err(format!("{ctx}: '{key}' must be positive"));
            }
        }
        mapped.push(workload);
    }
    for w in ["wordcount", "wordcount_ci"] {
        if !mapped.contains(&w) {
            return Err(format!("map rows incomplete: missing {w}"));
        }
    }
    // The governor ablation is optional so baselines from before the
    // adaptive era still validate, but when present each cell must
    // carry the full comparison.
    if let Some(adaptive) = json.get("adaptive") {
        let cells = adaptive.as_arr().ok_or("report: 'adaptive' must be an array")?;
        for cell in cells {
            let name = require_str(cell, "cell", "adaptive")?;
            let ctx = format!("adaptive {name}");
            let statics = cell
                .get("static")
                .and_then(Json::as_arr)
                .ok_or(format!("{ctx}: missing static"))?;
            if statics.is_empty() {
                return Err(format!("{ctx}: no static runs"));
            }
            for s in statics {
                require_str(s, "config", &ctx)?;
                if require_num(s, "wall_us", &ctx)? <= 0.0 {
                    return Err(format!("{ctx}: static wall_us must be positive"));
                }
            }
            for key in ["disk_rate", "adaptive_wall_us", "best_static_us", "worst_static_us"] {
                if require_num(cell, key, &ctx)? <= 0.0 {
                    return Err(format!("{ctx}: '{key}' must be positive"));
                }
            }
            require_num(cell, "governor_actions", &ctx)?;
            for key in ["ratio_to_best", "worst_over_adaptive"] {
                if require_num(cell, key, &ctx)? <= 0.0 {
                    return Err(format!("{ctx}: '{key}' must be positive"));
                }
            }
        }
    }
    Ok(())
}

/// Parse and [`validate`] report text (file contents).
pub fn validate_text(text: &str) -> Result<(), String> {
    validate(&Json::parse(text)?)
}

/// Allowed map-task latency growth over the baseline: the CI gate fails
/// when a fresh report's mean `supmr.map.task_us` exceeds the committed
/// baseline's by more than 10%.
pub const MAP_TASK_HEADROOM: f64 = 1.10;

/// Absolute slack added on top of the headroom, microseconds — absorbs
/// scheduler/timer noise on short tasks without hiding a real
/// regression on the multi-millisecond means the gate watches.
const MAP_TASK_SLACK_US: f64 = 500.0;

/// Mean `supmr.map.task_us` of one run cell in a report document.
fn map_task_mean(json: &Json, workload: &str, runtime: &str) -> Result<f64, String> {
    let runs = json.get("runs").and_then(Json::as_arr).ok_or("report: missing 'runs'")?;
    let run = runs
        .iter()
        .find(|r| {
            r.get("workload").and_then(Json::as_str) == Some(workload)
                && r.get("runtime").and_then(Json::as_str) == Some(runtime)
        })
        .ok_or_else(|| format!("missing run {workload}/{runtime}"))?;
    let metrics = run
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{workload}/{runtime}: missing metrics"))?;
    metrics
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("supmr.map.task_us"))
        .and_then(|e| e.get("value"))
        .and_then(|v| v.get("mean"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{workload}/{runtime}: no supmr.map.task_us mean"))
}

/// The `bench_report --check` regression gate: compare `current`'s mean
/// map-task latency against `baseline`'s for the word-count cells (the
/// text map path this gate protects), failing any cell more than
/// [`MAP_TASK_HEADROOM`] (plus a small absolute slack) slower.
///
/// Means are comparable across the quick and full scales because both
/// use the same split size — only the task *count* differs.
///
/// Returns one human-readable line per compared cell; `Err` carries the
/// first regression (or malformed report) found.
pub fn check_map_regression(current: &Json, baseline: &Json) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    for (workload, runtime) in RUN_MATRIX {
        if workload != "wordcount" {
            continue;
        }
        let base = map_task_mean(baseline, workload, runtime)?;
        let now = map_task_mean(current, workload, runtime)?;
        let limit = base * MAP_TASK_HEADROOM + MAP_TASK_SLACK_US;
        if now > limit {
            return Err(format!(
                "map_task_us regression in {workload}/{runtime}: \
                 mean {now:.0}us exceeds baseline {base:.0}us by more than 10% \
                 (limit {limit:.0}us)"
            ));
        }
        lines.push(format!(
            "  check {workload}/{runtime}: map_task_us mean {now:.0}us \
             <= limit {limit:.0}us (baseline {base:.0}us)"
        ));
    }
    Ok(lines)
}

/// Allowed growth of an adaptive cell's `ratio_to_best` over the
/// baseline's before the CI gate fails: 10% relative headroom plus a
/// small absolute slack (ratios sit near 1.0, where scheduler noise on
/// sub-second CI cells easily moves the third decimal place).
pub const ADAPTIVE_RATIO_HEADROOM: f64 = 1.10;
const ADAPTIVE_RATIO_SLACK: f64 = 0.15;

fn adaptive_ratio(json: &Json, cell: &str) -> Result<f64, String> {
    let cells =
        json.get("adaptive").and_then(Json::as_arr).ok_or("report: missing 'adaptive' rows")?;
    cells
        .iter()
        .find(|c| c.get("cell").and_then(Json::as_str) == Some(cell))
        .ok_or_else(|| format!("missing adaptive cell '{cell}'"))
        .and_then(|c| require_num(c, "ratio_to_best", &format!("adaptive {cell}")))
}

/// The `bench_report --check` gate for the governor ablation: for every
/// cell in `baseline`'s `"adaptive"` rows, fail if `current`'s
/// adaptive-vs-best-static ratio regressed past
/// [`ADAPTIVE_RATIO_HEADROOM`] (plus absolute slack). Comparing ratios
/// rather than wall times keeps the gate meaningful across machines of
/// different speeds.
pub fn check_adaptive_regression(current: &Json, baseline: &Json) -> Result<Vec<String>, String> {
    let cells = baseline
        .get("adaptive")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing 'adaptive' rows (regenerate BENCH_baseline.json)")?;
    let mut lines = Vec::new();
    for cell in cells {
        let name = require_str(cell, "cell", "adaptive baseline")?;
        let base = require_num(cell, "ratio_to_best", &format!("adaptive baseline {name}"))?;
        let now = adaptive_ratio(current, name)?;
        let limit = base * ADAPTIVE_RATIO_HEADROOM + ADAPTIVE_RATIO_SLACK;
        if now > limit {
            return Err(format!(
                "adaptive regression in cell '{name}': ratio_to_best {now:.3} exceeds \
                 baseline {base:.3} by more than 10% (limit {limit:.3})"
            ));
        }
        lines.push(format!(
            "  check adaptive/{name}: ratio_to_best {now:.3} <= limit {limit:.3} \
             (baseline {base:.3})"
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::StaticRun;

    /// A synthetic but shape-complete ablation cell (the real matrix is
    /// exercised by `ablation::tests`; re-running it here would double
    /// the suite's wall time for no coverage).
    fn ablation_cells() -> Vec<AblationCell> {
        vec![AblationCell {
            cell: "choked",
            disk_rate: 1024.0 * 1024.0,
            statics: vec![
                StaticRun { config: "lean", wall_us: 100_000 },
                StaticRun { config: "starved", wall_us: 250_000 },
            ],
            adaptive_wall_us: 104_000,
            governor_actions: 3,
        }]
    }

    #[test]
    fn quick_report_round_trips_and_validates() {
        let scale = RealScale::tiny();
        let runs = collect(&scale);
        assert_eq!(runs.len(), RUN_MATRIX.len());
        for run in &runs {
            assert!(run.report.metrics.is_some(), "{}/{} has metrics", run.workload, run.runtime);
        }
        let shuffle = crate::shuffle::measure(true);
        let map = crate::map_path::measure(true);
        let json = to_json(&scale, &runs, &shuffle, &map, &ablation_cells(), true);
        validate(&json).expect("fresh report validates");
        // Every cell ran under the diagnosed runtime, so every cell
        // carries a real (non-placeholder) classification.
        for run in json.get("runs").and_then(Json::as_arr).unwrap() {
            let verdict = run.get("verdict").and_then(Json::as_str).expect("verdict present");
            assert_ne!(verdict, "unclassified", "{run:?}");
        }
        let text = json.render();
        validate_text(&text).expect("rendered text re-parses and validates");
        // Dropping the shuffle or map sections is schema drift.
        let gutted = text.replace("\"shuffle\":", "\"shuffle_gone\":");
        assert!(validate_text(&gutted).unwrap_err().contains("shuffle"));
        let gutted = text.replace("\"map\":", "\"map_gone\":");
        assert!(validate_text(&gutted).unwrap_err().contains("map"));
        // A verdict that is not a string is drift, not a value change.
        let bad_verdict = text.replacen("\"verdict\":\"", "\"verdict\":0,\"was\":\"", 1);
        assert!(validate_text(&bad_verdict).unwrap_err().contains("verdict"));

        // A report is always within 10% of itself.
        let lines = check_map_regression(&json, &json).expect("self-comparison passes");
        assert_eq!(lines.len(), 2, "both wordcount cells compared");
        let lines = check_adaptive_regression(&json, &json).expect("adaptive self-check passes");
        assert_eq!(lines.len(), 1, "one ablation cell compared");
        // Gutting a required ablation field is drift, not a value change.
        let gutted = text.replace("\"ratio_to_best\":", "\"ratio_gone\":");
        assert!(validate_text(&gutted).unwrap_err().contains("ratio_to_best"));
    }

    /// A minimal document carrying just what [`adaptive_ratio`] reads.
    fn adaptive_doc(ratio: f64) -> Json {
        Json::obj(vec![(
            "adaptive",
            Json::Arr(vec![Json::obj(vec![
                ("cell", Json::str("choked")),
                ("ratio_to_best", Json::Num(ratio)),
            ])]),
        )])
    }

    #[test]
    fn adaptive_regression_gate_trips_past_the_headroom() {
        let baseline = adaptive_doc(1.00);
        // Inside 1.10x + slack: passes.
        check_adaptive_regression(&adaptive_doc(1.20), &baseline).expect("within headroom");
        // Past it: fails, naming the cell.
        let err = check_adaptive_regression(&adaptive_doc(1.30), &baseline).unwrap_err();
        assert!(err.contains("adaptive regression in cell 'choked'"), "{err}");
        // A baseline without adaptive rows is an error, not a pass.
        assert!(check_adaptive_regression(&adaptive_doc(1.0), &Json::obj(vec![])).is_err());
    }

    /// A minimal document carrying just what [`map_task_mean`] reads.
    fn gate_doc(mean_us: f64) -> Json {
        let cell = |workload: &str, runtime: &str| {
            Json::obj(vec![
                ("workload", Json::str(workload)),
                ("runtime", Json::str(runtime)),
                (
                    "metrics",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::str("supmr.map.task_us")),
                        ("kind", Json::str("histogram")),
                        ("value", Json::obj(vec![("mean", Json::Num(mean_us))])),
                    ])]),
                ),
            ])
        };
        Json::obj(vec![(
            "runs",
            Json::Arr(vec![cell("wordcount", "original"), cell("wordcount", "pipeline")]),
        )])
    }

    #[test]
    fn map_regression_gate_trips_past_the_headroom() {
        let baseline = gate_doc(10_000.0);
        // Inside 1.10x + slack: passes.
        check_map_regression(&gate_doc(11_400.0), &baseline).expect("within headroom");
        // Past it: fails, naming the metric.
        let err = check_map_regression(&gate_doc(11_600.0), &baseline).unwrap_err();
        assert!(err.contains("map_task_us regression"), "{err}");
        // Malformed baselines are errors, not silent passes.
        assert!(check_map_regression(&gate_doc(1.0), &Json::obj(vec![])).is_err());
    }

    #[test]
    fn validator_rejects_drift() {
        assert!(validate_text("{}").is_err(), "empty object");
        assert!(validate_text("not json").is_err(), "parse failure");
        let wrong_schema = r#"{"schema": "supmr.bench_report.v2", "scale": {}, "runs": []}"#;
        assert!(validate_text(wrong_schema).unwrap_err().contains("schema"));
        let missing_runs = format!(
            r#"{{"schema": "{BENCH_SCHEMA}", "quick": true,
                "scale": {{"wordcount_bytes": 1, "sort_bytes": 1, "disk_rate": 1.0, "workers": 1}},
                "runs": []}}"#
        );
        assert!(validate_text(&missing_runs).unwrap_err().contains("matrix incomplete"));
    }

    #[test]
    fn committed_baseline_validates() {
        // The repo root carries the baseline the CI regression job diffs
        // against; it must always parse under the current schema.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
        let text = std::fs::read_to_string(path).expect("BENCH_baseline.json exists at repo root");
        validate_text(&text).expect("committed baseline validates");
    }
}
