//! Registry overhead budget.
//!
//! DESIGN.md §3e budgets live metrics at under 2% of wall-clock on the
//! pool-dispatch microbenchmark (the hottest instrumented path: one
//! gauge pair, one histogram record, one counter per task). Timing that
//! tightly in a shared-CI test would flake, so the assertion uses a
//! deliberately generous margin — it exists to catch a *pathological*
//! regression (a lock or allocation sneaking onto the record path), not
//! to re-measure the budget. The precise number comes from running
//! `spawn_vs_pool` with and without `--metrics-*` by hand.

use std::time::{Duration, Instant};
use supmr::pool::{PoolMetrics, WorkerPool};
use supmr::Registry;
use supmr_metrics::{MetricValue, Tracer};

const WORKERS: usize = 2;
const ROUNDS: usize = 200;

/// Dispatch `ROUNDS` small waves; each task does a few microseconds of
/// arithmetic, the floor a real map task sits far above.
fn dispatch_loop(pool: &WorkerPool) -> Duration {
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        pool.run((0..WORKERS as u64).collect(), |_, x| {
            let mut acc = x;
            for i in 0..2_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
    }
    t0.elapsed()
}

#[test]
fn registry_overhead_is_within_budget() {
    let plain = WorkerPool::new(WORKERS);
    let registry = Registry::new();
    let metrics = PoolMetrics::register(&registry);
    let instrumented = WorkerPool::new_instrumented(WORKERS, Tracer::off(), Some(metrics));

    // Interleave and keep the minimum of each: the minimum discards
    // scheduler noise, interleaving discards thermal drift.
    let mut best_plain = Duration::MAX;
    let mut best_instrumented = Duration::MAX;
    for _ in 0..5 {
        best_plain = best_plain.min(dispatch_loop(&plain));
        best_instrumented = best_instrumented.min(dispatch_loop(&instrumented));
    }

    let budget = best_plain.mul_f64(1.5) + Duration::from_millis(50);
    assert!(
        best_instrumented <= budget,
        "instrumented dispatch {best_instrumented:?} vs plain {best_plain:?} \
         (allowed {budget:?}): metrics handles cost far more than budgeted"
    );

    // The comparison is meaningless if the instrumented pool did not
    // actually record anything.
    let snap = registry.snapshot();
    let dispatch = snap
        .entries
        .iter()
        .find(|e| e.name == "supmr.pool.dispatch_us")
        .expect("dispatch histogram registered");
    match &dispatch.value {
        MetricValue::Histogram(h) => {
            assert_eq!(h.count, (5 * ROUNDS * WORKERS) as u64, "one record per dispatched task")
        }
        other => panic!("dispatch_us is a histogram, got {other:?}"),
    }
}
