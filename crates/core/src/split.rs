//! Input splits: the unit of map-task work inside an ingest chunk.
//!
//! In the traditional runtime the whole input is partitioned into input
//! splits and each map thread processes one split; with the ingest chunk
//! pipeline the same partitioning happens *per chunk* ("the ingest chunk
//! pipeline operates on a single ingest chunk instead of the entire
//! input"). Splits are record-aligned so a map callback never sees a
//! torn record, and they respect chunk segments (intra-file chunks never
//! merge two files into one split).

use crate::chunk::IngestChunk;
use std::ops::Range;
use supmr_storage::RecordFormat;

/// Compute record-aligned split ranges for one contiguous byte region.
///
/// Every byte lands in exactly one split; splits are at least one record
/// long and approximately `split_bytes` big.
///
/// # Panics
/// Panics if `split_bytes == 0`.
pub fn split_ranges(data: &[u8], split_bytes: usize, format: RecordFormat) -> Vec<Range<usize>> {
    assert!(split_bytes > 0, "split size must be non-zero");
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let want = (pos + split_bytes).min(data.len());
        let end = format.adjust_split_point(data, want);
        debug_assert!(end > pos, "split made no progress");
        out.push(pos..end);
        pos = end;
    }
    out
}

/// Compute the split ranges of a whole ingest chunk, segment by segment.
/// Returned ranges index into `chunk.data`.
pub fn chunk_splits(
    chunk: &IngestChunk,
    split_bytes: usize,
    format: RecordFormat,
) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for seg in &chunk.segments {
        for r in split_ranges(&chunk.data[seg.clone()], split_bytes, format) {
            out.push(seg.start + r.start..seg.start + r.end);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(n: usize) -> Vec<u8> {
        (0..n).flat_map(|i| format!("line-{i:04}\n").into_bytes()).collect()
    }

    #[test]
    fn splits_partition_without_loss() {
        let data = lines(100); // 10 bytes per line
        let splits = split_ranges(&data, 64, RecordFormat::Newline);
        assert!(splits.len() > 1);
        let mut pos = 0;
        for s in &splits {
            assert_eq!(s.start, pos, "splits must be contiguous");
            pos = s.end;
            assert_eq!(data[s.end - 1], b'\n');
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn splits_are_record_aligned() {
        let data = lines(50);
        for s in split_ranges(&data, 33, RecordFormat::Newline) {
            assert_eq!((s.end - s.start) % 10, 0, "whole 10-byte records only");
        }
    }

    #[test]
    fn single_split_when_data_smaller_than_split_size() {
        let data = lines(3);
        let splits = split_ranges(&data, 1_000_000, RecordFormat::Newline);
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0], 0..30);
    }

    #[test]
    fn empty_data_no_splits() {
        assert!(split_ranges(&[], 64, RecordFormat::Newline).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_split_size_rejected() {
        split_ranges(b"x\n", 0, RecordFormat::Newline);
    }

    #[test]
    fn chunk_splits_respect_segments() {
        // Two segments (two files); splits must not cross the segment
        // boundary even though the bytes are contiguous.
        let data = b"aaaa\nbb\nCCCC\nDD\n".to_vec();
        let chunk =
            IngestChunk { index: 0, offset: 0, segments: vec![0..8, 8..16], data: data.into() };
        let splits = chunk_splits(&chunk, 1000, RecordFormat::Newline);
        assert_eq!(splits, vec![0..8, 8..16]);
    }

    #[test]
    fn chunk_splits_split_large_segments() {
        let data = lines(40); // 400 bytes
        #[allow(clippy::single_range_in_vec_init)] // one segment covering the chunk
        let chunk =
            IngestChunk { index: 0, offset: 0, segments: vec![0..data.len()], data: data.into() };
        let splits = chunk_splits(&chunk, 100, RecordFormat::Newline);
        assert_eq!(splits.len(), 4);
        assert_eq!(splits.iter().map(|s| s.end - s.start).sum::<usize>(), 400);
    }

    #[test]
    fn fixed_width_splits() {
        let data = vec![0u8; 1000];
        let splits = split_ranges(&data, 256, RecordFormat::FixedWidth(100));
        for s in &splits {
            assert_eq!(s.start % 100, 0);
        }
        assert_eq!(splits.last().unwrap().end, 1000);
    }
}
