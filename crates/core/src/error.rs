//! The typed error surface of the runtime.
//!
//! Every fallible runtime entry point ([`Job::run`](crate::Job::run),
//! [`Pipeline::run`](crate::Pipeline::run)) returns [`SupmrError`] instead of a
//! bare [`io::Error`], so callers can tell a retryable storage fault
//! ([`SupmrError::Ingest`]) apart from a configuration bug
//! ([`SupmrError::InvalidConfig`]) or a crashed user task
//! ([`SupmrError::TaskPanic`]) without string matching.

use std::fmt;
use std::io;

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, SupmrError>;

/// Why a job failed.
#[derive(Debug)]
pub enum SupmrError {
    /// The [`JobConfig`](crate::JobConfig) (or its pairing with the
    /// input shape) is invalid. Not retryable: the job can never run as
    /// configured.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// Reading input from primary storage failed. Retryable when the
    /// underlying I/O condition is ([`SupmrError::is_retryable`]).
    Ingest {
        /// Ingest chunk being read when the fault hit; `None` when the
        /// fault predates chunk assignment (e.g. whole-input ingest
        /// planning).
        chunk: Option<u32>,
        /// The storage-level fault.
        source: io::Error,
    },
    /// The merge phase could not combine the reduce outputs.
    Merge {
        /// What went wrong.
        message: String,
    },
    /// A user map/reduce task panicked; the runtime caught the unwind
    /// and failed the job instead of aborting the process.
    TaskPanic {
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The job was cooperatively cancelled mid-run (a serve-daemon
    /// `DELETE /jobs/{id}`, or any holder of the job's `ActiveConfig`
    /// calling `cancel()`). Not retryable: someone asked for the stop.
    Cancelled,
}

impl SupmrError {
    /// Shorthand for an [`SupmrError::InvalidConfig`].
    pub fn invalid_config(message: impl Into<String>) -> SupmrError {
        SupmrError::InvalidConfig { message: message.into() }
    }

    /// Shorthand for an [`SupmrError::Ingest`] attributed to a chunk.
    pub fn ingest(chunk: u32, source: io::Error) -> SupmrError {
        SupmrError::Ingest { chunk: Some(chunk), source }
    }

    /// The underlying [`io::ErrorKind`], when this error wraps an I/O
    /// fault. Config, merge, and panic errors return `None`.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            SupmrError::Ingest { source, .. } => Some(source.kind()),
            _ => None,
        }
    }

    /// Whether retrying the job might succeed: true only for ingest
    /// faults whose I/O condition is transient (interrupted calls,
    /// timeouts, exhausted connections).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.io_kind(),
            Some(
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
            )
        )
    }
}

impl fmt::Display for SupmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupmrError::InvalidConfig { message } => write!(f, "invalid job config: {message}"),
            SupmrError::Ingest { chunk: Some(c), source } => {
                write!(f, "ingest of chunk {c} failed: {source}")
            }
            SupmrError::Ingest { chunk: None, source } => write!(f, "ingest failed: {source}"),
            SupmrError::Merge { message } => write!(f, "merge failed: {message}"),
            SupmrError::TaskPanic { payload } => write!(f, "a task panicked: {payload}"),
            SupmrError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for SupmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupmrError::Ingest { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for SupmrError {
    fn from(source: io::Error) -> SupmrError {
        SupmrError::Ingest { chunk: None, source }
    }
}

/// Render a caught panic payload as a string (the common `&str` and
/// `String` payloads verbatim, anything else a placeholder).
pub(crate) fn panic_payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_includes_context() {
        let e = SupmrError::ingest(3, io::Error::new(io::ErrorKind::TimedOut, "disk gone"));
        assert_eq!(e.to_string(), "ingest of chunk 3 failed: disk gone");
        assert!(SupmrError::invalid_config("bad").to_string().contains("bad"));
        let p = SupmrError::TaskPanic { payload: "boom".into() };
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn io_kind_surfaces_only_for_ingest() {
        let e = SupmrError::ingest(0, io::Error::from(io::ErrorKind::NotFound));
        assert_eq!(e.io_kind(), Some(io::ErrorKind::NotFound));
        assert_eq!(SupmrError::invalid_config("x").io_kind(), None);
        assert_eq!(SupmrError::TaskPanic { payload: String::new() }.io_kind(), None);
    }

    #[test]
    fn retryability_tracks_transient_io_kinds() {
        let transient = SupmrError::ingest(0, io::Error::from(io::ErrorKind::Interrupted));
        assert!(transient.is_retryable());
        let permanent = SupmrError::ingest(0, io::Error::from(io::ErrorKind::NotFound));
        assert!(!permanent.is_retryable());
        assert!(!SupmrError::invalid_config("x").is_retryable());
    }

    #[test]
    fn source_chains_to_the_io_error() {
        let e = SupmrError::ingest(1, io::Error::from(io::ErrorKind::UnexpectedEof));
        assert!(e.source().is_some());
        assert!(SupmrError::Merge { message: "m".into() }.source().is_none());
    }

    #[test]
    fn from_io_error_has_no_chunk() {
        let e: SupmrError = io::Error::from(io::ErrorKind::PermissionDenied).into();
        match e {
            SupmrError::Ingest { chunk: None, source } => {
                assert_eq!(source.kind(), io::ErrorKind::PermissionDenied);
            }
            other => panic!("unexpected variant: {other:?}"),
        }
    }

    #[test]
    fn panic_payloads_render() {
        assert_eq!(panic_payload_string(Box::new("oops")), "oops");
        assert_eq!(panic_payload_string(Box::new("owned".to_string())), "owned");
        assert_eq!(panic_payload_string(Box::new(42u32)), "non-string panic payload");
    }
}
