//! Hybrid inter/intra-file chunking.
//!
//! Real input directories mix file sizes: a Hadoop output directory can
//! hold thousands of small part files next to multi-gigabyte ones. The
//! paper names "a hybrid inter/intra-file chunking approach" as a more
//! complicated abstraction it did not implement (§III-A1). This chunker
//! implements it: files are packed into chunks **by bytes** — small
//! files coalesce (intra-file behaviour) until the target size is
//! reached, and a file bigger than the target is split at record
//! boundaries (inter-file behaviour), so every chunk is close to the
//! target size regardless of the directory's shape.

use super::{Chunker, IngestChunk};
use std::io;
use std::ops::Range;
use supmr_storage::{FileSet, RecordFormat, SharedBytes};

/// Byte-targeted chunking over a [`FileSet`] with mixed file sizes.
pub struct HybridChunker<F> {
    files: F,
    chunk_bytes: u64,
    format: RecordFormat,
    /// Next file to read.
    next_file: usize,
    /// Remainder of a large file currently being split, with its
    /// consumed-prefix position.
    carry: Option<(Vec<u8>, usize)>,
    index: usize,
    offset: u64,
}

impl<F: FileSet> HybridChunker<F> {
    /// Pack `files` into ~`chunk_bytes` chunks, splitting oversized
    /// files at `format` record boundaries.
    ///
    /// # Panics
    /// Panics if `chunk_bytes == 0`.
    pub fn new(files: F, chunk_bytes: u64, format: RecordFormat) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        HybridChunker { files, chunk_bytes, format, next_file: 0, carry: None, index: 0, offset: 0 }
    }

    /// Take up to `want` bytes (extended to a record boundary) from a
    /// buffer starting at `pos`; returns the slice end.
    fn cut(&self, buf: &[u8], pos: usize, want: usize) -> usize {
        let target = (pos + want).min(buf.len());
        if target == buf.len() {
            return target;
        }
        self.format.adjust_split_point(buf, target)
    }
}

impl<F: FileSet> Chunker for HybridChunker<F> {
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk>> {
        let target = self.chunk_bytes as usize;
        let mut data: Vec<u8> = Vec::new();
        let mut segments: Vec<Range<usize>> = Vec::new();

        loop {
            let room = target.saturating_sub(data.len());
            if room == 0 && !data.is_empty() {
                break;
            }
            // Drain a carried large-file remainder first.
            if let Some((buf, pos)) = self.carry.take() {
                let end = self.cut(&buf, pos, room.max(1));
                let start = data.len();
                data.extend_from_slice(&buf[pos..end]);
                segments.push(start..data.len());
                if end < buf.len() {
                    self.carry = Some((buf, end));
                    break; // chunk is full (or target met) with more to carry
                }
                continue;
            }
            if self.next_file >= self.files.file_count() {
                break;
            }
            // Peek the next file's size before reading: if this chunk
            // already holds data and the file would overflow the target
            // by more than the target itself, close the chunk first so
            // chunks stay near-target.
            let flen = self.files.file_len(self.next_file) as usize;
            if !data.is_empty() && data.len() + flen > 2 * target {
                break;
            }
            let buf = self.files.read_file(self.next_file)?;
            self.next_file += 1;
            if buf.len() > target {
                // Oversized file: split it; first piece goes here.
                self.carry = Some((buf, 0));
                continue;
            }
            let start = data.len();
            data.extend_from_slice(&buf);
            segments.push(start..data.len());
        }

        if data.is_empty() {
            return Ok(None);
        }
        let chunk = IngestChunk {
            index: self.index,
            offset: self.offset,
            data: SharedBytes::from(data),
            segments,
        };
        self.index += 1;
        self.offset += chunk.data.len() as u64;
        Ok(Some(chunk))
    }

    fn total_bytes(&self) -> u64 {
        self.files.total_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr_storage::MemFileSet;

    fn lines(n: usize, tag: u8) -> Vec<u8> {
        (0..n).flat_map(|i| format!("{}{i:06}\n", tag as char).into_bytes()).collect()
    }

    fn drain(mut c: impl Chunker) -> Vec<IngestChunk> {
        let mut out = Vec::new();
        while let Some(chunk) = c.next_chunk().unwrap() {
            out.push(chunk);
        }
        out
    }

    fn reassemble(chunks: &[IngestChunk]) -> Vec<u8> {
        chunks.iter().flat_map(|c| c.data.to_vec()).collect()
    }

    #[test]
    fn small_files_coalesce_like_intra() {
        // 10 files of 80 bytes, 200-byte chunks: 2 files and change per
        // chunk.
        let files: Vec<Vec<u8>> = (0..10).map(|i| lines(10, b'a' + i)).collect();
        let total: Vec<u8> = files.iter().flatten().copied().collect();
        let chunks = drain(HybridChunker::new(MemFileSet::new(files), 200, RecordFormat::Newline));
        assert_eq!(reassemble(&chunks), total);
        // Every chunk except possibly the final remainder coalesces
        // several files.
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.segments.len() >= 2, "small files must coalesce: {:?}", c.segments);
        }
    }

    #[test]
    fn oversized_file_splits_like_inter() {
        // One 8KB file, 1KB chunks.
        let big = lines(1000, b'x');
        let total = big.clone();
        let chunks =
            drain(HybridChunker::new(MemFileSet::new(vec![big]), 1024, RecordFormat::Newline));
        assert!(chunks.len() >= 7);
        assert_eq!(reassemble(&chunks), total);
        for c in &chunks {
            assert_eq!(*c.data.last().unwrap(), b'\n', "splits at record boundaries");
        }
    }

    #[test]
    fn mixed_directory_produces_near_target_chunks() {
        // Mix: small (80B), huge (4KB), small, small, huge.
        let files = vec![
            lines(10, b'a'),
            lines(500, b'b'),
            lines(10, b'c'),
            lines(10, b'd'),
            lines(500, b'e'),
        ];
        let total: Vec<u8> = files.iter().flatten().copied().collect();
        let target = 512usize;
        let chunks =
            drain(HybridChunker::new(MemFileSet::new(files), target as u64, RecordFormat::Newline));
        assert_eq!(reassemble(&chunks), total);
        for (i, c) in chunks.iter().enumerate() {
            assert!(
                c.len() <= 2 * target + 16 || c.segments.len() == 1,
                "chunk {i} too large: {}",
                c.len()
            );
        }
        // Offsets and indices are consistent.
        let mut offset = 0;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.offset, offset);
            offset += c.len() as u64;
        }
    }

    #[test]
    fn empty_set_and_empty_files() {
        assert!(drain(HybridChunker::new(MemFileSet::new(vec![]), 100, RecordFormat::Newline))
            .is_empty());
        let files = vec![Vec::new(), lines(5, b'a'), Vec::new()];
        let total: Vec<u8> = files.iter().flatten().copied().collect();
        let chunks = drain(HybridChunker::new(MemFileSet::new(files), 100, RecordFormat::Newline));
        assert_eq!(reassemble(&chunks), total);
    }

    #[test]
    fn segment_boundaries_respect_file_and_record_edges() {
        let files = vec![lines(3, b'a'), lines(300, b'b'), lines(3, b'c')];
        let chunks =
            drain(HybridChunker::new(MemFileSet::new(files.clone()), 256, RecordFormat::Newline));
        // Every segment's bytes must be a contiguous piece of exactly
        // one original file.
        let mut remaining: Vec<&[u8]> = files.iter().map(Vec::as_slice).collect();
        let mut file_idx = 0;
        for c in &chunks {
            for seg in &c.segments {
                let piece = &c.data[seg.clone()];
                while remaining[file_idx].is_empty() {
                    file_idx += 1;
                }
                let cur = remaining[file_idx];
                assert!(cur.starts_with(piece), "segment is not a prefix of the current file");
                remaining[file_idx] = &cur[piece.len()..];
            }
        }
        assert!(remaining.iter().all(|r| r.is_empty()), "all file bytes consumed");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_target_rejected() {
        HybridChunker::new(MemFileSet::new(vec![]), 0, RecordFormat::Newline);
    }
}
