//! Self-tuning ingest chunk size — the paper's future-work feedback loop.
//!
//! §III-A2 argues the runtime "lacks the information necessary" to pick
//! a chunk size and proposes, as future work, "components that factor in
//! the expected performance and the workload characteristics (i.e. a
//! feedback loop)". This module implements that loop.
//!
//! The controller exploits the structure of the pipeline's cost: both
//! per-chunk ingest and per-chunk map time are *linear* in the chunk
//! size, `T(c) = O + c/R`, where `O` is the fixed per-round overhead
//! (thread spawn/teardown, synchronization) and `R` the throughput.
//! Throughput therefore does not depend on the chunk size at all —
//! what small chunks buy is a shorter serial first-read and last-map
//! tail, and what they cost is paying `O` more often. The optimum is
//! then "as small as possible while the overhead fraction stays
//! negligible":
//!
//! ```text
//!   c* = O · R · (1/f − 1)        (overhead fraction target f)
//! ```
//!
//! `O` and `R` are estimated online by fitting the last observations of
//! `(c, T_map(c))` with a two-point secant (falling back to assuming
//! `O = 0` until two distinct sizes have been observed).

use super::{AdaptiveTuning, Chunker, IngestChunk, InterFileChunker, RoundFeedback};
use std::io;
use supmr_storage::{DataSource, RecordFormat};

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// First chunk size tried, bytes.
    pub initial_chunk_bytes: u64,
    /// Floor for the tuned size.
    pub min_chunk_bytes: u64,
    /// Ceiling for the tuned size (memory budget).
    pub max_chunk_bytes: u64,
    /// Acceptable per-round overhead fraction `f` (e.g. 0.05 = 5% of a
    /// round may be fixed overhead).
    pub overhead_fraction: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_chunk_bytes: 16 * 1024 * 1024,
            min_chunk_bytes: 256 * 1024,
            max_chunk_bytes: 1024 * 1024 * 1024,
            overhead_fraction: 0.05,
        }
    }
}

impl AdaptiveConfig {
    /// Validate parameter sanity.
    ///
    /// # Panics
    /// Panics if bounds are zero/inverted or the fraction is not in
    /// (0, 1).
    pub fn validate(&self) {
        assert!(self.min_chunk_bytes > 0, "min chunk must be non-zero");
        assert!(
            self.min_chunk_bytes <= self.initial_chunk_bytes
                && self.initial_chunk_bytes <= self.max_chunk_bytes,
            "need min <= initial <= max chunk bytes"
        );
        assert!(
            self.overhead_fraction > 0.0 && self.overhead_fraction < 1.0,
            "overhead fraction must be in (0, 1)"
        );
    }
}

/// An inter-file chunker whose chunk size is retuned from round
/// feedback.
pub struct AdaptiveChunker<S> {
    inner: InterFileChunker<S>,
    config: AdaptiveConfig,
    /// Current chunk size (bytes).
    current: u64,
    /// Most recent observation per distinct size: (bytes, map_secs).
    observations: Vec<(f64, f64)>,
    sizes_used: Vec<u64>,
}

impl<S: DataSource> AdaptiveChunker<S> {
    /// Wrap `source` with an adaptive controller.
    pub fn new(source: S, format: RecordFormat, config: AdaptiveConfig) -> Self {
        config.validate();
        AdaptiveChunker {
            inner: InterFileChunker::new(source, config.initial_chunk_bytes, format),
            current: config.initial_chunk_bytes,
            config,
            observations: Vec::new(),
            sizes_used: Vec::new(),
        }
    }

    /// The chunk size the next round will use.
    pub fn current_chunk_bytes(&self) -> u64 {
        self.current
    }

    /// Every chunk size used so far, in order (for tests and reports).
    pub fn sizes_used(&self) -> &[u64] {
        &self.sizes_used
    }

    /// Fit `T(c) = O + c/R` through the two most recent observations
    /// with distinct sizes; returns `(overhead_secs, bytes_per_sec)`.
    fn fit(&self) -> Option<(f64, f64)> {
        let (&(c2, t2), rest) = self.observations.split_last()?;
        let &(c1, t1) = rest.iter().rev().find(|(c, _)| (*c - c2).abs() > 1.0)?;
        let slope = (t2 - t1) / (c2 - c1); // seconds per byte
        if slope <= 0.0 {
            return None;
        }
        let overhead = (t2 - slope * c2).max(0.0);
        Some((overhead, 1.0 / slope))
    }

    fn retune(&mut self) {
        let Some((overhead, rate)) = self.fit() else {
            // One observation: probe a different size (halve) so the
            // secant fit has two points.
            self.current = (self.current / 2).max(self.config.min_chunk_bytes);
            return;
        };
        let f = self.config.overhead_fraction;
        let ideal = overhead * rate * (1.0 / f - 1.0);
        let target = ideal
            .clamp(self.config.min_chunk_bytes as f64, self.config.max_chunk_bytes as f64)
            as u64;
        // Damped move (geometric mean) so one noisy round cannot slam
        // the size across its whole range.
        let damped = ((self.current as f64) * (target as f64)).sqrt() as u64;
        self.current = damped.clamp(self.config.min_chunk_bytes, self.config.max_chunk_bytes);
    }
}

impl<S: DataSource> Chunker for AdaptiveChunker<S> {
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk>> {
        self.inner.set_chunk_bytes(self.current);
        let chunk = self.inner.next_chunk()?;
        if chunk.is_some() {
            self.sizes_used.push(self.current);
        }
        Ok(chunk)
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    fn feedback(&mut self, round: RoundFeedback) {
        if round.chunk_bytes == 0 {
            return;
        }
        self.observations.push((round.chunk_bytes as f64, round.map.as_secs_f64()));
        if self.observations.len() > 16 {
            self.observations.remove(0);
        }
        self.retune();
    }

    fn tuning(&self) -> Option<AdaptiveTuning> {
        let (overhead_us, rate_bytes_per_sec) = self.fit().map_or((0, 0), |(overhead, rate)| {
            ((overhead * 1e6).round().max(0.0) as u64, rate.round().max(0.0) as u64)
        });
        Some(AdaptiveTuning { chunk_bytes: self.current, overhead_us, rate_bytes_per_sec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use supmr_storage::MemSource;

    fn newline_data(bytes: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes + 16);
        while out.len() < bytes {
            out.extend_from_slice(b"0123456789abcde\n");
        }
        out
    }

    fn chunker(bytes: usize, config: AdaptiveConfig) -> AdaptiveChunker<MemSource> {
        AdaptiveChunker::new(MemSource::from(newline_data(bytes)), RecordFormat::Newline, config)
    }

    fn small_config() -> AdaptiveConfig {
        AdaptiveConfig {
            initial_chunk_bytes: 1024,
            min_chunk_bytes: 128,
            max_chunk_bytes: 64 * 1024,
            overhead_fraction: 0.05,
        }
    }

    /// Feed synthetic rounds that follow T(c) = O + c/R exactly.
    fn feed(c: &mut AdaptiveChunker<MemSource>, chunk_bytes: u64, overhead: f64, rate: f64) {
        c.feedback(RoundFeedback {
            chunk_bytes,
            ingest: Duration::from_secs_f64(chunk_bytes as f64 / rate),
            map: Duration::from_secs_f64(overhead + chunk_bytes as f64 / rate),
        });
    }

    #[test]
    fn drains_input_losslessly_while_tuning() {
        let data = newline_data(40_000);
        let mut c = AdaptiveChunker::new(
            MemSource::from(data.clone()),
            RecordFormat::Newline,
            small_config(),
        );
        let mut rebuilt = Vec::new();
        let mut rounds = 0;
        while let Some(chunk) = c.next_chunk().unwrap() {
            rebuilt.extend_from_slice(&chunk.data);
            // Synthetic feedback: overhead 1ms, rate 1MB/s.
            feed(&mut c, chunk.len() as u64, 1e-3, 1e6);
            rounds += 1;
        }
        assert_eq!(rebuilt, data);
        assert!(rounds >= 2);
        assert_eq!(c.sizes_used().len(), rounds);
    }

    #[test]
    fn converges_to_the_analytic_optimum() {
        // O = 2ms, R = 10MB/s, f = 5% -> c* = O*R*19 = 380_000 bytes.
        let config = AdaptiveConfig {
            initial_chunk_bytes: 16 * 1024,
            min_chunk_bytes: 1024,
            max_chunk_bytes: 100_000_000,
            overhead_fraction: 0.05,
        };
        let mut c = chunker(10_000_000, config);
        let mut size = c.current_chunk_bytes();
        for _ in 0..40 {
            feed(&mut c, size, 2e-3, 10e6);
            size = c.current_chunk_bytes();
        }
        let ideal = 2e-3 * 10e6 * 19.0;
        assert!(
            (size as f64) > ideal * 0.5 && (size as f64) < ideal * 2.0,
            "converged to {size}, ideal {ideal}"
        );
    }

    #[test]
    fn zero_overhead_drives_size_to_the_floor() {
        let mut c = chunker(1_000_000, small_config());
        let mut size = c.current_chunk_bytes();
        for _ in 0..20 {
            feed(&mut c, size, 0.0, 1e6);
            size = c.current_chunk_bytes();
        }
        assert_eq!(size, 128, "no overhead -> smallest allowed chunk");
    }

    #[test]
    fn huge_overhead_drives_size_to_the_ceiling() {
        let mut c = chunker(1_000_000, small_config());
        let mut size = c.current_chunk_bytes();
        for _ in 0..30 {
            feed(&mut c, size, 10.0, 1e6); // 10s fixed overhead
            size = c.current_chunk_bytes();
        }
        // Geometric-mean damping converges asymptotically; float
        // truncation can rest a couple of bytes under the bound.
        assert!(size >= 64 * 1024 - 16, "overhead-dominated -> largest allowed chunk, got {size}");
    }

    #[test]
    fn tuned_size_stays_within_bounds_under_noise() {
        let mut c = chunker(1_000_000, small_config());
        for i in 0..50u64 {
            let size = c.current_chunk_bytes();
            // Erratic, even non-monotone timings.
            let noise = ((i * 2654435761) % 7) as f64 * 1e-4;
            feed(&mut c, size, noise, (1.0 + (i % 3) as f64) * 1e6);
            let s = c.current_chunk_bytes();
            assert!((128..=64 * 1024).contains(&s), "size {s} escaped bounds");
        }
    }

    #[test]
    #[should_panic(expected = "min <= initial <= max")]
    fn inverted_bounds_rejected() {
        AdaptiveConfig {
            initial_chunk_bytes: 10,
            min_chunk_bytes: 100,
            max_chunk_bytes: 1000,
            overhead_fraction: 0.05,
        }
        .validate();
    }

    #[test]
    fn fit_ignores_duplicate_sizes() {
        let mut c = chunker(1_000_000, small_config());
        // Same size twice: no fit possible yet, current halves (probe).
        feed(&mut c, 1024, 1e-3, 1e6);
        assert_eq!(c.current_chunk_bytes(), 512);
        feed(&mut c, 512, 1e-3, 1e6);
        // Two distinct sizes now: a fit exists and the size moves
        // toward the optimum rather than just halving.
        let s = c.current_chunk_bytes();
        assert!(s != 256, "secant fit should take over from probing");
    }
}
