//! Ingest chunks and chunking strategies (§III-A of the paper).
//!
//! SupMR partitions the input into small, similarly-sized **ingest
//! chunks** *before* producing input splits; the chunks stream through
//! the ingest pipeline one at a time. Two strategies exist:
//!
//! * **Inter-file** ([`InterFileChunker`]) — one large input is split
//!   into byte ranges of the user-chosen chunk size. The split point is
//!   adjusted forward so no record straddles two chunks: "it seeks to the
//!   user-defined chunk size, checks to see if it is in the middle of a
//!   key or value, and then continually increases the split point until
//!   reaching the end of the value."
//! * **Intra-file** ([`IntraFileChunker`]) — many small files coalesce
//!   into one chunk; the user chooses how many files per chunk, and "if
//!   the user-defined chunk size is higher than the number of files left
//!   in the job, then the last chunk is smaller than the rest."

//! ```
//! use supmr::chunk::{Chunker, InterFileChunker};
//! use supmr_storage::{MemSource, RecordFormat};
//!
//! let input = b"alpha\nbeta\ngamma\ndelta\n".to_vec();
//! let mut chunker =
//!     InterFileChunker::new(MemSource::from(input), 8, RecordFormat::Newline);
//! let first = chunker.next_chunk().unwrap().unwrap();
//! // 8 bytes requested, extended to the record boundary after "beta\n".
//! assert_eq!(first.data, b"alpha\nbeta\n");
//! ```

mod adaptive;
mod hybrid;

pub use adaptive::{AdaptiveChunker, AdaptiveConfig};
pub use hybrid::HybridChunker;

use std::io;
use std::ops::Range;
use supmr_storage::scan::{find_byte, find_crlf};
use supmr_storage::{DataSource, FileSet, RecordFormat, SharedBytes};

/// How the input is partitioned into ingest chunks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Chunking {
    /// No chunking: the original runtime's whole-input ingest.
    None,
    /// Inter-file chunking of a single large input into byte ranges.
    Inter {
        /// Target chunk size in bytes (actual chunks extend to the next
        /// record boundary).
        chunk_bytes: u64,
    },
    /// Intra-file chunking of a file set.
    Intra {
        /// Number of files coalesced into each chunk.
        files_per_chunk: usize,
    },
    /// Hybrid chunking of a file set by *bytes*: small files coalesce
    /// until the target size is reached, and files larger than the
    /// target are split at record boundaries — the "hybrid
    /// inter/intra-file chunking approach" the paper describes but
    /// leaves unimplemented (§III-A1).
    Hybrid {
        /// Target chunk size in bytes.
        chunk_bytes: u64,
    },
    /// Self-tuning inter-file chunking: the chunk size is retuned every
    /// round from measured ingest/map times — the paper's future-work
    /// "feedback loop" (§III-A2, §VIII).
    Adaptive(AdaptiveConfig),
}

impl Chunking {
    /// Whether this strategy engages the ingest chunk pipeline.
    pub fn is_pipelined(&self) -> bool {
        !matches!(self, Chunking::None)
    }
}

/// One ingest chunk: a contiguous region of input resident in memory.
///
/// `data` is a [`SharedBytes`] view: the ingest thread, the feedback
/// path, and every map split reference one shared allocation, and
/// cloning a chunk (or handing its bytes to a map wave) never copies
/// the payload. Fully resident sources go further — each chunk is a
/// window of the *source's* buffer, so chunking itself is copy-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestChunk {
    /// Chunk sequence number (0-based).
    pub index: usize,
    /// Absolute byte offset of the chunk in the logical input (inter-file)
    /// or of its first file (intra-file, cumulative).
    pub offset: u64,
    /// The chunk bytes (a shared, immutable view).
    pub data: SharedBytes,
    /// Sub-ranges of `data` that must not be split across map tasks
    /// beyond record boundaries. Inter-file chunks have one range
    /// covering everything; intra-file chunks have one per file.
    pub segments: Vec<Range<usize>>,
}

impl IngestChunk {
    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Measured durations of one completed pipeline round, fed back to
/// chunkers that tune themselves (the paper's future-work "feedback
/// loop" for finding the optimal ingest chunk size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundFeedback {
    /// Size of the chunk that was mapped this round.
    pub chunk_bytes: u64,
    /// Wall-clock time the ingest thread spent reading the *next* chunk.
    pub ingest: std::time::Duration,
    /// Wall-clock time of the map wave over this round's chunk.
    pub map: std::time::Duration,
}

/// A stream of ingest chunks. The pipeline runtime pulls from this on a
/// dedicated ingest thread while mappers work on the previous chunk.
pub trait Chunker: Send {
    /// Produce the next chunk, or `None` when the input is exhausted.
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk>>;

    /// Total input bytes this chunker will eventually deliver.
    fn total_bytes(&self) -> u64;

    /// Observe a completed round. Fixed-size chunkers ignore this;
    /// [`AdaptiveChunker`] uses it to retune its chunk size.
    fn feedback(&mut self, _round: RoundFeedback) {}

    /// The controller's current internal state, for chunkers that tune
    /// themselves ([`AdaptiveChunker`]). Fixed-size chunkers have
    /// nothing to report.
    fn tuning(&self) -> Option<AdaptiveTuning> {
        None
    }
}

/// A self-tuning chunker's internals at one point in time: the chosen
/// chunk size plus the fitted per-round cost model (`round ≈ O + bytes/R`)
/// behind it — surfaced as `supmr.adaptive.*` gauges and
/// `chunk-feedback` governor actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTuning {
    /// Chunk size the next round will use, bytes.
    pub chunk_bytes: u64,
    /// Fitted fixed per-round overhead `O`, microseconds (0 until the
    /// model has two distinct observations).
    pub overhead_us: u64,
    /// Fitted map throughput `R`, bytes per second (0 until fitted).
    pub rate_bytes_per_sec: u64,
}

/// Window size for scanning past the nominal chunk end to the next
/// record boundary. Records larger than this still work — the scan
/// keeps extending window by window.
const BOUNDARY_WINDOW: usize = 4096;

/// Inter-file chunking of a [`DataSource`].
pub struct InterFileChunker<S> {
    source: S,
    chunk_bytes: u64,
    format: RecordFormat,
    offset: u64,
    index: usize,
}

impl<S: DataSource> InterFileChunker<S> {
    /// Chunk `source` into ~`chunk_bytes` pieces aligned to `format`
    /// record boundaries.
    ///
    /// # Panics
    /// Panics if `chunk_bytes == 0`.
    pub fn new(source: S, chunk_bytes: u64, format: RecordFormat) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        InterFileChunker { source, chunk_bytes, format, offset: 0, index: 0 }
    }

    /// Change the target chunk size for subsequent chunks (used by the
    /// adaptive controller).
    ///
    /// # Panics
    /// Panics if `chunk_bytes == 0`.
    pub fn set_chunk_bytes(&mut self, chunk_bytes: u64) {
        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        self.chunk_bytes = chunk_bytes;
    }

    /// Does `data` (starting at absolute offset `start`) end on a record
    /// boundary?
    fn ends_complete(&self, data: &[u8], start: u64) -> bool {
        match self.format {
            RecordFormat::None => true,
            RecordFormat::Newline => data.last() == Some(&b'\n'),
            RecordFormat::CrLf => data.len() >= 2 && data.ends_with(b"\r\n"),
            RecordFormat::FixedWidth(w) => {
                assert!(w > 0, "record width must be non-zero");
                (start + data.len() as u64).is_multiple_of(w as u64)
            }
        }
    }

    /// Extend `data` past the nominal end until it finishes on a record
    /// boundary (or EOF).
    fn extend_to_boundary(&mut self, data: &mut Vec<u8>, start: u64) -> io::Result<()> {
        let total = self.source.len();
        while !self.ends_complete(data, start) {
            let abs_end = start + data.len() as u64;
            if abs_end >= total {
                break; // trailing partial record travels with this chunk
            }
            let want = match self.format {
                // Fixed width knows exactly how much is missing.
                RecordFormat::FixedWidth(w) => {
                    let w = w as u64;
                    (w - (abs_end % w)) as usize
                }
                _ => BOUNDARY_WINDOW,
            };
            let mut window = vec![0u8; want.min((total - abs_end) as usize)];
            let mut filled = 0;
            while filled < window.len() {
                let n = self.source.read_at(abs_end + filled as u64, &mut window[filled..])?;
                if n == 0 {
                    break;
                }
                filled += n;
            }
            window.truncate(filled);
            if window.is_empty() {
                break;
            }
            // Append up to and including the first terminator in the
            // window (accounting for a \r left hanging at the seam).
            match self.format {
                RecordFormat::Newline => {
                    if let Some(i) = find_byte(&window, b'\n') {
                        data.extend_from_slice(&window[..=i]);
                    } else {
                        data.extend_from_slice(&window);
                    }
                }
                RecordFormat::CrLf => {
                    if data.last() == Some(&b'\r') && window[0] == b'\n' {
                        data.push(b'\n');
                    } else if let Some(i) = find_crlf(&window) {
                        data.extend_from_slice(&window[..i + 2]);
                    } else {
                        data.extend_from_slice(&window);
                    }
                }
                _ => data.extend_from_slice(&window),
            }
        }
        Ok(())
    }
}

impl<S: DataSource> Chunker for InterFileChunker<S> {
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk>> {
        let total = self.source.len();
        if self.offset >= total {
            return Ok(None);
        }

        // Zero-copy fast path: a fully resident source hands out
        // record-aligned windows of its one shared allocation.
        if let Some(all) = self.source.shared().filter(|b| b.len() as u64 == total) {
            let start = self.offset as usize;
            let nominal_end = start + self.chunk_bytes.min(total - self.offset) as usize;
            let end = resident_boundary(&all, start, nominal_end, self.format);
            let data = all.slice(start..end);
            let chunk = IngestChunk {
                index: self.index,
                offset: self.offset,
                #[allow(clippy::single_range_in_vec_init)] // one segment covering the chunk
                segments: vec![0..data.len()],
                data,
            };
            self.offset = end as u64;
            self.index += 1;
            return Ok(Some(chunk));
        }

        let want = self.chunk_bytes.min(total - self.offset) as usize;
        let mut data = vec![0u8; want];
        let mut filled = 0;
        while filled < want {
            let n = self.source.read_at(self.offset + filled as u64, &mut data[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        data.truncate(filled);
        if data.is_empty() {
            return Ok(None);
        }
        self.extend_to_boundary(&mut data, self.offset)?;

        let data = SharedBytes::from(data);
        let chunk = IngestChunk {
            index: self.index,
            offset: self.offset,
            #[allow(clippy::single_range_in_vec_init)] // one segment covering the chunk
            segments: vec![0..data.len()],
            data,
        };
        self.offset += chunk.data.len() as u64;
        self.index += 1;
        Ok(Some(chunk))
    }

    fn total_bytes(&self) -> u64 {
        self.source.len()
    }
}

/// Record-aligned end of a chunk over a fully resident buffer: the
/// in-memory equivalent of [`InterFileChunker::extend_to_boundary`].
/// `start`/`nominal_end` are absolute indices into `all`; returns the
/// absolute end, extended forward to the first record boundary at or
/// after `nominal_end` (or EOF when the input ends mid-record).
fn resident_boundary(all: &[u8], start: usize, nominal_end: usize, format: RecordFormat) -> usize {
    let total = all.len();
    let e0 = nominal_end.min(total);
    match format {
        RecordFormat::None => e0,
        RecordFormat::Newline => {
            if e0 > start && all[e0 - 1] == b'\n' {
                e0
            } else {
                match find_byte(&all[e0..], b'\n') {
                    Some(i) => e0 + i + 1,
                    None => total,
                }
            }
        }
        RecordFormat::CrLf => {
            // The first acceptable end is a pair finishing at or after
            // `e0` whose `\r` is inside the chunk, i.e. a pair starting
            // at `max(start, e0 - 2)` or later.
            let p0 = start.max(e0.saturating_sub(2));
            match find_crlf(&all[p0..]) {
                Some(p) => p0 + p + 2,
                None => total,
            }
        }
        RecordFormat::FixedWidth(w) => {
            assert!(w > 0, "record width must be non-zero");
            let aligned = if e0.is_multiple_of(w) { e0 } else { (e0 / w + 1) * w };
            aligned.min(total)
        }
    }
}

/// Intra-file chunking of a [`FileSet`].
pub struct IntraFileChunker<F> {
    files: F,
    files_per_chunk: usize,
    next_file: usize,
    index: usize,
    offset: u64,
}

impl<F: FileSet> IntraFileChunker<F> {
    /// Coalesce `files_per_chunk` files into each chunk.
    ///
    /// # Panics
    /// Panics if `files_per_chunk == 0`.
    pub fn new(files: F, files_per_chunk: usize) -> Self {
        assert!(files_per_chunk > 0, "files per chunk must be non-zero");
        IntraFileChunker { files, files_per_chunk, next_file: 0, index: 0, offset: 0 }
    }
}

impl<F: FileSet> Chunker for IntraFileChunker<F> {
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk>> {
        let count = self.files.file_count();
        if self.next_file >= count {
            return Ok(None);
        }
        let end_file = (self.next_file + self.files_per_chunk).min(count);

        // Zero-copy fast path: a single-file chunk of a resident file
        // set is a view of that file's buffer.
        if end_file - self.next_file == 1 {
            if let Some(data) = self.files.shared_file(self.next_file) {
                let chunk = IngestChunk {
                    index: self.index,
                    offset: self.offset,
                    #[allow(clippy::single_range_in_vec_init)] // one segment: the file
                    segments: vec![0..data.len()],
                    data,
                };
                self.offset += chunk.data.len() as u64;
                self.index += 1;
                self.next_file = end_file;
                return Ok(Some(chunk));
            }
        }

        // Pre-size to the first file's length, then grow dynamically —
        // "the runtime dynamically increases the allocated space to
        // ensure that all files in the intra-file chunk are collocated".
        let mut data = Vec::with_capacity(self.files.file_len(self.next_file) as usize);
        let mut segments = Vec::with_capacity(end_file - self.next_file);
        for i in self.next_file..end_file {
            let start = data.len();
            data.extend_from_slice(&self.files.read_file(i)?);
            segments.push(start..data.len());
        }
        let chunk = IngestChunk {
            index: self.index,
            offset: self.offset,
            data: SharedBytes::from(data),
            segments,
        };
        self.offset += chunk.data.len() as u64;
        self.index += 1;
        self.next_file = end_file;
        Ok(Some(chunk))
    }

    fn total_bytes(&self) -> u64 {
        self.files.total_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supmr_storage::{MemFileSet, MemSource};

    fn newline_input(records: usize, record_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..records {
            let body = format!("{i:0width$}", width = record_len - 1);
            out.extend_from_slice(body.as_bytes());
            out.push(b'\n');
        }
        out
    }

    fn drain(mut c: impl Chunker) -> Vec<IngestChunk> {
        let mut out = Vec::new();
        while let Some(chunk) = c.next_chunk().unwrap() {
            out.push(chunk);
        }
        out
    }

    #[test]
    fn inter_chunks_partition_the_input_exactly() {
        let input = newline_input(100, 10); // 1000 bytes
        let chunker =
            InterFileChunker::new(MemSource::from(input.clone()), 256, RecordFormat::Newline);
        let chunks = drain(chunker);
        assert!(chunks.len() >= 3);
        let rebuilt: Vec<u8> = chunks.iter().flat_map(|c| c.data.to_vec()).collect();
        assert_eq!(rebuilt, input);
        // Offsets are cumulative and indices sequential.
        let mut expect_offset = 0;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.offset, expect_offset);
            expect_offset += c.len() as u64;
            assert_eq!(c.segments, vec![0..c.len()]);
        }
    }

    #[test]
    fn inter_chunks_end_on_record_boundaries() {
        let input = newline_input(100, 10);
        // 250 is mid-record (records are 10 bytes).
        let chunker = InterFileChunker::new(MemSource::from(input), 250, RecordFormat::Newline);
        for chunk in drain(chunker) {
            assert_eq!(*chunk.data.last().unwrap(), b'\n', "chunk must end at a record end");
            assert!(chunk.len() >= 250 || chunk.index > 0);
        }
    }

    #[test]
    fn crlf_terminators_never_split() {
        // Terasort-style CRLF records of 20 bytes.
        let mut input = Vec::new();
        for i in 0..50 {
            input.extend_from_slice(format!("{i:018}\r\n").as_bytes());
        }
        // Chunk size chosen to land between \r and \n (20*k + 19).
        let chunker = InterFileChunker::new(MemSource::from(input.clone()), 99, RecordFormat::CrLf);
        let chunks = drain(chunker);
        let rebuilt: Vec<u8> = chunks.iter().flat_map(|c| c.data.to_vec()).collect();
        assert_eq!(rebuilt, input);
        for chunk in &chunks {
            assert!(chunk.data.ends_with(b"\r\n"));
            assert_eq!(chunk.len() % 20, 0, "whole records only");
        }
    }

    #[test]
    fn fixed_width_chunks_are_record_multiples() {
        let input = vec![7u8; 1000];
        let chunker =
            InterFileChunker::new(MemSource::from(input), 130, RecordFormat::FixedWidth(100));
        let chunks = drain(chunker);
        for c in &chunks {
            assert_eq!(c.len() % 100, 0);
        }
        assert_eq!(chunks.iter().map(IngestChunk::len).sum::<usize>(), 1000);
    }

    #[test]
    fn record_longer_than_boundary_window_is_kept_whole() {
        // One 10KB record then a small one; window is 4KB.
        let mut input = vec![b'x'; 10_000];
        input.push(b'\n');
        input.extend_from_slice(b"tail\n");
        let chunker =
            InterFileChunker::new(MemSource::from(input.clone()), 100, RecordFormat::Newline);
        let chunks = drain(chunker);
        assert_eq!(chunks[0].len(), 10_001);
        let rebuilt: Vec<u8> = chunks.iter().flat_map(|c| c.data.to_vec()).collect();
        assert_eq!(rebuilt, input);
    }

    #[test]
    fn input_without_trailing_terminator() {
        let input = b"complete\npartial-record-no-newline".to_vec();
        let chunker =
            InterFileChunker::new(MemSource::from(input.clone()), 4, RecordFormat::Newline);
        let chunks = drain(chunker);
        let rebuilt: Vec<u8> = chunks.iter().flat_map(|c| c.data.to_vec()).collect();
        assert_eq!(rebuilt, input, "partial trailing record must not be lost");
    }

    #[test]
    fn empty_source_yields_no_chunks() {
        let chunker = InterFileChunker::new(MemSource::from(Vec::new()), 64, RecordFormat::Newline);
        assert!(drain(chunker).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_size_rejected() {
        InterFileChunker::new(MemSource::from(vec![1u8]), 0, RecordFormat::None);
    }

    #[test]
    fn intra_chunker_groups_files_with_short_last_chunk() {
        // The paper's worked example: 30 files, 4 per chunk => 8 chunks,
        // 7 full and 1 with the 2 remaining files.
        let files: Vec<Vec<u8>> = (0..30).map(|i| format!("file{i}\n").into_bytes()).collect();
        let chunker = IntraFileChunker::new(MemFileSet::new(files.clone()), 4);
        let chunks = drain(chunker);
        assert_eq!(chunks.len(), 8);
        for c in &chunks[..7] {
            assert_eq!(c.segments.len(), 4);
        }
        assert_eq!(chunks[7].segments.len(), 2);
        // Contents and segment boundaries reconstruct the files.
        let mut file_idx = 0;
        for c in &chunks {
            for seg in &c.segments {
                assert_eq!(&c.data[seg.clone()], files[file_idx].as_slice());
                file_idx += 1;
            }
        }
        assert_eq!(file_idx, 30);
    }

    #[test]
    fn intra_chunker_handles_empty_files_and_empty_set() {
        let files = vec![b"a\n".to_vec(), Vec::new(), b"c\n".to_vec()];
        let chunker = IntraFileChunker::new(MemFileSet::new(files), 2);
        let chunks = drain(chunker);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].segments.len(), 2);
        assert_eq!(chunks[0].segments[1], 2..2); // the empty file

        let empty = IntraFileChunker::new(MemFileSet::new(vec![]), 3);
        assert!(drain(empty).is_empty());
    }

    #[test]
    fn chunker_total_bytes() {
        let c = InterFileChunker::new(MemSource::from(vec![0u8; 500]), 100, RecordFormat::None);
        assert_eq!(c.total_bytes(), 500);
        let f = IntraFileChunker::new(MemFileSet::new(vec![vec![1; 10], vec![2; 20]]), 1);
        assert_eq!(f.total_bytes(), 30);
    }

    #[test]
    fn chunking_kind_predicates() {
        assert!(!Chunking::None.is_pipelined());
        assert!(Chunking::Inter { chunk_bytes: 1 }.is_pipelined());
        assert!(Chunking::Intra { files_per_chunk: 1 }.is_pipelined());
    }

    /// A source that hides its residency, forcing the read/copy path.
    struct CopyOnly<S>(S);

    impl<S: DataSource> DataSource for CopyOnly<S> {
        fn len(&self) -> u64 {
            self.0.len()
        }

        fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read_at(offset, buf)
        }
    }

    #[test]
    fn resident_fast_path_matches_copy_path_for_every_format() {
        let mut crlf = Vec::new();
        for i in 0..50 {
            crlf.extend_from_slice(format!("{i:018}\r\n").as_bytes());
        }
        let cases: Vec<(Vec<u8>, RecordFormat)> = vec![
            (newline_input(100, 10), RecordFormat::Newline),
            (b"complete\npartial-record-no-newline".to_vec(), RecordFormat::Newline),
            (crlf, RecordFormat::CrLf),
            (vec![7u8; 1000], RecordFormat::FixedWidth(100)),
            ((0u8..=255).collect(), RecordFormat::None),
        ];
        for (input, format) in cases {
            for chunk_bytes in [1u64, 7, 19, 99, 250, 10_000] {
                let fast = drain(InterFileChunker::new(
                    MemSource::from(input.clone()),
                    chunk_bytes,
                    format,
                ));
                let copy = drain(InterFileChunker::new(
                    CopyOnly(MemSource::from(input.clone())),
                    chunk_bytes,
                    format,
                ));
                assert_eq!(fast, copy, "format {format:?}, chunk_bytes {chunk_bytes}");
            }
        }
    }

    #[test]
    fn resident_inter_chunks_share_the_source_allocation() {
        let input = newline_input(40, 10);
        let chunker = InterFileChunker::new(MemSource::from(input), 64, RecordFormat::Newline);
        let chunks = drain(chunker);
        assert!(chunks.len() > 1);
        // Every chunk is a window of the one MemSource buffer (held by
        // the drained chunker's source until it was dropped; the chunks
        // alone keep it alive now).
        for c in &chunks {
            assert_eq!(c.data.ref_count(), chunks.len(), "no per-chunk copies");
        }
    }

    #[test]
    fn single_file_intra_chunks_share_file_buffers() {
        let files: Vec<Vec<u8>> = (0..4).map(|i| format!("file-{i}\n").into_bytes()).collect();
        let chunks = drain(IntraFileChunker::new(MemFileSet::new(files.clone()), 1));
        assert_eq!(chunks.len(), 4);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.data, files[i]);
            // The chunk's view plus the MemFileSet's own Arc (the set
            // was dropped with the chunker, so just the view remains).
            assert_eq!(c.data.ref_count(), 1);
        }
        // Multi-file chunks still coalesce (and therefore copy).
        let grouped = drain(IntraFileChunker::new(MemFileSet::new(files), 2));
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].segments.len(), 2);
    }
}
